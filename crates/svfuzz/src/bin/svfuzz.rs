//! `svfuzz` — deterministic differential fuzzing CLI.
//!
//! * `run --seed N --iters M [--mine <dir>]` — drive the fuzzing loop and
//!   print the byte-deterministic finding log; with `--mine`, write every
//!   novel shrunk case (journal included) under `<dir>/<family>/`.
//! * `repro <case.json>...` — re-drive checked-in cases: the recorded oracle
//!   outcome must reproduce and the embedded journal must byte-verify.
//! * `min <case.json>` — re-shrink an open case's input and print the result.
//! * `add` — register an externally-found input as a corpus case (used for
//!   regressions mined outside the loop, e.g. by hand or by CI).
//!
//! Exit status is the verdict, so CI can chain
//! `svfuzz run ... | cmp` and `svfuzz repro fuzz/corpus/**/*.json`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use svfuzz::{
    compose_case, ddmin_lines, drive_oracle, load_case, load_corpus, repro_case, run_fuzz,
    write_case, Expectation, FuzzConfig, OracleKind,
};

const USAGE: &str = "usage:
  svfuzz run --seed <n> --iters <n> [--mine <dir>]
  svfuzz repro <case.json|corpus-dir>...
  svfuzz min <case.json>
  svfuzz add --oracle <tag> --family <tag> --expect <pass|fail> \\
             --source <file> [--base <file>] --detail <text> --out <dir>";

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut seed = 1u64;
    let mut iters = 1000u64;
    let mut mine: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => seed = parse_u64(it.next(), "--seed")?,
            "--iters" => iters = parse_u64(it.next(), "--iters")?,
            "--mine" => mine = Some(PathBuf::from(it.next().ok_or("--mine needs a directory")?)),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let report = run_fuzz(&FuzzConfig::new(seed, iters));
    print!("{}", report.log);
    if let Some(root) = mine {
        for case in &report.cases {
            let path = write_case(&root, case)
                .map_err(|err| format!("cannot write case {}: {err}", case.fingerprint))?;
            println!("mined {}", path.display());
        }
    }
    Ok(())
}

fn collect_case_paths(arg: &str) -> Result<Vec<PathBuf>, String> {
    let path = Path::new(arg);
    if path.is_dir() {
        Ok(load_corpus(path)?.into_iter().map(|(p, _)| p).collect())
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

fn cmd_repro(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err(format!(
            "repro needs at least one case or corpus dir\n{USAGE}"
        ));
    }
    let mut failures = 0usize;
    let mut total = 0usize;
    for arg in args {
        for path in collect_case_paths(arg)? {
            total += 1;
            let case = load_case(&path)?;
            match repro_case(&case) {
                Ok(()) => println!("repro OK {}", path.display()),
                Err(err) => {
                    failures += 1;
                    println!("repro FAIL {}: {err}", path.display());
                }
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {total} cases failed to reproduce"));
    }
    println!("svfuzz: {total} cases reproduced");
    Ok(())
}

fn cmd_min(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("min needs exactly one case\n{USAGE}"));
    };
    let case = load_case(Path::new(path))?;
    if case.expect == Expectation::Passes {
        println!("{}", case.source);
        return Ok(());
    }
    let shrunk = ddmin_lines(
        &case.source,
        |candidate| {
            drive_oracle(case.oracle, candidate)
                .detail()
                .map(|d| {
                    format!("{:016x}", svfuzz::class_fingerprint(case.oracle, d)) == case.class
                })
                .unwrap_or(false)
        },
        512,
    );
    println!("{shrunk}");
    Ok(())
}

fn cmd_add(args: &[String]) -> Result<(), String> {
    let mut oracle: Option<OracleKind> = None;
    let mut family: Option<String> = None;
    let mut expect = Expectation::Passes;
    let mut source: Option<String> = None;
    let mut base: Option<String> = None;
    let mut detail = String::new();
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--oracle" => {
                let tag = it.next().ok_or("--oracle needs a tag")?;
                oracle = Some(
                    OracleKind::from_tag(tag).ok_or_else(|| format!("unknown oracle {tag:?}"))?,
                );
            }
            "--family" => family = it.next().cloned(),
            "--expect" => {
                let tag = it.next().ok_or("--expect needs pass|fail")?;
                expect = Expectation::from_tag(tag)
                    .ok_or_else(|| format!("unknown expectation {tag:?}"))?;
            }
            "--source" => source = Some(read_file(it.next(), "--source")?),
            "--base" => base = Some(read_file(it.next(), "--base")?),
            "--detail" => detail = it.next().cloned().unwrap_or_default(),
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?)),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let oracle = oracle.ok_or(format!("add needs --oracle\n{USAGE}"))?;
    let family = family.ok_or(format!("add needs --family\n{USAGE}"))?;
    let source = source.ok_or(format!("add needs --source <file>\n{USAGE}"))?;
    let out = out.ok_or(format!("add needs --out <dir>\n{USAGE}"))?;
    // Without --base the journal derives from the family's canonical golden.
    let base = match base {
        Some(text) => text,
        None => {
            let fam = svgen::Family::all()
                .iter()
                .copied()
                .find(|f| f.tag() == family)
                .ok_or_else(|| format!("unknown family {family:?} (needed to default --base)"))?;
            svgen::instantiate(fam, svgen::FamilyParams::default(), 0).source
        }
    };

    let case = compose_case(oracle, &family, &source, &base, &detail, expect, 0, 0)?;
    repro_case(&case).map_err(|err| format!("freshly composed case does not repro: {err}"))?;
    let path = write_case(&out, &case).map_err(|err| format!("cannot write case: {err}"))?;
    println!("added {}", path.display());
    Ok(())
}

fn read_file(arg: Option<&String>, flag: &str) -> Result<String, String> {
    let path = arg.ok_or_else(|| format!("{flag} needs a file"))?;
    std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))
}

fn parse_u64(arg: Option<&String>, flag: &str) -> Result<u64, String> {
    arg.and_then(|raw| raw.parse::<u64>().ok())
        .ok_or_else(|| format!("{flag} needs an unsigned integer"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "run" => cmd_run(rest),
            "repro" => cmd_repro(rest),
            "min" => cmd_min(rest),
            "add" => cmd_add(rest),
            _ => Err(USAGE.to_string()),
        },
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("svfuzz: {message}");
            ExitCode::FAILURE
        }
    }
}
