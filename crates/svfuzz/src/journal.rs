//! Replayable journals for corpus cases.
//!
//! Every corpus case carries a session journal recorded by
//! [`assertsolver::evaluate_model_journaled`]: a bug entry is derived from the
//! case's pristine `base_source` (mirroring the Stage-2 pipeline: inject,
//! verify, simulate, classify), evaluated under the quick protocol, and the
//! rendered journal is embedded in the artifact. `repro` re-derives the entry
//! from `(base_source, derive_seed)` alone and byte-compares the journals —
//! the same record/replay contract `svreplay` enforces for full evaluations.

use assertsolver::{evaluate_model_journaled, EvalConfig, JournalManifest};
use svdata::SvaBugEntry;
use svgen::render_spec;
use svmodel::{AssertSolverModel, RepairModel};
use svmutate::{classify_visibility, single_line_diff, BugInjector, BugProfile};
use svparse::{emit_module, parse_module};
use svserve::parse_journal;
use svsim::failing_assertions_in_log;
use svverify::{CheckConfig, SvaValidity, Verdict, VerifyOracle};

use crate::finding::CaseFile;

/// Fixed evaluation seed for case journals (part of the artifact contract).
const JOURNAL_EVAL_SEED: u64 = 7;

/// Function description attached to derived specs.
const MINED_FUNCTION: &str = "fuzz-mined regression case";

/// The bounded-check protocol used while deriving entries (validation and
/// failure-triggering); small enough for CI, fixed so derivation is stable.
fn derivation_check_config() -> CheckConfig {
    CheckConfig {
        depth: 10,
        random_cases: 8,
        ..CheckConfig::default()
    }
}

/// Derives a journalable bug entry from a golden source with one injector
/// seed: inject a bug, require an assertion-failure witness within the bound,
/// simulate it for logs, classify, and assemble the [`SvaBugEntry`].
///
/// Returns `None` when this seed yields no assertion-visible bug (the caller
/// probes successive seeds via [`find_derivation`]).
pub fn derive_entry(base_source: &str, derive_seed: u64) -> Option<SvaBugEntry> {
    let golden = parse_module(base_source).ok()?;
    let oracle = VerifyOracle::new(derivation_check_config());
    if oracle.sva_valid_on_golden(&golden) != SvaValidity::Valid {
        return None;
    }
    let golden_text = emit_module(&golden);
    let mut injector = BugInjector::new(derive_seed);
    for bug in injector.inject_batch(&golden, 4) {
        let buggy_text = emit_module(&bug.buggy);
        let Some(diff) = single_line_diff(&golden_text, &buggy_text) else {
            continue;
        };
        let Ok(Some(Verdict::Fail { witness, .. })) = oracle.bug_triggers_failure(&bug.buggy)
        else {
            continue;
        };
        let Ok(outcome) = svsim::simulate(&bug.buggy, &witness) else {
            continue;
        };
        let failing = failing_assertions_in_log(&outcome.log);
        let visibility = classify_visibility(&golden, &bug.affected_signals, &failing);
        let code_lines = buggy_text.lines().count();
        return Some(SvaBugEntry {
            module_name: golden.name.clone(),
            spec: render_spec(&golden, MINED_FUNCTION),
            buggy_source: buggy_text,
            golden_source: golden_text.clone(),
            logs: outcome.log,
            failing_assertions: failing,
            bug_line_number: diff.line,
            buggy_line: diff.buggy_line.clone(),
            fixed_line: diff.golden_line.clone(),
            profile: BugProfile::new(bug.kind, bug.structural, visibility),
            cot: None,
            code_lines,
            human_crafted: false,
        });
    }
    None
}

/// Probes injector seeds `1..=16` until one yields a journalable entry.
pub fn find_derivation(base_source: &str) -> Option<(u64, SvaBugEntry)> {
    (1..=16u64).find_map(|seed| derive_entry(base_source, seed).map(|entry| (seed, entry)))
}

/// Records the case journal: one-entry quick-protocol evaluation under the
/// base model, with the corpus tag naming the case.
pub fn render_case_journal(entry: &SvaBugEntry, corpus_tag: &str) -> String {
    let model = AssertSolverModel::base(JOURNAL_EVAL_SEED);
    let config = EvalConfig::quick(JOURNAL_EVAL_SEED);
    let entries = std::slice::from_ref(entry);
    let manifest = JournalManifest::for_protocol(
        &format!("base:{JOURNAL_EVAL_SEED}"),
        corpus_tag,
        &model.identity(),
        entries,
        &config,
    );
    evaluate_model_journaled(&model, entries, &config, &manifest).1
}

/// The corpus tag a case's journal manifest carries.
pub fn case_corpus_tag(family: &str, fingerprint: &str) -> String {
    format!("svfuzz:{family}:{fingerprint}")
}

/// Validates a case's embedded journal: parse (header/footer checksums), then
/// re-derive the entry from `(base_source, derive_seed)`, re-drive the
/// evaluation, and byte-compare — any divergence is reported with the first
/// differing line.
pub fn verify_case_journal(case: &CaseFile) -> Result<(), String> {
    if case.journal.is_empty() {
        return Err("case carries no journal".to_string());
    }
    parse_journal(&case.journal).map_err(|err| format!("embedded journal is malformed: {err}"))?;
    let entry = derive_entry(&case.base_source, case.derive_seed).ok_or_else(|| {
        format!(
            "cannot re-derive the bug entry from base_source with derive_seed {}",
            case.derive_seed
        )
    })?;
    let rendered = render_case_journal(&entry, &case_corpus_tag(&case.family, &case.fingerprint));
    if rendered != case.journal {
        let diverged = rendered
            .lines()
            .zip(case.journal.lines())
            .position(|(a, b)| a != b)
            .map(|idx| idx + 1)
            .unwrap_or_else(|| rendered.lines().count().min(case.journal.lines().count()) + 1);
        return Err(format!(
            "journal replay diverged (first difference on line {diverged})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgen::{instantiate, Family, FamilyParams};

    #[test]
    fn derivation_and_journal_are_deterministic() {
        let base = instantiate(Family::Counter, FamilyParams::default(), 0).source;
        let (seed, entry) = find_derivation(&base).expect("counter derives an entry");
        let again = derive_entry(&base, seed).expect("derivation repeats");
        assert_eq!(entry, again);
        let a = render_case_journal(&entry, "svfuzz:counter:test");
        let b = render_case_journal(&entry, "svfuzz:counter:test");
        assert_eq!(a, b, "journal must be byte-deterministic");
        assert!(parse_journal(&a).is_ok());
    }

    #[test]
    fn derivation_fails_cleanly_on_malformed_base() {
        assert!(derive_entry("module m(", 1).is_none());
    }
}
