//! Delta-debugging minimizer.
//!
//! Classic ddmin over source lines, followed by a per-line tail-trim pass. The
//! predicate receives a candidate and returns `true` when the failure of
//! interest still reproduces; the minimizer only ever returns candidates the
//! predicate accepted, so the shrunk case is guaranteed to still fail. A
//! predicate-evaluation budget bounds worst-case cost; when it runs out the
//! best candidate so far is returned.

/// Minimizes `source` line-wise while `still_fails` keeps returning `true`.
///
/// `budget` caps the number of predicate evaluations (256 is plenty for the
/// module sizes the generators produce).
pub fn ddmin_lines(source: &str, still_fails: impl Fn(&str) -> bool, budget: usize) -> String {
    let mut remaining = budget;
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    if lines.is_empty() || !check(&lines, &still_fails, &mut remaining) {
        return source.to_string();
    }

    let mut chunks = 2usize;
    while lines.len() >= 2 && remaining > 0 {
        let chunk_len = lines.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0usize;
        while start < lines.len() && remaining > 0 {
            let end = (start + chunk_len).min(lines.len());
            let candidate: Vec<String> = lines[..start]
                .iter()
                .chain(lines[end..].iter())
                .cloned()
                .collect();
            if !candidate.is_empty() && check(&candidate, &still_fails, &mut remaining) {
                lines = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunks >= lines.len() {
                break;
            }
            chunks = (chunks * 2).min(lines.len());
        }
    }

    let joined = lines.join("\n");
    trim_line_tails(&joined, still_fails, &mut remaining)
}

/// Tries to shorten each line from the right (dropping trailing fragments)
/// while the failure persists.
fn trim_line_tails(
    source: &str,
    still_fails: impl Fn(&str) -> bool,
    remaining: &mut usize,
) -> String {
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    for index in 0..lines.len() {
        // Halve the line's tail repeatedly.
        loop {
            if *remaining == 0 {
                return lines.join("\n");
            }
            let line = &lines[index];
            if line.len() < 2 {
                break;
            }
            let cut = line.len() / 2;
            let mut candidate = lines.clone();
            candidate[index] = line[..cut].trim_end().to_string();
            if check(&candidate, &still_fails, remaining) {
                lines = candidate;
            } else {
                break;
            }
        }
    }
    lines.join("\n")
}

fn check(lines: &[String], still_fails: &impl Fn(&str) -> bool, remaining: &mut usize) -> bool {
    if *remaining == 0 {
        return false;
    }
    *remaining -= 1;
    still_fails(&lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_relevant_line() {
        let source = (0..40)
            .map(|i| format!("line {i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let shrunk = ddmin_lines(&source, |cand| cand.contains("line 17"), 256);
        assert!(shrunk.contains("line 17"));
        assert!(
            shrunk.lines().count() <= 2,
            "expected near-minimal output, got:\n{shrunk}"
        );
    }

    #[test]
    fn returns_input_when_predicate_never_fires() {
        let shrunk = ddmin_lines("a\nb\nc", |_| false, 64);
        assert_eq!(shrunk, "a\nb\nc");
    }

    #[test]
    fn respects_the_budget() {
        let source = (0..64)
            .map(|i| format!("l{i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let calls = std::cell::Cell::new(0usize);
        let _ = ddmin_lines(
            &source,
            |_| {
                calls.set(calls.get() + 1);
                true
            },
            10,
        );
        assert!(calls.get() <= 10);
    }

    #[test]
    fn is_deterministic() {
        let source = (0..30)
            .map(|i| format!("x {i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let pred = |cand: &str| cand.contains("x 3") && cand.contains("x 21");
        assert_eq!(
            ddmin_lines(&source, pred, 256),
            ddmin_lines(&source, pred, 256)
        );
    }

    #[test]
    fn trims_line_tails() {
        let shrunk = ddmin_lines(
            "needle plus a very long irrelevant tail of text",
            |cand| cand.contains("needle"),
            256,
        );
        assert!(shrunk.contains("needle"));
        assert!(shrunk.len() < "needle plus a very long irrelevant tail of text".len());
    }
}
