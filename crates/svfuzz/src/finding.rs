//! Mined findings and the self-describing corpus case format.
//!
//! Two fingerprints with different jobs:
//!
//! * the **class** fingerprint deduplicates findings *during a run*: FNV-1a/64
//!   over the oracle tag and the failure detail with digits blanked, so "span
//!   out of range: line 7 of 5" and "... line 9 of 6" collapse into one class;
//! * the **case** fingerprint identifies a *corpus artifact*: FNV-1a/64 over
//!   the oracle tag, the (shrunk) source and the expectation — it names the
//!   file on disk and pins `repro` to the exact input.

use crate::oracle::OracleKind;
use serde::{Deserialize, Serialize};
use svserve::persist::fnv64;

/// Schema tag of the corpus case format.
pub const CASE_SCHEMA: &str = "svfuzz-case-v1";

/// What `repro` must observe when re-driving a case's oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// The oracle still fails on this input (an open finding).
    Fails,
    /// The oracle passes: the underlying defect is fixed and the case guards
    /// against regression.
    Passes,
}

impl Expectation {
    /// Stable tag used in fingerprints and the CLI.
    pub fn tag(&self) -> &'static str {
        match self {
            Expectation::Fails => "fail",
            Expectation::Passes => "pass",
        }
    }

    /// Parses a tag back into the expectation.
    pub fn from_tag(tag: &str) -> Option<Expectation> {
        match tag {
            "fail" => Some(Expectation::Fails),
            "pass" => Some(Expectation::Passes),
            _ => None,
        }
    }
}

/// One self-describing corpus case, stored as pretty JSON under
/// `fuzz/corpus/<family>/<oracle>-<fingerprint>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseFile {
    /// Format tag ([`CASE_SCHEMA`]).
    pub schema: String,
    /// The oracle that caught (or now guards) this input.
    pub oracle: OracleKind,
    /// Tag of the design family the input derives from.
    pub family: String,
    /// What `repro` must observe.
    pub expect: Expectation,
    /// Failure-class fingerprint (deduplication key), hex.
    pub class: String,
    /// Case fingerprint (artifact identity), hex.
    pub fingerprint: String,
    /// Run seed that mined the case (0 for externally registered ones).
    pub seed: u64,
    /// Iteration within the run that produced the input.
    pub iteration: u64,
    /// Human-readable description of the original failure.
    pub detail: String,
    /// The (shrunk) input driven at the oracle.
    pub source: String,
    /// Pristine golden source the replayable journal derives from.
    pub base_source: String,
    /// Injector seed that turned `base_source` into a journalable bug entry.
    pub derive_seed: u64,
    /// Rendered session journal; `repro` re-derives it and byte-compares.
    pub journal: String,
}

/// Failure-class fingerprint: oracle tag plus the detail with digits blanked.
pub fn class_fingerprint(oracle: OracleKind, detail: &str) -> u64 {
    let mut bytes: Vec<u8> = oracle.tag().as_bytes().to_vec();
    bytes.push(0);
    bytes.extend(
        detail
            .bytes()
            .map(|b| if b.is_ascii_digit() { b'#' } else { b }),
    );
    fnv64(&bytes)
}

/// Case fingerprint: oracle tag, source bytes and expectation.
pub fn case_fingerprint(oracle: OracleKind, source: &str, expect: Expectation) -> u64 {
    let mut bytes: Vec<u8> = oracle.tag().as_bytes().to_vec();
    bytes.push(0);
    bytes.extend_from_slice(source.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(expect.tag().as_bytes());
    fnv64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fingerprint_blanks_digits() {
        let a = class_fingerprint(OracleKind::ParserEnvelope, "span out of range: line 7 of 5");
        let b = class_fingerprint(OracleKind::ParserEnvelope, "span out of range: line 9 of 6");
        assert_eq!(a, b);
        let c = class_fingerprint(OracleKind::Roundtrip, "span out of range: line 7 of 5");
        assert_ne!(a, c, "oracle kind must separate classes");
    }

    #[test]
    fn case_fingerprint_separates_inputs_and_expectations() {
        let a = case_fingerprint(OracleKind::Roundtrip, "module m;", Expectation::Fails);
        let b = case_fingerprint(OracleKind::Roundtrip, "module n;", Expectation::Fails);
        let c = case_fingerprint(OracleKind::Roundtrip, "module m;", Expectation::Passes);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn expectation_tags_roundtrip() {
        for expect in [Expectation::Fails, Expectation::Passes] {
            assert_eq!(Expectation::from_tag(expect.tag()), Some(expect));
        }
        assert_eq!(Expectation::from_tag("maybe"), None);
    }

    #[test]
    fn case_file_serializes_roundtrip() {
        let case = CaseFile {
            schema: CASE_SCHEMA.to_string(),
            oracle: OracleKind::BmcPermutation,
            family: "counter".to_string(),
            expect: Expectation::Passes,
            class: format!("{:016x}", 7u64),
            fingerprint: format!("{:016x}", 9u64),
            seed: 1,
            iteration: 2,
            detail: "d".to_string(),
            source: "s".to_string(),
            base_source: "b".to_string(),
            derive_seed: 3,
            journal: "j".to_string(),
        };
        let text = serde_json::to_string(&case).unwrap();
        let back: CaseFile = serde_json::from_str(&text).unwrap();
        assert_eq!(case, back);
    }
}
