//! # svfuzz — deterministic differential fuzzing for the AssertSolver toolchain
//!
//! A dependency-free fuzzing harness whose every run is a **pure function of
//! `(seed, iteration budget)`**: the same seed produces byte-identical finding
//! logs and corpus artifacts on every machine, at any driver-thread setting.
//! Three layers:
//!
//! * **Generators** ([`generate`]) — a grammar-aware synthesizer built on the
//!   `svgen` design families (valid modules across widths, depths and variants)
//!   plus a byte/token-level mangler that degrades them into near-miss and
//!   invalid inputs for parser hardening.
//! * **Oracles** ([`oracle`]) — differential properties every input is driven
//!   through: the parser envelope (no panic, error spans within the source),
//!   the `parse ↔ emit_file` structural roundtrip, `svmutate` operator closure
//!   (every injected bug reparses, classifies under the Table-I taxonomy and is
//!   re-locatable by `sites`), and `svverify` BMC consistency (permuting a
//!   module's concurrent items must not change the verdict).
//! * **Miner** ([`miner`]) — findings are deduplicated by failure class,
//!   shrunk with a built-in delta-debugging minimizer ([`shrink`]), and written
//!   to `fuzz/corpus/<family>/` as self-describing JSON cases ([`finding`],
//!   [`corpus`]). Each case is re-driven through
//!   [`assertsolver::evaluate_model_journaled`] so the artifact carries a
//!   replayable session journal ([`journal`]) that byte-verifies on `repro`.
//!
//! The `svfuzz` binary exposes `run --seed N --iters M`, `repro <case>`,
//! `min <case>` and `add` (register an externally-found regression).
//!
//! ## Quick example
//!
//! ```
//! use svfuzz::{run_fuzz, FuzzConfig};
//!
//! let a = run_fuzz(&FuzzConfig::new(1, 40));
//! let b = run_fuzz(&FuzzConfig::new(1, 40));
//! assert_eq!(a.log, b.log); // byte-deterministic
//! ```

pub mod corpus;
pub mod finding;
pub mod generate;
pub mod journal;
pub mod miner;
pub mod oracle;
pub mod shrink;

pub use corpus::{case_path, load_case, load_corpus, mined_samples, repro_case, write_case};
pub use finding::{case_fingerprint, class_fingerprint, CaseFile, Expectation, CASE_SCHEMA};
pub use generate::{generate_input, mangle, FuzzInput};
pub use journal::{derive_entry, find_derivation, render_case_journal, verify_case_journal};
pub use miner::{compose_case, run_fuzz, FuzzConfig, FuzzReport, FuzzStats};
pub use oracle::{drive_oracle, OracleKind, OracleOutcome};
pub use shrink::ddmin_lines;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::CaseFile>();
        assert_send_sync::<super::FuzzConfig>();
        assert_send_sync::<super::FuzzReport>();
    }
}
