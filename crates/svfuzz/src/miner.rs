//! The fuzzing loop: generate → oracle sweep → dedupe → shrink → compose.
//!
//! A run is a pure function of its [`FuzzConfig`]: the finding log, the
//! statistics and every composed corpus case are byte-identical across
//! machines, reruns and driver-thread settings. The loop itself is
//! single-threaded; the only concurrency in the system lives below
//! `evaluate_model_journaled`, whose journal bytes are already proven
//! driver-count-invariant.

use crate::finding::{case_fingerprint, class_fingerprint, CaseFile, Expectation, CASE_SCHEMA};
use crate::generate::{generate_input, iteration_rng, FuzzInput};
use crate::journal::{case_corpus_tag, find_derivation, render_case_journal};
use crate::oracle::{drive_oracle, OracleKind, OracleOutcome};
use crate::shrink::ddmin_lines;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Configuration of a fuzzing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Run seed; with `iters` it fully determines the run.
    pub seed: u64,
    /// Number of inputs to generate and drive.
    pub iters: u64,
    /// Drive the mutation-closure oracle every Nth iteration (cost control).
    pub mutate_every: u64,
    /// Drive the BMC-permutation oracle every Nth iteration (cost control).
    pub bmc_every: u64,
    /// Predicate-evaluation budget per shrink.
    pub shrink_budget: usize,
}

impl FuzzConfig {
    /// The default cadence for a `(seed, iters)` pair.
    pub fn new(seed: u64, iters: u64) -> Self {
        Self {
            seed,
            iters,
            mutate_every: 4,
            bmc_every: 8,
            shrink_budget: 256,
        }
    }
}

/// Aggregate counters of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Inputs generated.
    pub inputs: u64,
    /// Inputs that parsed.
    pub parsed: u64,
    /// Oracle failures observed (before deduplication).
    pub findings: u64,
    /// Unique failure classes.
    pub unique: u64,
}

/// Everything a run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The deterministic finding log (stdout of `svfuzz run`).
    pub log: String,
    /// Composed corpus cases, one per unique failure class that could be
    /// journaled.
    pub cases: Vec<CaseFile>,
    /// Aggregate counters.
    pub stats: FuzzStats,
}

/// Runs the fuzzing loop.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut log = String::new();
    let mut cases = Vec::new();
    let mut stats = FuzzStats::default();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let _ = writeln!(
        log,
        "svfuzz: run seed={} iters={}",
        config.seed, config.iters
    );

    for iteration in 0..config.iters {
        let mut rng = iteration_rng(config.seed, iteration);
        let input = generate_input(&mut rng, iteration);
        stats.inputs += 1;
        let parses = svparse::parse(&input.source).is_ok();
        if parses {
            stats.parsed += 1;
        }
        for kind in oracles_for(config, iteration, parses) {
            let OracleOutcome::Fail { detail } = drive_oracle(kind, &input.source) else {
                continue;
            };
            stats.findings += 1;
            let class = class_fingerprint(kind, &detail);
            if !seen.insert(class) {
                continue;
            }
            stats.unique += 1;
            let _ = writeln!(
                log,
                "finding class={class:016x} oracle={kind} family={} iter={iteration} detail={detail}",
                input.family.tag()
            );
            match mine_case(config, &input, kind, class, &detail, iteration) {
                Ok(case) => {
                    let _ = writeln!(
                        log,
                        "case oracle={kind} family={} fingerprint={} lines={}",
                        case.family,
                        case.fingerprint,
                        case.source.lines().count()
                    );
                    cases.push(case);
                }
                Err(reason) => {
                    let _ = writeln!(log, "uncased class={class:016x} reason={reason}");
                }
            }
        }
    }

    let _ = writeln!(
        log,
        "svfuzz: inputs={} parsed={} findings={} unique={} cases={}",
        stats.inputs,
        stats.parsed,
        stats.findings,
        stats.unique,
        cases.len()
    );
    FuzzReport { log, cases, stats }
}

/// The oracle cadence for one iteration. The envelope always runs; the
/// structural oracles only make sense on parseable inputs, and the expensive
/// ones are subsampled.
fn oracles_for(config: &FuzzConfig, iteration: u64, parses: bool) -> Vec<OracleKind> {
    // The wire oracle is content-derived, cheap (one frame codec round plus
    // bounded corruptions) and meaningful on unparseable inputs too, so it
    // runs every iteration alongside the envelope.
    let mut kinds = vec![OracleKind::ParserEnvelope, OracleKind::WireStats];
    if parses {
        kinds.push(OracleKind::Roundtrip);
        if iteration.is_multiple_of(config.mutate_every.max(1)) {
            kinds.push(OracleKind::MutateClosure);
        }
        if iteration.is_multiple_of(config.bmc_every.max(1)) {
            kinds.push(OracleKind::BmcPermutation);
        }
    }
    kinds
}

/// Shrinks a novel finding and composes the corpus case, journal included.
fn mine_case(
    config: &FuzzConfig,
    input: &FuzzInput,
    kind: OracleKind,
    class: u64,
    detail: &str,
    iteration: u64,
) -> Result<CaseFile, String> {
    let shrunk = ddmin_lines(
        &input.source,
        |candidate| {
            drive_oracle(kind, candidate)
                .detail()
                .map(|d| class_fingerprint(kind, d) == class)
                .unwrap_or(false)
        },
        config.shrink_budget,
    );
    // Re-derive the detail on the shrunk input (line numbers may have moved).
    let detail = drive_oracle(kind, &shrunk)
        .detail()
        .map(str::to_string)
        .unwrap_or_else(|| detail.to_string());
    compose_case(
        kind,
        input.family.tag(),
        &shrunk,
        &input.base_source,
        &detail,
        Expectation::Fails,
        config.seed,
        iteration,
    )
}

/// Composes a full corpus case: fingerprints, entry derivation and the
/// replayable journal. Fails when no injector seed yields a journalable bug
/// entry from the base source.
#[allow(clippy::too_many_arguments)]
pub fn compose_case(
    oracle: OracleKind,
    family: &str,
    source: &str,
    base_source: &str,
    detail: &str,
    expect: Expectation,
    seed: u64,
    iteration: u64,
) -> Result<CaseFile, String> {
    let (derive_seed, entry) = find_derivation(base_source)
        .ok_or_else(|| "no injector seed yields a journalable entry".to_string())?;
    let fingerprint = format!("{:016x}", case_fingerprint(oracle, source, expect));
    let journal = render_case_journal(&entry, &case_corpus_tag(family, &fingerprint));
    Ok(CaseFile {
        schema: CASE_SCHEMA.to_string(),
        oracle,
        family: family.to_string(),
        expect,
        class: format!("{:016x}", class_fingerprint(oracle, detail)),
        fingerprint,
        seed,
        iteration,
        detail: detail.to_string(),
        source: source.to_string(),
        base_source: base_source.to_string(),
        derive_seed,
        journal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_byte_deterministic() {
        let a = run_fuzz(&FuzzConfig::new(3, 48));
        let b = run_fuzz(&FuzzConfig::new(3, 48));
        assert_eq!(a.log, b.log);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_fuzz(&FuzzConfig::new(1, 32));
        let b = run_fuzz(&FuzzConfig::new(2, 32));
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn stats_add_up() {
        let report = run_fuzz(&FuzzConfig::new(5, 64));
        assert_eq!(report.stats.inputs, 64);
        assert!(report.stats.parsed > 0, "some inputs must parse");
        assert!(report.stats.parsed <= report.stats.inputs);
        assert!(report.stats.unique <= report.stats.findings);
        assert!(report.cases.len() as u64 <= report.stats.unique);
        assert!(report.log.ends_with('\n'));
    }
}
