//! Input generation: grammar-aware synthesis plus a byte/token-level mangler.
//!
//! The grammar layer instantiates `svgen` design families at seeded parameter
//! points far beyond what the curated corpora sweep (1-bit data paths, deep
//! pipelines, every variant). The mangler then degrades a fraction of those
//! sources — deleting spans, splicing families together, nesting expressions
//! past the parser's depth bound — so the oracles also see near-miss and
//! outright invalid inputs, not just healthy ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgen::{instantiate, Family, FamilyParams};

/// One generated fuzz input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzInput {
    /// The source text driven at the oracles (possibly mangled).
    pub source: String,
    /// The family whose instance seeded this input.
    pub family: Family,
    /// The pristine family source the input was derived from (journal base).
    pub base_source: String,
    /// `true` when the mangler ran over the family source.
    pub mangled: bool,
}

/// Tokens the mangler splices into sources; a mix of keywords, operators and
/// literal fragments that keep most mutants near the grammar.
const SPLICE_TOKENS: &[&str] = &[
    "module",
    "endmodule",
    "assign",
    "always",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "endcase",
    "property",
    "endproperty",
    "assert",
    "posedge",
    "negedge",
    "wire",
    "reg",
    "input",
    "output",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ":",
    ",",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "|->",
    "|=>",
    "##1",
    "##2",
    "?",
    "~",
    "!",
    "^",
    "@",
    "'d3",
    "4'b1010",
    "$past(",
    "$rose(",
    "$stable(",
];

/// Bytes the single-character replacement op draws from.
const ALPHABET: &[u8] = b"abcxyz019 ()[]{};:,=+-*/%&|^~!<>?@#$_.'\"\n";

/// Generates the fuzz input for one iteration.
///
/// The result is a pure function of `(seed, iteration)`: the caller derives
/// `rng` from them and the same pair always yields the same input.
pub fn generate_input(rng: &mut StdRng, iteration: u64) -> FuzzInput {
    let families = Family::all();
    let family = families[rng.gen_range(0..families.len())];
    let params = FamilyParams {
        width: rng.gen_range(1..=16u32),
        depth: rng.gen_range(1..=14u32),
        variant: rng.gen_range(0..4u32),
    };
    let inst = instantiate(family, params, iteration as usize);
    let base_source = inst.source.clone();
    if rng.gen_bool(0.45) {
        FuzzInput {
            source: mangle(&inst.source, rng),
            family,
            base_source,
            mangled: true,
        }
    } else {
        FuzzInput {
            source: inst.source,
            family,
            base_source,
            mangled: false,
        }
    }
}

/// Applies one to three random mangling operations to a source.
pub fn mangle(source: &str, rng: &mut StdRng) -> String {
    let mut text = source.to_string();
    for _ in 0..rng.gen_range(1..=3u32) {
        text = mangle_once(&text, rng);
    }
    text
}

fn mangle_once(text: &str, rng: &mut StdRng) -> String {
    if text.is_empty() {
        return text.to_string();
    }
    let bytes = text.as_bytes();
    match rng.gen_range(0..9u32) {
        // Delete a short byte span.
        0 => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=24usize.min(bytes.len() - start));
            let mut out = bytes[..start].to_vec();
            out.extend_from_slice(&bytes[start + len..]);
            String::from_utf8_lossy(&out).into_owned()
        }
        // Duplicate a random line.
        1 => {
            let lines: Vec<&str> = text.lines().collect();
            let idx = rng.gen_range(0..lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, line) in lines.iter().enumerate() {
                out.push(line);
                if i == idx {
                    out.push(line);
                }
            }
            out.join("\n")
        }
        // Delete a random line.
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            let idx = rng.gen_range(0..lines.len());
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        // Replace one byte with a random alphabet byte.
        3 => {
            let mut out = bytes.to_vec();
            let idx = rng.gen_range(0..out.len());
            out[idx] = ALPHABET[rng.gen_range(0..ALPHABET.len())];
            String::from_utf8_lossy(&out).into_owned()
        }
        // Insert a grammar token at a random position.
        4 => {
            let pos = rng.gen_range(0..=bytes.len());
            let token = SPLICE_TOKENS[rng.gen_range(0..SPLICE_TOKENS.len())];
            format!("{} {} {}", &text[..pos], token, &text[pos..])
        }
        // Truncate.
        5 => text[..rng.gen_range(0..bytes.len())].to_string(),
        // Swap two lines.
        6 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = rng.gen_range(0..lines.len());
                let b = rng.gen_range(0..lines.len());
                lines.swap(a, b);
            }
            lines.join("\n")
        }
        // Nest the first right-hand side in parentheses, sometimes past the
        // parser's depth bound (the stack-exhaustion regression's shape).
        7 => {
            let depth = rng.gen_range(1..=96usize);
            nest_first_rhs(text, depth)
        }
        // Splice this source with another family instance.
        _ => {
            let families = Family::all();
            let other = instantiate(
                families[rng.gen_range(0..families.len())],
                FamilyParams::default(),
                rng.gen_range(0..64usize),
            );
            let cut_a = rng.gen_range(0..=bytes.len());
            let cut_b = rng.gen_range(0..=other.source.len());
            format!("{}{}", &text[..cut_a], &other.source[cut_b..])
        }
    }
}

/// Wraps the first `= <expr>;` right-hand side in `depth` parentheses.
fn nest_first_rhs(text: &str, depth: usize) -> String {
    let Some(eq) = text.find("= ") else {
        return text.to_string();
    };
    let rhs_start = eq + 2;
    let Some(semi_rel) = text[rhs_start..].find(';') else {
        return text.to_string();
    };
    let semi = rhs_start + semi_rel;
    format!(
        "{}{}{}{}{}",
        &text[..rhs_start],
        "(".repeat(depth),
        &text[rhs_start..semi],
        ")".repeat(depth),
        &text[semi..]
    )
}

/// Derives the per-iteration RNG from the run seed and iteration index.
pub fn iteration_rng(seed: u64, iteration: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_input(&mut iteration_rng(7, 3), 3);
        let b = generate_input(&mut iteration_rng(7, 3), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn unmangled_inputs_parse() {
        let mut parsed = 0;
        for i in 0..64u64 {
            let input = generate_input(&mut iteration_rng(11, i), i);
            if !input.mangled {
                assert!(
                    svparse::parse(&input.source).is_ok(),
                    "family source must parse:\n{}",
                    input.source
                );
                parsed += 1;
            }
            assert!(svparse::parse(&input.base_source).is_ok());
        }
        assert!(parsed > 8, "grammar mode should dominate: {parsed}");
    }

    #[test]
    fn mangler_produces_different_text() {
        let inst = instantiate(Family::Counter, FamilyParams::default(), 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut changed = 0;
        for _ in 0..16 {
            if mangle(&inst.source, &mut rng) != inst.source {
                changed += 1;
            }
        }
        assert!(changed >= 12, "mangler rarely changes text: {changed}");
    }

    #[test]
    fn nesting_op_exceeds_parser_bound_sometimes() {
        let src = "module m(input a, output y);\nassign y = a;\nendmodule\n";
        let nested = nest_first_rhs(src, 96);
        let err = svparse::parse(&nested).expect_err("96 levels exceed the bound");
        assert!(err.to_string().contains("nesting deeper"));
    }

    // The mangler must never make `SliceRandom::shuffle` style order-dependent
    // choices that break determinism: same rng stream, same output.
    #[test]
    fn mangle_is_deterministic() {
        let inst = instantiate(Family::Fifo, FamilyParams::default(), 1);
        let a = mangle(&inst.source, &mut StdRng::seed_from_u64(9));
        let b = mangle(&inst.source, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn splice_tokens_and_alphabet_are_ascii() {
        assert!(SPLICE_TOKENS.iter().all(|t| t.is_ascii()));
        assert!(ALPHABET.is_ascii());
    }
}
