//! Corpus IO and the feed back into `svgen`.
//!
//! Cases live under `fuzz/corpus/<family>/<oracle>-<fingerprint>.json` as
//! pretty-printed JSON with a trailing newline (byte-stable for git diffs).
//! [`repro_case`] is the contract every checked-in case must satisfy:
//! the recorded oracle outcome reproduces and the embedded journal
//! byte-verifies. [`mined_samples`] turns cases into [`RawSample`]s so the
//! fuzzer's findings become one more corpus family for the data pipeline.

use crate::finding::{case_fingerprint, CaseFile, Expectation, CASE_SCHEMA};
use crate::journal::verify_case_journal;
use crate::oracle::{drive_oracle, OracleOutcome};
use std::fs;
use std::path::{Path, PathBuf};
use svgen::{Family, RawSample};

/// The on-disk location of a case inside a corpus root.
pub fn case_path(root: &Path, case: &CaseFile) -> PathBuf {
    root.join(&case.family)
        .join(format!("{}-{}.json", case.oracle.tag(), case.fingerprint))
}

/// Writes a case (pretty JSON, trailing newline) and returns its path.
pub fn write_case(root: &Path, case: &CaseFile) -> std::io::Result<PathBuf> {
    let path = case_path(root, case);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut text = serde_json::to_string_pretty(case).expect("case serializes");
    text.push('\n');
    fs::write(&path, text)?;
    Ok(path)
}

/// Loads one case file.
pub fn load_case(path: &Path) -> Result<CaseFile, String> {
    let text =
        fs::read_to_string(path).map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    let case: CaseFile = serde_json::from_str(&text)
        .map_err(|err| format!("{} is not a corpus case: {err}", path.display()))?;
    if case.schema != CASE_SCHEMA {
        return Err(format!(
            "{}: unsupported schema {:?} (expected {CASE_SCHEMA:?})",
            path.display(),
            case.schema
        ));
    }
    Ok(case)
}

/// Loads every case under a corpus root, sorted by path for determinism.
pub fn load_corpus(root: &Path) -> Result<Vec<(PathBuf, CaseFile)>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let entries =
        fs::read_dir(root).map_err(|err| format!("cannot read {}: {err}", root.display()))?;
    for family_dir in entries.flatten() {
        if !family_dir.path().is_dir() {
            continue;
        }
        let files = fs::read_dir(family_dir.path())
            .map_err(|err| format!("cannot read {}: {err}", family_dir.path().display()))?;
        for file in files.flatten() {
            if file.path().extension().is_some_and(|e| e == "json") {
                paths.push(file.path());
            }
        }
    }
    paths.sort();
    paths
        .into_iter()
        .map(|path| load_case(&path).map(|case| (path, case)))
        .collect()
}

/// Re-drives a case: the oracle outcome must match the recorded expectation
/// (same failure class for open findings), the fingerprint must match the
/// stored input, and the embedded journal must byte-verify.
pub fn repro_case(case: &CaseFile) -> Result<(), String> {
    let recomputed = format!(
        "{:016x}",
        case_fingerprint(case.oracle, &case.source, case.expect)
    );
    if recomputed != case.fingerprint {
        return Err(format!(
            "fingerprint mismatch: stored {} recomputed {recomputed}",
            case.fingerprint
        ));
    }
    let outcome = drive_oracle(case.oracle, &case.source);
    match (case.expect, &outcome) {
        (Expectation::Fails, OracleOutcome::Fail { detail }) => {
            let class = format!(
                "{:016x}",
                crate::finding::class_fingerprint(case.oracle, detail)
            );
            if class != case.class {
                return Err(format!(
                    "failure class drifted: stored {} observed {class} ({detail})",
                    case.class
                ));
            }
        }
        (Expectation::Fails, OracleOutcome::Pass) => {
            return Err(
                "expected the oracle to fail but it passes (fixed? re-register with expect=pass)"
                    .to_string(),
            );
        }
        (Expectation::Passes, OracleOutcome::Fail { detail }) => {
            return Err(format!("regression: oracle fails again: {detail}"));
        }
        (Expectation::Passes, OracleOutcome::Pass) => {}
    }
    verify_case_journal(case)
}

/// Converts cases into corpus samples for the `svgen` stream: the mined corpus
/// family the data pipeline consumes via
/// [`svgen::CorpusGenerator::generate_with_mined`].
pub fn mined_samples(cases: &[CaseFile]) -> Vec<RawSample> {
    cases
        .iter()
        .map(|case| {
            let family = Family::all()
                .iter()
                .copied()
                .find(|f| f.tag() == case.family)
                .unwrap_or(Family::Counter);
            RawSample::mined(
                case.source.clone(),
                format!("fuzz-mined {} case {}", case.oracle.tag(), case.fingerprint),
                family,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::compose_case;
    use crate::oracle::OracleKind;
    use svgen::{instantiate, FamilyParams, SampleOrigin};

    fn sample_case() -> CaseFile {
        let base = instantiate(Family::Counter, FamilyParams::default(), 0).source;
        compose_case(
            OracleKind::ParserEnvelope,
            Family::Counter.tag(),
            &base,
            &base,
            "registered regression",
            Expectation::Passes,
            0,
            0,
        )
        .expect("counter case composes")
    }

    #[test]
    fn case_roundtrips_through_disk_and_repro() {
        let case = sample_case();
        let root = std::env::temp_dir().join(format!("svfuzz-test-{}", std::process::id()));
        let path = write_case(&root, &case).expect("case writes");
        let loaded = load_case(&path).expect("case loads");
        assert_eq!(case, loaded);
        let all = load_corpus(&root).expect("corpus loads");
        assert_eq!(all.len(), 1);
        repro_case(&loaded).expect("case repros");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mined_samples_carry_the_mined_origin() {
        let case = sample_case();
        let samples = mined_samples(std::slice::from_ref(&case));
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].origin, SampleOrigin::Mined);
        assert_eq!(samples[0].family, Family::Counter);
        assert!(samples[0].function.contains(&case.fingerprint));
    }

    #[test]
    fn repro_rejects_tampered_cases() {
        let mut case = sample_case();
        case.source.push_str("\n// tampered");
        let err = repro_case(&case).expect_err("tampered source must be rejected");
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }
}
