//! Differential oracles.
//!
//! Every oracle is a pure function of the input source: internal seeds (bug
//! injection, item permutation) are derived from a content hash of the text, so
//! an outcome can be reproduced from a corpus case alone — no run state needed.
//!
//! * [`OracleKind::ParserEnvelope`] — parsing never panics, and on malformed
//!   input the reported error span stays within the source (line 0 is the
//!   documented "unknown" value and is accepted).
//! * [`OracleKind::Roundtrip`] — `emit_file ∘ parse` is idempotent and
//!   structure-preserving for any input that parses.
//! * [`OracleKind::MutateClosure`] — every `svmutate` operator applied to a
//!   parseable module yields a mutant that reparses, compile-checks, emits
//!   canonically, reports the requested [`BugKind`], and is re-locatable as a
//!   single differing site.
//! * [`OracleKind::BmcPermutation`] — permuting a module's concurrent items
//!   (`assign` / `always`) must not change the bounded-check verdict or the
//!   set of failing assertion names.
//! * [`OracleKind::WireStats`] — source-derived stats-plane payloads
//!   round-trip through their wire frames (`StatsReply`, `TraceReply`,
//!   `StatsWindowReply`), and every deterministic corruption of the encoded
//!   bytes (flips, truncations, oversized declarations,
//!   checksummed-but-mangled JSON) degrades to a decode error — never a
//!   panic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use svmutate::{collect_sites, replace_site, BugInjector, BugKind};
use svparse::ast::Item;
use svparse::pretty::emit_expr;
use svparse::{emit_file, emit_module, parse, parse_module, Module};
use svserve::persist::fnv64;
use svverify::{BoundedChecker, CheckConfig, Verdict};

/// The differential property an input is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// No panic; error spans within the source.
    ParserEnvelope,
    /// `parse ↔ emit_file` structural roundtrip.
    Roundtrip,
    /// Mutation-operator closure.
    MutateClosure,
    /// Bounded-check verdict invariance under concurrent-item permutation.
    BmcPermutation,
    /// Stats-plane wire-frame robustness (`StatsReply` / `TraceReply` /
    /// `StatsWindowReply`): corrupt bytes never panic.
    WireStats,
}

impl OracleKind {
    /// Every oracle, in the order the miner drives them.
    pub fn all() -> [OracleKind; 5] {
        [
            OracleKind::ParserEnvelope,
            OracleKind::Roundtrip,
            OracleKind::MutateClosure,
            OracleKind::BmcPermutation,
            OracleKind::WireStats,
        ]
    }

    /// Stable tag used in filenames, logs and the CLI.
    pub fn tag(&self) -> &'static str {
        match self {
            OracleKind::ParserEnvelope => "parser-envelope",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::MutateClosure => "mutate-closure",
            OracleKind::BmcPermutation => "bmc-permutation",
            OracleKind::WireStats => "wire-stats",
        }
    }

    /// Parses a tag back into the kind.
    pub fn from_tag(tag: &str) -> Option<OracleKind> {
        OracleKind::all().into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Result of driving one oracle over one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// The property holds (or is vacuous for this input).
    Pass,
    /// The property is violated; `detail` describes how.
    Fail {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl OracleOutcome {
    fn fail(detail: impl Into<String>) -> Self {
        OracleOutcome::Fail {
            detail: detail.into(),
        }
    }

    /// Returns the failure detail, if any.
    pub fn detail(&self) -> Option<&str> {
        match self {
            OracleOutcome::Pass => None,
            OracleOutcome::Fail { detail } => Some(detail),
        }
    }
}

/// The cheap bounded-check protocol the permutation oracle uses on both sides
/// of the diff. Small and fixed so a 1-core CI smoke run stays fast.
fn permutation_check_config() -> CheckConfig {
    CheckConfig {
        depth: 6,
        max_exhaustive_bits: 8,
        random_cases: 4,
        seed: 0xF522_0001,
    }
}

/// Drives one oracle over one source text. Pure: outcome depends only on
/// `(kind, source)`.
pub fn drive_oracle(kind: OracleKind, source: &str) -> OracleOutcome {
    match kind {
        OracleKind::ParserEnvelope => parser_envelope(source),
        OracleKind::Roundtrip => roundtrip(source),
        OracleKind::MutateClosure => mutate_closure(source),
        OracleKind::BmcPermutation => bmc_permutation(source),
        OracleKind::WireStats => wire_stats(source),
    }
}

fn parser_envelope(source: &str) -> OracleOutcome {
    let parsed = match catch_unwind(AssertUnwindSafe(|| parse(source))) {
        Err(_) => return OracleOutcome::fail("parser panicked"),
        Ok(result) => result,
    };
    match parsed {
        Err(err) => {
            let lines = source.lines().count().max(1);
            if err.line() as usize > lines {
                OracleOutcome::fail(format!(
                    "error span out of range: line {} of {} ({err})",
                    err.line(),
                    lines
                ))
            } else {
                OracleOutcome::Pass
            }
        }
        Ok(_) => match catch_unwind(AssertUnwindSafe(|| svparse::compile_check(source))) {
            Err(_) => OracleOutcome::fail("compile_check panicked"),
            Ok(_) => OracleOutcome::Pass,
        },
    }
}

fn roundtrip(source: &str) -> OracleOutcome {
    let Ok(file) = parse(source) else {
        return OracleOutcome::Pass; // vacuous: envelope owns invalid inputs
    };
    let once = emit_file(&file);
    let refile = match parse(&once) {
        Ok(refile) => refile,
        Err(err) => return OracleOutcome::fail(format!("canonical text does not re-parse: {err}")),
    };
    let twice = emit_file(&refile);
    if once != twice {
        return OracleOutcome::fail("emission is not idempotent");
    }
    if file.modules.len() != refile.modules.len() {
        return OracleOutcome::fail("module count drifted across the roundtrip");
    }
    for (a, b) in file.modules.iter().zip(refile.modules.iter()) {
        if a.name != b.name {
            return OracleOutcome::fail(format!("module name drifted: {} vs {}", a.name, b.name));
        }
        if a.ports.len() != b.ports.len() || a.items.len() != b.items.len() {
            return OracleOutcome::fail(format!("structure of {} drifted", a.name));
        }
    }
    OracleOutcome::Pass
}

fn mutate_closure(source: &str) -> OracleOutcome {
    let Ok(golden) = parse_module(source) else {
        return OracleOutcome::Pass;
    };
    let mut injector = BugInjector::new(fnv64(source.as_bytes()) ^ 0x3A7);
    for kind in BugKind::all() {
        let Some(bug) = injector.inject_with_kind(&golden, kind) else {
            continue;
        };
        let buggy_text = emit_module(&bug.buggy);
        let reparsed = match parse_module(&buggy_text) {
            Ok(m) => m,
            Err(err) => {
                return OracleOutcome::fail(format!("{kind} mutant does not reparse: {err}"))
            }
        };
        if svparse::compile_check(&buggy_text).is_err() {
            return OracleOutcome::fail(format!("{kind} mutant does not compile-check"));
        }
        if emit_module(&reparsed) != buggy_text {
            return OracleOutcome::fail(format!("{kind} mutant emission is not canonical"));
        }
        if bug.kind != kind {
            return OracleOutcome::fail(format!(
                "injector reported kind {} for a requested {kind}",
                bug.kind
            ));
        }
        let Some(site_index) = locate_single_site(&golden, &bug.buggy) else {
            return OracleOutcome::fail(format!(
                "{kind} mutant is not re-locatable as a single differing site"
            ));
        };
        let buggy_sites = collect_sites(&bug.buggy);
        let rebuilt = replace_site(&golden, site_index, buggy_sites[site_index].expr.clone());
        if emit_module(&rebuilt) != buggy_text {
            return OracleOutcome::fail(format!(
                "replaying the located {kind} site does not reproduce the mutant"
            ));
        }
    }
    OracleOutcome::Pass
}

/// Index of the single site whose expression differs, if exactly one does and
/// both modules enumerate the same number of sites.
fn locate_single_site(golden: &Module, buggy: &Module) -> Option<usize> {
    let golden_sites = collect_sites(golden);
    let buggy_sites = collect_sites(buggy);
    if golden_sites.len() != buggy_sites.len() {
        return None;
    }
    let differing: Vec<usize> = golden_sites
        .iter()
        .zip(buggy_sites.iter())
        .enumerate()
        .filter(|(_, (g, b))| emit_expr(&g.expr) != emit_expr(&b.expr))
        .map(|(i, _)| i)
        .collect();
    match differing.as_slice() {
        [index] => Some(*index),
        _ => None,
    }
}

fn bmc_permutation(source: &str) -> OracleOutcome {
    let Ok(module) = parse_module(source) else {
        return OracleOutcome::Pass;
    };
    // Deterministic cost cap: very large modules are covered by the other
    // oracles; the bounded check would dominate the iteration budget.
    if source.lines().count() > 160 {
        return OracleOutcome::Pass;
    }
    let checker = BoundedChecker::new(permutation_check_config());
    let baseline = checker.check_module(&module);
    let permuted = permute_concurrent_items(&module, fnv64(source.as_bytes()) ^ 0xB3C);
    let permuted_text = emit_module(&permuted);
    let reparsed = match parse_module(&permuted_text) {
        Ok(m) => m,
        Err(err) => return OracleOutcome::fail(format!("permuted module does not reparse: {err}")),
    };
    let diffed = checker.check_module(&reparsed);
    let (base_sig, perm_sig) = (verdict_signature(&baseline), verdict_signature(&diffed));
    if base_sig != perm_sig {
        return OracleOutcome::fail(format!(
            "verdict changed under item permutation: {base_sig:?} vs {perm_sig:?}"
        ));
    }
    OracleOutcome::Pass
}

fn wire_stats(source: &str) -> OracleOutcome {
    use svmodel::CaseInput;
    use svserve::{
        Frame, MetricClass, MetricsRegistry, RepairRequest, TelemetryWindows, TraceContext,
        TraceSpan, WireOutcome,
    };

    let seed = fnv64(source.as_bytes()) ^ 0x57A7;

    // A snapshot derived from the source content: one deterministic counter
    // plus a histogram fed source bytes, so corpus inputs reach different
    // bucket layouts, value magnitudes and JSON shapes.
    let registry = MetricsRegistry::default();
    registry
        .counter("fuzz.source.bytes", MetricClass::Deterministic)
        .add(source.len() as u64);
    let content = registry.histogram("fuzz.source.content", MetricClass::Volatile);
    for (i, byte) in source.bytes().take(64).enumerate() {
        content.observe(seed.rotate_left(i as u32) ^ u64::from(byte));
    }

    // A source-derived trace tree (the `TraceReply` payload): one root with a
    // child per leading source byte, ids flowing from the real derivation.
    let request = RepairRequest::new(
        CaseInput {
            spec: source.chars().take(48).collect(),
            buggy_source: source.to_string(),
            logs: format!("fuzz {seed:016x}"),
        },
        1 + (seed as usize) % 7,
        0.2,
    );
    let root = TraceContext::root(request.key(), seed);
    let mut spans = vec![TraceSpan::new(&root, "session", 0, 1, seed & 0xFFFF)];
    for (i, byte) in source.bytes().take(6).enumerate() {
        spans.push(TraceSpan::new(
            &root.child(&format!("stage.{byte}")),
            format!("stage.{byte}"),
            1 + i as u32,
            u64::from(byte),
            seed.rotate_left(i as u32) & 0xFFF,
        ));
    }

    // A source-derived window ring (the `StatsWindowReply` payload).
    let windows = TelemetryWindows::new(1 + seed % 16);
    for byte in source.bytes().take(32) {
        windows.record_submit();
        windows.record_complete(seed ^ u64::from(byte));
    }
    windows.record_shed();

    // Every stats-plane reply frame — cumulative registry, trace tree, time
    // window — faces the same corruption battery: a corrupt peer must always
    // degrade to a counted decode error, never a panic.
    let frames = [
        ("stats", Frame::StatsReply(registry.snapshot())),
        (
            "trace reply",
            Frame::TraceReply {
                outcome: WireOutcome {
                    responses: Vec::new(),
                    from_cache: seed & 1 == 0,
                },
                spans,
            },
        ),
        (
            "stats window",
            Frame::StatsWindowReply(windows.snapshot(seed % 5)),
        ),
    ];
    for (label, frame) in &frames {
        if let Some(outcome) = frame_corruption_battery(frame, seed, label) {
            return outcome;
        }
    }
    OracleOutcome::Pass
}

/// Runs one frame through the corruption battery; `Some` is a finding.
///
/// 1. the well-formed frame round-trips exactly;
/// 2. single-byte flips and truncations at seed-derived positions decode to
///    an error (length mismatch, checksum, codec) — never a panic, never a
///    silently accepted frame;
/// 3. an oversized length declaration is refused before any body allocation;
/// 4. a checksummed-but-mangled body — the shape a buggy (not malicious)
///    peer produces — decodes to an error or some other valid frame without
///    panicking, and the typed JSON parsers behind the stats plane
///    (registry snapshot, window snapshot, trace forest) absorb the mangled
///    text without panicking too.
fn frame_corruption_battery(
    frame: &svserve::Frame,
    seed: u64,
    label: &str,
) -> Option<OracleOutcome> {
    use svserve::{decode_frame, encode_frame};

    let bytes = match encode_frame(frame) {
        Ok(bytes) => bytes,
        Err(err) => {
            return Some(OracleOutcome::fail(format!(
                "{label} frame does not encode: {err}"
            )))
        }
    };
    match catch_unwind(AssertUnwindSafe(|| decode_frame(&bytes))) {
        Err(_) => {
            return Some(OracleOutcome::fail(format!(
                "decoding a well-formed {label} frame panicked"
            )))
        }
        Ok(Ok(decoded)) if decoded == *frame => {}
        Ok(Ok(_)) => {
            return Some(OracleOutcome::fail(format!(
                "{label} frame did not round-trip"
            )))
        }
        Ok(Err(err)) => {
            return Some(OracleOutcome::fail(format!(
                "well-formed {label} frame rejected: {err}"
            )))
        }
    }

    for step in 0..8u32 {
        let flip_at = (seed.rotate_left(step * 7) as usize) % bytes.len();
        let mut flipped = bytes.clone();
        flipped[flip_at] ^= 1 << (step % 8);
        match catch_unwind(AssertUnwindSafe(|| decode_frame(&flipped))) {
            Err(_) => {
                return Some(OracleOutcome::fail(format!(
                    "{label}: byte flip at {flip_at} panicked the frame decoder"
                )))
            }
            Ok(Err(_)) => {}
            Ok(Ok(_)) => {
                return Some(OracleOutcome::fail(format!(
                    "{label}: byte flip at {flip_at} was accepted as a valid frame"
                )))
            }
        }
        let cut = (seed.rotate_right(step * 5) as usize) % bytes.len();
        match catch_unwind(AssertUnwindSafe(|| decode_frame(&bytes[..cut]))) {
            Err(_) => {
                return Some(OracleOutcome::fail(format!(
                    "{label}: truncation to {cut} bytes panicked the frame decoder"
                )))
            }
            Ok(Err(_)) => {}
            Ok(Ok(_)) => {
                return Some(OracleOutcome::fail(format!(
                    "{label}: truncation to {cut} bytes was accepted as a valid frame"
                )))
            }
        }
    }

    let mut oversized = bytes.clone();
    oversized[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    if !matches!(
        catch_unwind(AssertUnwindSafe(|| decode_frame(&oversized))),
        Ok(Err(_))
    ) {
        return Some(OracleOutcome::fail(format!(
            "{label}: oversized length declaration was not cleanly refused"
        )));
    }

    let body = &bytes[12..];
    if !body.is_empty() {
        let drop_at = (seed as usize) % body.len();
        let mut mangled: Vec<u8> = body.to_vec();
        mangled.remove(drop_at);
        let mut reframed = Vec::with_capacity(12 + mangled.len());
        reframed.extend_from_slice(&(mangled.len() as u32).to_le_bytes());
        reframed.extend_from_slice(&fnv64(&mangled).to_le_bytes());
        reframed.extend_from_slice(&mangled);
        if catch_unwind(AssertUnwindSafe(|| decode_frame(&reframed))).is_err() {
            return Some(OracleOutcome::fail(format!(
                "{label}: mangled body (byte {drop_at} dropped, checksum fixed) \
                 panicked the decoder"
            )));
        }
        if let Ok(text) = std::str::from_utf8(&mangled) {
            let owned = text.to_string();
            type TextParser = fn(&str);
            let parsers: [(&str, TextParser); 3] = [
                ("registry snapshot", |t| {
                    let _ = svserve::RegistrySnapshot::parse_json(t);
                }),
                ("window snapshot", |t| {
                    let _ = svserve::WindowSnapshot::parse_json(t);
                }),
                ("trace forest", |t| {
                    let _ = svserve::TraceForest::parse_jsonl(t);
                }),
            ];
            for (parser_label, parser) in parsers {
                if catch_unwind(AssertUnwindSafe(|| parser(&owned))).is_err() {
                    return Some(OracleOutcome::fail(format!(
                        "{label}: {parser_label} parser panicked on mangled JSON"
                    )));
                }
            }
        }
    }
    None
}

/// Shuffles the positions of `assign`/`always` items among themselves, keeping
/// declarations, parameters, properties and assertions pinned in place. The
/// permutation preserves concurrent semantics, so the verdict must not move.
fn permute_concurrent_items(module: &Module, seed: u64) -> Module {
    let mut permuted = module.clone();
    let slots: Vec<usize> = module
        .items
        .iter()
        .enumerate()
        .filter(|(_, item)| matches!(item, Item::Assign(_) | Item::Always(_)))
        .map(|(i, _)| i)
        .collect();
    let mut order = slots.clone();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    for (&slot, &from) in slots.iter().zip(order.iter()) {
        permuted.items[slot] = module.items[from].clone();
    }
    permuted
}

/// The order-invariant part of a verdict: its status plus the sorted failing
/// assertion names. Witness stimuli and sequence counts may legally differ.
fn verdict_signature(verdict: &Verdict) -> (u8, Vec<String>) {
    match verdict {
        Verdict::Pass { .. } => (0, Vec::new()),
        Verdict::Fail { failures, .. } => {
            let mut names: Vec<String> = failures.iter().map(|f| f.assertion.clone()).collect();
            names.sort();
            names.dedup();
            (1, names)
        }
        Verdict::Unverifiable { .. } => (2, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgen::{instantiate, Family, FamilyParams};

    fn golden(family: Family) -> String {
        instantiate(family, FamilyParams::default(), 0).source
    }

    #[test]
    fn all_oracles_pass_on_golden_designs() {
        for family in [Family::Counter, Family::Parity, Family::EdgeDetector] {
            let source = golden(family);
            for kind in OracleKind::all() {
                assert_eq!(
                    drive_oracle(kind, &source),
                    OracleOutcome::Pass,
                    "{kind} fails on golden {family}"
                );
            }
        }
    }

    #[test]
    fn envelope_accepts_clean_errors_and_flags_nothing_on_them() {
        // Malformed inputs with in-range spans are a PASS for the envelope.
        for source in ["module m(", "module m();\nassign\n", "", "module"] {
            assert_eq!(
                drive_oracle(OracleKind::ParserEnvelope, source),
                OracleOutcome::Pass,
                "{source:?}"
            );
        }
    }

    #[test]
    fn deep_nesting_is_a_clean_envelope_pass_after_the_depth_limit_fix() {
        let nested = format!(
            "module m(input a, output y); assign y = {}a{}; endmodule",
            "(".repeat(1000),
            ")".repeat(1000)
        );
        assert_eq!(
            drive_oracle(OracleKind::ParserEnvelope, &nested),
            OracleOutcome::Pass
        );
    }

    #[test]
    fn permutation_keeps_concurrent_item_multiset() {
        let source = golden(Family::Alu);
        let module = parse_module(&source).unwrap();
        let permuted = permute_concurrent_items(&module, 42);
        assert_eq!(module.items.len(), permuted.items.len());
        let mut a: Vec<String> = Vec::new();
        let mut b: Vec<String> = Vec::new();
        for (x, y) in module.items.iter().zip(permuted.items.iter()) {
            // Pinned kinds stay identical in place.
            if !matches!(x, Item::Assign(_) | Item::Always(_)) {
                assert_eq!(
                    format!("{x:?}"),
                    format!("{y:?}"),
                    "non-concurrent item moved"
                );
            } else {
                a.push(format!("{x:?}"));
                b.push(format!("{y:?}"));
            }
        }
        a.sort();
        b.sort();
        assert_eq!(a, b, "concurrent items must be a permutation");
    }

    #[test]
    fn oracle_tags_roundtrip() {
        for kind in OracleKind::all() {
            assert_eq!(OracleKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(OracleKind::from_tag("nope"), None);
    }
}
