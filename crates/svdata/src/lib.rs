//! # svdata — the AssertSolver datasets and three-stage augmentation pipeline
//!
//! Reproduces Section II of the paper: starting from a (synthetic) Verilog corpus the
//! pipeline filters and syntax-checks the samples (Stage 1), injects and validates
//! bugs and SVAs with the simulator and bounded checker (Stage 2), and generates and
//! validates chains of thought (Stage 3), producing the *Verilog-PT*, *Verilog-Bug*
//! and *SVA-Bug* datasets plus the 90/10 module-level train/evaluation split that
//! becomes SVA-Eval-Machine.
//!
//! ## Quick example
//!
//! ```
//! use svdata::{run_pipeline, PipelineConfig};
//!
//! let output = run_pipeline(&PipelineConfig::tiny(1));
//! assert!(!output.datasets.sva_bug.is_empty());
//! assert!(output.datasets.sva_bug.iter().all(|e| e.logs.contains("failed assertion")));
//! ```

pub mod entries;
pub mod pipeline;
pub mod store;

pub use entries::{Datasets, SvaBugEntry, VerilogBugEntry, VerilogPtEntry};
pub use pipeline::{
    distribution, run_pipeline, split_by_module, stage1_filter, stage2_generate, stage3_cot,
    AcceptedDesign, Distribution, PipelineConfig, PipelineOutput, Stage1Output, Stage2Output,
    SvaCase, TrainTestSplit,
};
pub use store::{
    datasets_from_json, datasets_to_json, load_datasets, save_datasets, split_from_json,
    split_to_json,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Datasets>();
        assert_send_sync::<super::SvaBugEntry>();
        assert_send_sync::<super::PipelineOutput>();
    }
}
