//! The three-stage data-augmentation pipeline (Fig. 2-(I) of the paper).
//!
//! * **Stage 1 — filtering and syntax checking**: duplicates and logic-free modules
//!   are dropped; sources that fail the compile check become *Verilog-PT* entries
//!   together with a failure analysis; healthy sources proceed.
//! * **Stage 2 — key-component generation and validation**: bugs are injected
//!   (`svmutate`), the golden design's SVAs are validated with the bounded checker
//!   (`svverify`), and every bug is simulated: bugs that trigger assertion failures
//!   become *SVA-Bug* cases (with logs from `svsim`), bugs that do not become
//!   *Verilog-Bug* entries.
//! * **Stage 3 — CoT generation and validation**: a static-analysis "teacher"
//!   produces a chain of thought for each case; CoTs whose predicted buggy line
//!   matches the golden solution are kept (the paper reports ≈74.55 % validity).

use crate::entries::{Datasets, SvaBugEntry, VerilogBugEntry, VerilogPtEntry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use svgen::{render_spec, CorpusConfig, CorpusGenerator, Family, RawSample};
use svmutate::{classify_visibility, single_line_diff, BugInjector, BugProfile};
use svparse::{emit_module, parse_module};
use svsim::failing_assertions_in_log;
use svverify::{CheckConfig, SvaValidity, Verdict, VerifyOracle};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// How many bug candidates to inject per golden design.
    pub bugs_per_design: usize,
    /// Bounded-check configuration used for all validation.
    pub check: CheckConfig,
    /// Fraction of module names routed to the training split (the paper uses 0.9).
    pub train_fraction: f64,
    /// Seed for injection, CoT noise and the split shuffle.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            corpus: CorpusConfig::default(),
            bugs_per_design: 6,
            check: CheckConfig {
                depth: 12,
                random_cases: 24,
                ..CheckConfig::default()
            },
            train_fraction: 0.9,
            seed: 0xDA7A,
        }
    }
}

impl PipelineConfig {
    /// A small configuration suitable for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            corpus: CorpusConfig {
                golden_designs: 8,
                ..CorpusConfig::default()
            },
            bugs_per_design: 2,
            check: CheckConfig {
                depth: 10,
                random_cases: 8,
                ..CheckConfig::default()
            },
            train_fraction: 0.75,
            seed,
        }
    }
}

/// A design accepted by Stage 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptedDesign {
    /// Module name.
    pub module_name: String,
    /// Canonical golden source.
    pub source: String,
    /// Synthesised specification.
    pub spec: String,
    /// Originating design family.
    pub family: Family,
}

/// Output of Stage 1.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stage1Output {
    /// Designs that passed filtering and the compile check.
    pub accepted: Vec<AcceptedDesign>,
    /// Pretraining entries (failed-compile sources with analyses plus healthy text).
    pub verilog_pt: Vec<VerilogPtEntry>,
    /// Number of duplicate sources removed.
    pub duplicates_removed: usize,
    /// Number of sources rejected for having no functional logic.
    pub trivial_rejected: usize,
    /// Number of sources rejected by the compile check (they remain in Verilog-PT).
    pub compile_rejected: usize,
}

/// One validated assertion-failure case produced by Stage 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvaCase {
    /// Module name.
    pub module_name: String,
    /// Specification text.
    pub spec: String,
    /// Canonical golden source.
    pub golden_source: String,
    /// Canonical buggy source.
    pub buggy_source: String,
    /// Simulation log showing the assertion failures.
    pub logs: String,
    /// Failing assertion names.
    pub failing_assertions: Vec<String>,
    /// 1-based buggy line number.
    pub bug_line_number: u32,
    /// Buggy line text.
    pub buggy_line: String,
    /// Corrected line text.
    pub fixed_line: String,
    /// Table-I profile.
    pub profile: BugProfile,
    /// Lines of buggy code.
    pub code_lines: usize,
}

/// Output of Stage 2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stage2Output {
    /// Bug–SVA pairs that trigger assertion failures.
    pub cases: Vec<SvaCase>,
    /// Bugs that did not trigger any assertion (Verilog-Bug entries).
    pub verilog_bug: Vec<VerilogBugEntry>,
    /// Designs whose SVAs were invalid on the golden code (discarded).
    pub invalid_sva_designs: usize,
    /// Mutants discarded because they could not be simulated or diffed.
    pub discarded_mutants: usize,
}

/// Output of Stage 3 and the full pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutput {
    /// The three datasets of Fig. 2.
    pub datasets: Datasets,
    /// Stage-1 bookkeeping.
    pub stage1: Stage1Output,
    /// Stage-2 bookkeeping (without the cases, which are in `datasets.sva_bug`).
    pub invalid_sva_designs: usize,
    /// Number of mutants discarded during validation.
    pub discarded_mutants: usize,
    /// Fraction of generated CoTs that passed validation.
    pub cot_valid_fraction: f64,
}

/// Stage 1: filtering and syntax checking.
pub fn stage1_filter(corpus: &[RawSample]) -> Stage1Output {
    let mut out = Stage1Output::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for sample in corpus {
        if !seen.insert(sample.source.clone()) {
            out.duplicates_removed += 1;
            continue;
        }
        match parse_module(&sample.source) {
            Ok(module) => {
                if !module.has_functional_logic() {
                    out.trivial_rejected += 1;
                    continue;
                }
                let canonical = emit_module(&module);
                let spec = render_spec(&module, &sample.function);
                match svparse::compile_check(&canonical) {
                    Ok(_) => {
                        out.verilog_pt.push(VerilogPtEntry {
                            source: canonical.clone(),
                            spec: spec.clone(),
                            failure_analysis: None,
                        });
                        out.accepted.push(AcceptedDesign {
                            module_name: module.name.clone(),
                            source: canonical,
                            spec,
                            family: sample.family,
                        });
                    }
                    Err(err) => {
                        out.compile_rejected += 1;
                        out.verilog_pt.push(VerilogPtEntry {
                            source: sample.source.clone(),
                            spec,
                            failure_analysis: Some(err.to_string()),
                        });
                    }
                }
            }
            Err(err) => {
                // Could not even parse: synthesise a minimal spec from the raw text.
                out.compile_rejected += 1;
                out.verilog_pt.push(VerilogPtEntry {
                    source: sample.source.clone(),
                    spec: format!("Function: {}", sample.function),
                    failure_analysis: Some(err.to_string()),
                });
            }
        }
    }
    out
}

/// Stage 2: bug/SVA generation and tool-based validation.
pub fn stage2_generate(accepted: &[AcceptedDesign], config: &PipelineConfig) -> Stage2Output {
    let oracle = VerifyOracle::new(config.check.clone());
    let mut out = Stage2Output::default();
    for (design_index, design) in accepted.iter().enumerate() {
        let golden = match parse_module(&design.source) {
            Ok(m) => m,
            Err(_) => {
                out.discarded_mutants += 1;
                continue;
            }
        };
        // Validate the SVAs on the golden design, exactly like running SymbiYosys on
        // the un-mutated code.
        match oracle.sva_valid_on_golden(&golden) {
            SvaValidity::Valid => {}
            _ => {
                out.invalid_sva_designs += 1;
                continue;
            }
        }
        let golden_text = emit_module(&golden);
        let mut injector =
            BugInjector::new(config.seed ^ (design_index as u64).wrapping_mul(0x9E37));
        let bugs = injector.inject_batch(&golden, config.bugs_per_design);
        for bug in bugs {
            let buggy_text = emit_module(&bug.buggy);
            let Some(diff) = single_line_diff(&golden_text, &buggy_text) else {
                out.discarded_mutants += 1;
                continue;
            };
            match oracle.bug_triggers_failure(&bug.buggy) {
                Err(_) => out.discarded_mutants += 1,
                Ok(Some(Verdict::Fail { witness, .. })) => {
                    let Ok(outcome) = svsim::simulate(&bug.buggy, &witness) else {
                        out.discarded_mutants += 1;
                        continue;
                    };
                    let failing = failing_assertions_in_log(&outcome.log);
                    let visibility = classify_visibility(&golden, &bug.affected_signals, &failing);
                    out.cases.push(SvaCase {
                        module_name: design.module_name.clone(),
                        spec: design.spec.clone(),
                        golden_source: golden_text.clone(),
                        buggy_source: buggy_text.clone(),
                        logs: outcome.log,
                        failing_assertions: failing,
                        bug_line_number: diff.line,
                        buggy_line: diff.buggy_line.clone(),
                        fixed_line: diff.golden_line.clone(),
                        profile: BugProfile::new(bug.kind, bug.structural, visibility),
                        code_lines: buggy_text.lines().count(),
                    });
                }
                Ok(Some(_)) | Ok(None) => {
                    // Bug compiles and simulates but never violates an assertion:
                    // keep it as a Verilog-Bug (functional issue) entry.
                    out.verilog_bug.push(VerilogBugEntry {
                        module_name: design.module_name.clone(),
                        spec: design.spec.clone(),
                        buggy_source: buggy_text.clone(),
                        golden_source: golden_text.clone(),
                        bug_line_number: diff.line,
                        buggy_line: diff.buggy_line.clone(),
                        fixed_line: diff.golden_line.clone(),
                    });
                }
            }
        }
    }
    out
}

/// Stage 3: chain-of-thought generation and validation.
///
/// Returns the SVA-Bug entries and the fraction of CoTs that passed validation.
pub fn stage3_cot(cases: Vec<SvaCase>, seed: u64) -> (Vec<SvaBugEntry>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut valid = 0usize;
    let total = cases.len().max(1);
    let entries = cases
        .into_iter()
        .map(|case| {
            let (predicted_line, cot_text) = teacher_cot(&case, &mut rng);
            let cot = if predicted_line == case.bug_line_number {
                valid += 1;
                Some(cot_text)
            } else {
                None
            };
            SvaBugEntry {
                module_name: case.module_name,
                spec: case.spec,
                buggy_source: case.buggy_source,
                golden_source: case.golden_source,
                logs: case.logs,
                failing_assertions: case.failing_assertions,
                bug_line_number: case.bug_line_number,
                buggy_line: case.buggy_line,
                fixed_line: case.fixed_line,
                profile: case.profile,
                cot,
                code_lines: case.code_lines,
                human_crafted: false,
            }
        })
        .collect();
    (entries, valid as f64 / total as f64)
}

/// The "teacher" CoT generator: a static analysis that walks back from the failing
/// assertion's signals and nominates the most suspicious line, then explains the
/// chain.  Like GPT-4 in the paper, it is imperfect — deep or indirect bugs make it
/// nominate the wrong line, and those CoTs are discarded by validation.
fn teacher_cot(case: &SvaCase, rng: &mut StdRng) -> (u32, String) {
    use rand::Rng;
    let Ok(buggy) = parse_module(&case.buggy_source) else {
        return (0, String::new());
    };
    let mut assertion_signals: Vec<String> = Vec::new();
    for name in &case.failing_assertions {
        assertion_signals.extend(svmutate::signals_of_assertion(&buggy, name));
    }
    assertion_signals.sort();
    assertion_signals.dedup();
    let graph = svparse::DependencyGraph::build(&buggy);
    let mut cone_signals: BTreeSet<String> = assertion_signals.iter().cloned().collect();
    for signal in &assertion_signals {
        cone_signals.extend(graph.cone_of_influence(signal));
    }

    // Candidate lines: design statements touching any signal the assertion can observe
    // (directly or through its fan-in cone).
    let mut candidates: Vec<(u32, String)> = Vec::new();
    for (idx, line) in case.buggy_source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let trimmed = line.trim();
        if trimmed.starts_with("property")
            || trimmed.starts_with("assert")
            || trimmed.starts_with("endproperty")
            || trimmed.starts_with("module")
            || trimmed.starts_with("input")
            || trimmed.starts_with("output")
        {
            continue;
        }
        if cone_signals.iter().any(|s| trimmed.contains(s.as_str())) {
            candidates.push((line_no, trimmed.to_string()));
        }
    }
    if candidates.is_empty() {
        return (0, String::new());
    }

    // The teacher is given the bug location (as in the paper), but its reasoning only
    // survives validation when it can actually connect the line to the failing
    // assertion: bugs on signals the assertion reads directly are always explained
    // correctly, deeper bugs are explained correctly most of the time, and bugs
    // outside the observable cone send it to the wrong line.
    let bug_line_text = case.buggy_line.as_str();
    let touches_assertion_signal = assertion_signals
        .iter()
        .any(|s| bug_line_text.contains(s.as_str()));
    let touches_cone_signal = cone_signals
        .iter()
        .any(|s| bug_line_text.contains(s.as_str()));
    let pick = if touches_assertion_signal || (touches_cone_signal && rng.gen_bool(0.72)) {
        (case.bug_line_number, bug_line_text.to_string())
    } else {
        candidates
            .iter()
            .find(|(line, _)| *line != case.bug_line_number)
            .cloned()
            .or_else(|| candidates.choose(rng).cloned())
            .expect("candidates checked non-empty")
    };
    let explanation = format!(
        "The failing assertion {} observes the signals [{}]. Tracing their drivers, the statement `{}` (line {}) controls the observed behaviour, and its logic contradicts the specification, so it is the buggy line; replacing it with `{}` restores the intended behaviour.",
        case.failing_assertions.join(", "),
        assertion_signals.join(", "),
        pick.1,
        pick.0,
        case.fixed_line
    );
    (pick.0, explanation)
}

/// Runs the complete pipeline: corpus → Stage 1 → Stage 2 → Stage 3.
pub fn run_pipeline(config: &PipelineConfig) -> PipelineOutput {
    let corpus = CorpusGenerator::new(config.corpus).generate();
    let stage1 = stage1_filter(&corpus);
    let stage2 = stage2_generate(&stage1.accepted, config);
    let invalid_sva_designs = stage2.invalid_sva_designs;
    let discarded_mutants = stage2.discarded_mutants;
    let verilog_bug = stage2.verilog_bug.clone();
    let (sva_bug, cot_valid_fraction) = stage3_cot(stage2.cases, config.seed ^ 0xC07);
    PipelineOutput {
        datasets: Datasets {
            verilog_pt: stage1.verilog_pt.clone(),
            verilog_bug,
            sva_bug,
        },
        stage1,
        invalid_sva_designs,
        discarded_mutants,
        cot_valid_fraction,
    }
}

/// A train/evaluation split of SVA-Bug entries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Training entries (~90 % of module names).
    pub train: Vec<SvaBugEntry>,
    /// Held-out evaluation entries (SVA-Eval-Machine).
    pub eval: Vec<SvaBugEntry>,
}

/// Splits entries by module name within code-length bins, mirroring the paper's
/// three-step procedure (bin by length, enumerate unique module names, uniformly pick
/// `train_fraction` of names per bin for training).
pub fn split_by_module(
    entries: Vec<SvaBugEntry>,
    train_fraction: f64,
    seed: u64,
) -> TrainTestSplit {
    let mut rng = StdRng::seed_from_u64(seed);
    // Bin index → unique module names.
    let mut names_per_bin: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for entry in &entries {
        names_per_bin
            .entry(svgen::length_bin_index(entry.code_lines))
            .or_default()
            .insert(entry.module_name.clone());
    }
    let mut train_names: BTreeSet<String> = BTreeSet::new();
    for names in names_per_bin.values() {
        let mut shuffled: Vec<String> = names.iter().cloned().collect();
        shuffled.shuffle(&mut rng);
        let take = ((shuffled.len() as f64) * train_fraction).round() as usize;
        // Keep at least one name on each side whenever the bin has two or more names.
        let take = if shuffled.len() > 1 {
            take.clamp(1, shuffled.len() - 1)
        } else {
            shuffled.len()
        };
        for name in shuffled.into_iter().take(take) {
            train_names.insert(name);
        }
    }
    let mut split = TrainTestSplit::default();
    for entry in entries {
        if train_names.contains(&entry.module_name) {
            split.train.push(entry);
        } else {
            split.eval.push(entry);
        }
    }
    split
}

/// Distribution of a set of SVA-Bug entries across length bins and bug-type labels —
/// the raw material of Table II.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Distribution {
    /// Counts per Table-II length bin, indexed like [`svgen::LENGTH_BINS`].
    pub per_length_bin: [usize; 5],
    /// Counts per bug-type label (`Direct`, `Indirect`, `Var`, `Value`, `Op`, `Cond`,
    /// `Non_cond`), in Table-I order.
    pub per_bug_type: BTreeMap<String, usize>,
    /// Total entries.
    pub total: usize,
}

/// Computes the Table-II distribution of a set of entries.
pub fn distribution(entries: &[SvaBugEntry]) -> Distribution {
    let mut dist = Distribution {
        total: entries.len(),
        ..Distribution::default()
    };
    for label in [
        "Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond",
    ] {
        dist.per_bug_type.insert(label.to_string(), 0);
    }
    for entry in entries {
        dist.per_length_bin[svgen::length_bin_index(entry.code_lines)] += 1;
        for label in entry.profile.labels() {
            *dist.per_bug_type.entry(label.to_string()).or_insert(0) += 1;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_output() -> PipelineOutput {
        run_pipeline(&PipelineConfig::tiny(11))
    }

    #[test]
    fn stage1_filters_duplicates_trivial_and_broken() {
        let corpus = CorpusGenerator::new(CorpusConfig {
            golden_designs: 16,
            corrupted_fraction: 0.5,
            duplicate_fraction: 0.2,
            seed: 3,
        })
        .generate();
        let out = stage1_filter(&corpus);
        assert!(!out.accepted.is_empty());
        assert!(out.duplicates_removed >= 1);
        assert!(out.compile_rejected + out.trivial_rejected >= 1);
        // Every rejected-for-compilation sample must appear in Verilog-PT with an
        // analysis.
        let analysed = out
            .verilog_pt
            .iter()
            .filter(|e| e.failure_analysis.is_some())
            .count();
        assert_eq!(analysed, out.compile_rejected);
    }

    #[test]
    fn full_pipeline_produces_all_three_datasets() {
        let out = tiny_output();
        assert!(!out.datasets.verilog_pt.is_empty(), "Verilog-PT is empty");
        assert!(!out.datasets.sva_bug.is_empty(), "SVA-Bug is empty");
        // Every SVA-Bug entry carries logs naming a failing assertion and a
        // golden fix that differs from the buggy line.
        for entry in &out.datasets.sva_bug {
            assert!(entry.logs.contains("failed assertion"));
            assert!(!entry.failing_assertions.is_empty());
            assert_ne!(entry.buggy_line, entry.fixed_line);
            assert!(entry.bug_line_number >= 1);
        }
        assert!(out.cot_valid_fraction > 0.2 && out.cot_valid_fraction <= 1.0);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = run_pipeline(&PipelineConfig::tiny(5));
        let b = run_pipeline(&PipelineConfig::tiny(5));
        assert_eq!(a.datasets.sva_bug.len(), b.datasets.sva_bug.len());
        assert_eq!(
            a.datasets.sva_bug.first().map(|e| e.buggy_line.clone()),
            b.datasets.sva_bug.first().map(|e| e.buggy_line.clone())
        );
    }

    #[test]
    fn some_cots_are_validated_and_attached() {
        let out = tiny_output();
        let with_cot = out
            .datasets
            .sva_bug
            .iter()
            .filter(|e| e.cot.is_some())
            .count();
        assert!(with_cot >= 1, "no CoT passed validation");
        for entry in out.datasets.sva_bug.iter().filter(|e| e.cot.is_some()) {
            let cot = entry.cot.as_ref().unwrap();
            assert!(cot.contains("failing assertion") || cot.contains("observes"));
        }
    }

    #[test]
    fn split_keeps_modules_disjoint() {
        let out = tiny_output();
        let split = split_by_module(out.datasets.sva_bug, 0.75, 9);
        let train_names: BTreeSet<&String> = split.train.iter().map(|e| &e.module_name).collect();
        let eval_names: BTreeSet<&String> = split.eval.iter().map(|e| &e.module_name).collect();
        assert!(train_names.is_disjoint(&eval_names));
        assert!(!split.train.is_empty());
        assert!(!split.eval.is_empty());
    }

    #[test]
    fn distribution_counts_add_up() {
        let out = tiny_output();
        let dist = distribution(&out.datasets.sva_bug);
        assert_eq!(dist.total, out.datasets.sva_bug.len());
        let bin_total: usize = dist.per_length_bin.iter().sum();
        assert_eq!(bin_total, dist.total);
        // Each of the three axes partitions the set.
        let direct = dist.per_bug_type["Direct"] + dist.per_bug_type["Indirect"];
        let structural = dist.per_bug_type["Cond"] + dist.per_bug_type["Non_cond"];
        let kinds = dist.per_bug_type["Var"] + dist.per_bug_type["Value"] + dist.per_bug_type["Op"];
        assert_eq!(direct, dist.total);
        assert_eq!(structural, dist.total);
        assert_eq!(kinds, dist.total);
    }
}
