//! Dataset entry types: Verilog-PT, Verilog-Bug and SVA-Bug.
//!
//! The field layout follows Fig. 2 of the paper: Verilog-PT entries are plain text
//! used for continual pretraining; Verilog-Bug and SVA-Bug entries are
//! question/answer pairs, with SVA-Bug optionally carrying a validated chain of
//! thought ("step by step" prompts).

use serde::{Deserialize, Serialize};
use svmutate::BugProfile;

/// One pretraining entry (dataset (a) in Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerilogPtEntry {
    /// Source text (possibly failing compilation).
    pub source: String,
    /// Synthesised specification.
    pub spec: String,
    /// Compiler analysis for sources that failed the syntax check, `None` otherwise.
    pub failure_analysis: Option<String>,
}

impl VerilogPtEntry {
    /// Renders the entry as the flat text blob used for next-token pretraining.
    pub fn text(&self) -> String {
        match &self.failure_analysis {
            Some(analysis) => format!(
                "The following Verilog code failed to compile. The specification is:\n{}\nCode:\n{}\nThe failure may have been caused by: {}\n",
                self.spec, self.source, analysis
            ),
            None => format!(
                "The specification is:\n{}\nCode:\n{}\n",
                self.spec, self.source
            ),
        }
    }
}

/// One functional-bug entry that did not trigger any assertion (dataset (b)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerilogBugEntry {
    /// Module name (used for the train/test split bookkeeping).
    pub module_name: String,
    /// Synthesised specification.
    pub spec: String,
    /// Buggy source text.
    pub buggy_source: String,
    /// Golden source text.
    pub golden_source: String,
    /// 1-based line number of the bug in the buggy source.
    pub bug_line_number: u32,
    /// The buggy line text.
    pub buggy_line: String,
    /// The corrected line text.
    pub fixed_line: String,
}

impl VerilogBugEntry {
    /// Renders the "Question" section of the entry.
    pub fn question(&self) -> String {
        format!(
            "There is a Verilog module that contains a bug. The specification is:\n{}\nBuggy code:\n{}\nPlease give me a solution.",
            self.spec, self.buggy_source
        )
    }

    /// Renders the "Answer" section of the entry.
    pub fn answer(&self) -> String {
        format!(
            "Buggy line {}: {}\nCorrected line: {}",
            self.bug_line_number, self.buggy_line, self.fixed_line
        )
    }
}

/// One assertion-failure entry (dataset (c)); also the format of SVA-Eval cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvaBugEntry {
    /// Module name (used for the train/test split).
    pub module_name: String,
    /// Synthesised specification.
    pub spec: String,
    /// Buggy SystemVerilog source (canonical form).
    pub buggy_source: String,
    /// Golden SystemVerilog source (canonical form).
    pub golden_source: String,
    /// Simulation log reporting the assertion failures.
    pub logs: String,
    /// Names of the failing assertions.
    pub failing_assertions: Vec<String>,
    /// 1-based line number of the bug in the buggy source.
    pub bug_line_number: u32,
    /// The buggy line text.
    pub buggy_line: String,
    /// The corrected line text.
    pub fixed_line: String,
    /// Table-I profile of the bug.
    pub profile: BugProfile,
    /// Validated chain of thought, when Stage 3 accepted one.
    pub cot: Option<String>,
    /// Number of lines of the buggy source (for the length-bin breakdowns).
    pub code_lines: usize,
    /// `true` for the hand-written SVA-Eval-Human cases.
    pub human_crafted: bool,
}

impl SvaBugEntry {
    /// Renders the "Question" section; entries with a validated CoT ask for a
    /// step-by-step answer, exactly as the paper describes.
    pub fn question(&self) -> String {
        let step = if self.cot.is_some() {
            " Please solve it step by step."
        } else {
            ""
        };
        format!(
            "There is a buggy SystemVerilog design and it triggers assertion failures.\nLogs:\n{}\nThe specification is:\n{}\nBuggy code:\n{}\nPlease give me a solution.{}",
            self.logs, self.spec, self.buggy_source, step
        )
    }

    /// Renders the "Answer" section (buggy line, fix, and CoT when present).
    pub fn answer(&self) -> String {
        let mut out = format!(
            "Buggy line {}: {}\nCorrected line: {}",
            self.bug_line_number, self.buggy_line, self.fixed_line
        );
        if let Some(cot) = &self.cot {
            out.push_str("\nReasoning: ");
            out.push_str(cot);
        }
        out
    }

    /// The Table-II length bin of the buggy code.
    pub fn length_bin(&self) -> &'static str {
        svgen::length_bin(self.code_lines)
    }
}

/// The three datasets produced by the augmentation pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Datasets {
    /// Dataset (a): pretraining text.
    pub verilog_pt: Vec<VerilogPtEntry>,
    /// Dataset (b): functional bugs that did not trigger assertions.
    pub verilog_bug: Vec<VerilogBugEntry>,
    /// Dataset (c): assertion-failure cases.
    pub sva_bug: Vec<SvaBugEntry>,
}

impl Datasets {
    /// Total number of entries across the three datasets.
    pub fn len(&self) -> usize {
        self.verilog_pt.len() + self.verilog_bug.len() + self.sva_bug.len()
    }

    /// Returns `true` when every dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmutate::{BugKind, Structural, Visibility};

    fn sample_entry(cot: Option<String>) -> SvaBugEntry {
        SvaBugEntry {
            module_name: "accu_4_0".into(),
            spec: "Module: accu\nFunction: accumulate.".into(),
            buggy_source: "module accu(); endmodule".into(),
            golden_source: "module accu(); endmodule".into(),
            logs: "ERROR: [cycle 4] failed assertion accu.valid_out_check".into(),
            failing_assertions: vec!["valid_out_check".into()],
            bug_line_number: 17,
            buggy_line: "else if (!end_cnt) valid_out <= 1;".into(),
            fixed_line: "else if (end_cnt) valid_out <= 1;".into(),
            profile: BugProfile::new(BugKind::Op, Structural::Cond, Visibility::Indirect),
            cot,
            code_lines: 28,
            human_crafted: false,
        }
    }

    #[test]
    fn question_includes_step_by_step_only_with_cot() {
        let plain = sample_entry(None);
        let with_cot = sample_entry(Some("the condition is inverted".into()));
        assert!(!plain.question().contains("step by step"));
        assert!(with_cot.question().contains("step by step"));
        assert!(plain.question().contains("Logs:"));
        assert!(plain.question().contains("specification"));
    }

    #[test]
    fn answer_contains_line_and_fix() {
        let entry = sample_entry(Some("the condition is inverted".into()));
        let answer = entry.answer();
        assert!(answer.contains("Buggy line 17"));
        assert!(answer.contains("Corrected line:"));
        assert!(answer.contains("Reasoning:"));
    }

    #[test]
    fn length_bin_uses_table2_boundaries() {
        let mut entry = sample_entry(None);
        assert_eq!(entry.length_bin(), "(0, 50]");
        entry.code_lines = 180;
        assert_eq!(entry.length_bin(), "(150, 200]");
    }

    #[test]
    fn pt_entry_text_mentions_failure_only_when_present() {
        let broken = VerilogPtEntry {
            source: "module m(".into(),
            spec: "Spec".into(),
            failure_analysis: Some("missing port list".into()),
        };
        let clean = VerilogPtEntry {
            source: "module m(); endmodule".into(),
            spec: "Spec".into(),
            failure_analysis: None,
        };
        assert!(broken.text().contains("failed to compile"));
        assert!(!clean.text().contains("failed to compile"));
    }

    #[test]
    fn verilog_bug_question_answer() {
        let entry = VerilogBugEntry {
            module_name: "m".into(),
            spec: "Spec".into(),
            buggy_source: "module m(); endmodule".into(),
            golden_source: "module m(); endmodule".into(),
            bug_line_number: 3,
            buggy_line: "assign y = a & b;".into(),
            fixed_line: "assign y = a | b;".into(),
        };
        assert!(entry.question().contains("contains a bug"));
        assert!(entry.answer().contains("Buggy line 3"));
    }

    #[test]
    fn datasets_len() {
        let mut d = Datasets::default();
        assert!(d.is_empty());
        d.sva_bug.push(sample_entry(None));
        assert_eq!(d.len(), 1);
    }
}
