//! JSON persistence for datasets.
//!
//! The paper distributes its datasets and benchmark as JSON, and the model is prompted
//! to answer in JSON; this module provides the (de)serialisation boundary so runs can
//! be cached on disk and the benchmark shipped as a file.

use crate::entries::Datasets;
use crate::pipeline::TrainTestSplit;
use std::fs;
use std::io;
use std::path::Path;

/// Serialises the datasets to pretty-printed JSON.
pub fn datasets_to_json(datasets: &Datasets) -> String {
    serde_json::to_string_pretty(datasets).expect("datasets serialise to JSON")
}

/// Parses datasets back from JSON.
///
/// # Errors
///
/// Returns a `serde_json::Error` when the text is not a valid dataset dump.
pub fn datasets_from_json(text: &str) -> Result<Datasets, serde_json::Error> {
    serde_json::from_str(text)
}

/// Writes datasets to a JSON file.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be written.
pub fn save_datasets(datasets: &Datasets, path: &Path) -> io::Result<()> {
    fs::write(path, datasets_to_json(datasets))
}

/// Reads datasets from a JSON file.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be read or parsed.
pub fn load_datasets(path: &Path) -> io::Result<Datasets> {
    let text = fs::read_to_string(path)?;
    datasets_from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serialises a train/eval split to JSON.
pub fn split_to_json(split: &TrainTestSplit) -> String {
    serde_json::to_string_pretty(split).expect("split serialises to JSON")
}

/// Parses a train/eval split from JSON.
///
/// # Errors
///
/// Returns a `serde_json::Error` when the text is not a valid split dump.
pub fn split_from_json(text: &str) -> Result<TrainTestSplit, serde_json::Error> {
    serde_json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entries::{SvaBugEntry, VerilogPtEntry};
    use svmutate::{BugKind, BugProfile, Structural, Visibility};

    fn sample_datasets() -> Datasets {
        Datasets {
            verilog_pt: vec![VerilogPtEntry {
                source: "module m(); endmodule".into(),
                spec: "Spec".into(),
                failure_analysis: None,
            }],
            verilog_bug: vec![],
            sva_bug: vec![SvaBugEntry {
                module_name: "m".into(),
                spec: "Spec".into(),
                buggy_source: "module m(); endmodule".into(),
                golden_source: "module m(); endmodule".into(),
                logs: "ERROR".into(),
                failing_assertions: vec!["p".into()],
                bug_line_number: 2,
                buggy_line: "a".into(),
                fixed_line: "b".into(),
                profile: BugProfile::new(BugKind::Op, Structural::Cond, Visibility::Direct),
                cot: None,
                code_lines: 2,
                human_crafted: false,
            }],
        }
    }

    #[test]
    fn datasets_round_trip_through_json() {
        let datasets = sample_datasets();
        let json = datasets_to_json(&datasets);
        let parsed = datasets_from_json(&json).unwrap();
        assert_eq!(parsed, datasets);
    }

    #[test]
    fn file_round_trip() {
        let datasets = sample_datasets();
        let path = std::env::temp_dir().join("svdata_store_test.json");
        save_datasets(&datasets, &path).unwrap();
        let loaded = load_datasets(&path).unwrap();
        assert_eq!(loaded, datasets);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(datasets_from_json("{not json").is_err());
        assert!(split_from_json("[]").is_err());
    }

    #[test]
    fn split_round_trip() {
        let split = TrainTestSplit {
            train: sample_datasets().sva_bug,
            eval: vec![],
        };
        let json = split_to_json(&split);
        assert_eq!(split_from_json(&json).unwrap(), split);
    }
}
