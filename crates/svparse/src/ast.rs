//! Abstract syntax tree for the Verilog/SVA subset.
//!
//! The tree is deliberately close to concrete syntax: the pretty-printer in
//! [`crate::pretty`] can re-emit it in a canonical one-statement-per-line form, which
//! is the textual substrate used by the mutation engine and the repair model.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed source file: a sequence of modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFile {
    /// The modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Creates a file from a list of modules.
    pub fn new(modules: Vec<Module>) -> Self {
        Self { modules }
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Net kind of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire` — driven by continuous assignments or combinational always blocks.
    Wire,
    /// `reg` — driven by procedural blocks.
    Reg,
    /// `integer` — treated as a 32-bit reg.
    Integer,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
            NetKind::Integer => "integer",
        })
    }
}

/// A constant `[msb:lsb]` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRange {
    /// Most significant bit index.
    pub msb: u32,
    /// Least significant bit index.
    pub lsb: u32,
}

impl BitRange {
    /// Creates a new `[msb:lsb]` range.
    pub fn new(msb: u32, lsb: u32) -> Self {
        Self { msb, lsb }
    }

    /// Bit width described by the range (`msb - lsb + 1` for the usual descending form).
    pub fn width(&self) -> u32 {
        self.msb.abs_diff(self.lsb) + 1
    }
}

impl fmt::Display for BitRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.msb, self.lsb)
    }
}

/// A module port declaration in ANSI style (`input wire [3:0] a`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port direction.
    pub dir: PortDir,
    /// Underlying net kind (`wire` for inputs, often `reg` for clocked outputs).
    pub net: NetKind,
    /// Optional bit range; `None` means a single-bit signal.
    pub width: Option<BitRange>,
    /// Port name.
    pub name: String,
}

impl Port {
    /// Convenience constructor for a single-bit input.
    pub fn input(name: impl Into<String>) -> Self {
        Self {
            dir: PortDir::Input,
            net: NetKind::Wire,
            width: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a vector input.
    pub fn input_vec(name: impl Into<String>, msb: u32) -> Self {
        Self {
            dir: PortDir::Input,
            net: NetKind::Wire,
            width: Some(BitRange::new(msb, 0)),
            name: name.into(),
        }
    }

    /// Convenience constructor for a single-bit registered output.
    pub fn output_reg(name: impl Into<String>) -> Self {
        Self {
            dir: PortDir::Output,
            net: NetKind::Reg,
            width: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a vector registered output.
    pub fn output_reg_vec(name: impl Into<String>, msb: u32) -> Self {
        Self {
            dir: PortDir::Output,
            net: NetKind::Reg,
            width: Some(BitRange::new(msb, 0)),
            name: name.into(),
        }
    }

    /// Convenience constructor for a single-bit wire output.
    pub fn output_wire(name: impl Into<String>) -> Self {
        Self {
            dir: PortDir::Output,
            net: NetKind::Wire,
            width: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a vector wire output.
    pub fn output_wire_vec(name: impl Into<String>, msb: u32) -> Self {
        Self {
            dir: PortDir::Output,
            net: NetKind::Wire,
            width: Some(BitRange::new(msb, 0)),
            name: name.into(),
        }
    }

    /// Bit width of the port (1 when no range is given).
    pub fn bit_width(&self) -> u32 {
        self.width.map_or(1, |r| r.width())
    }
}

/// A hardware module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// ANSI-style port list.
    pub ports: Vec<Port>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
    /// Source span of the whole module.
    pub span: Span,
}

impl Module {
    /// Creates a module with a synthetic span.
    pub fn new(name: impl Into<String>, ports: Vec<Port>, items: Vec<Item>) -> Self {
        Self {
            name: name.into(),
            ports,
            items,
            span: Span::synthetic(),
        }
    }

    /// Iterates over all concurrent assertion items in the module.
    pub fn assertions(&self) -> impl Iterator<Item = &AssertionItem> {
        self.items.iter().filter_map(|item| match item {
            Item::Assertion(a) => Some(a),
            _ => None,
        })
    }

    /// Iterates over all named property declarations in the module.
    pub fn properties(&self) -> impl Iterator<Item = &PropertyDecl> {
        self.items.iter().filter_map(|item| match item {
            Item::Property(p) => Some(p),
            _ => None,
        })
    }

    /// Looks up a property declaration by name.
    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.properties().find(|p| p.name == name)
    }

    /// Iterates over all always blocks.
    pub fn always_blocks(&self) -> impl Iterator<Item = &AlwaysBlock> {
        self.items.iter().filter_map(|item| match item {
            Item::Always(a) => Some(a),
            _ => None,
        })
    }

    /// Iterates over all continuous assignments.
    pub fn assigns(&self) -> impl Iterator<Item = &ContinuousAssign> {
        self.items.iter().filter_map(|item| match item {
            Item::Assign(a) => Some(a),
            _ => None,
        })
    }

    /// Names of every declared signal (ports, nets and parameters).
    pub fn declared_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.ports.iter().map(|p| p.name.clone()).collect();
        for item in &self.items {
            match item {
                Item::Net(decl) => names.extend(decl.names.iter().cloned()),
                Item::Param(p) => names.push(p.name.clone()),
                _ => {}
            }
        }
        names
    }

    /// Returns the declared width of a signal, if it is declared.
    pub fn signal_width(&self, name: &str) -> Option<u32> {
        if let Some(port) = self.ports.iter().find(|p| p.name == name) {
            return Some(port.bit_width());
        }
        for item in &self.items {
            match item {
                Item::Net(decl) if decl.names.iter().any(|n| n == name) => {
                    return Some(match decl.kind {
                        NetKind::Integer => 32,
                        _ => decl.width.map_or(1, |r| r.width()),
                    });
                }
                Item::Param(p) if p.name == name => return Some(32),
                _ => {}
            }
        }
        None
    }

    /// Returns `true` if the module contains functional logic (assignments or
    /// procedural blocks), as opposed to pure declarations.  Stage 1 of the data
    /// pipeline filters out modules without functional logic.
    pub fn has_functional_logic(&self) -> bool {
        self.items
            .iter()
            .any(|item| matches!(item, Item::Assign(_) | Item::Always(_) | Item::Initial(_)))
    }
}

/// A module body item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// A `wire`/`reg`/`integer` declaration.
    Net(NetDecl),
    /// A `parameter`/`localparam` declaration.
    Param(ParamDecl),
    /// A continuous `assign`.
    Assign(ContinuousAssign),
    /// An `always` block.
    Always(AlwaysBlock),
    /// An `initial` block.
    Initial(InitialBlock),
    /// A named `property ... endproperty` declaration.
    Property(PropertyDecl),
    /// A concurrent `assert property` item.
    Assertion(AssertionItem),
}

impl Item {
    /// The span of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Net(x) => x.span,
            Item::Param(x) => x.span,
            Item::Assign(x) => x.span,
            Item::Always(x) => x.span,
            Item::Initial(x) => x.span,
            Item::Property(x) => x.span,
            Item::Assertion(x) => x.span,
        }
    }
}

/// A net (wire/reg/integer) declaration, possibly declaring several names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetDecl {
    /// Net kind.
    pub kind: NetKind,
    /// Optional bit range (applies to every declared name).
    pub width: Option<BitRange>,
    /// Declared names.
    pub names: Vec<String>,
    /// Source span.
    pub span: Span,
}

/// A parameter declaration with a constant value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// `true` for `localparam`, `false` for `parameter`.
    pub local: bool,
    /// Parameter name.
    pub name: String,
    /// Constant value expression.
    pub value: Expr,
    /// Source span.
    pub span: Span,
}

/// A continuous assignment `assign lhs = rhs;`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousAssign {
    /// Target of the assignment.
    pub lhs: LValue,
    /// Driving expression.
    pub rhs: Expr,
    /// Source span.
    pub span: Span,
}

/// Clock/reset edge polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeKind::Pos => "posedge",
            EdgeKind::Neg => "negedge",
        })
    }
}

/// An edge event such as `posedge clk`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// Edge polarity.
    pub edge: EdgeKind,
    /// Signal name.
    pub signal: String,
}

impl EdgeEvent {
    /// Creates a `posedge` event on the named signal.
    pub fn posedge(signal: impl Into<String>) -> Self {
        Self {
            edge: EdgeKind::Pos,
            signal: signal.into(),
        }
    }

    /// Creates a `negedge` event on the named signal.
    pub fn negedge(signal: impl Into<String>) -> Self {
        Self {
            edge: EdgeKind::Neg,
            signal: signal.into(),
        }
    }
}

/// Sensitivity list of an always block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `always @(*)` or `always_comb` — combinational.
    Star,
    /// `always @(posedge clk or negedge rst_n)` — edge-triggered.
    Edges(Vec<EdgeEvent>),
}

impl Sensitivity {
    /// Returns `true` for combinational (`@*`) sensitivity.
    pub fn is_combinational(&self) -> bool {
        matches!(self, Sensitivity::Star)
    }

    /// Returns the clock event (the first `posedge`) for an edge-triggered block.
    pub fn clock(&self) -> Option<&EdgeEvent> {
        match self {
            Sensitivity::Edges(events) => events.iter().find(|e| e.edge == EdgeKind::Pos),
            Sensitivity::Star => None,
        }
    }

    /// Returns the asynchronous reset event (any `negedge`), if present.
    pub fn async_reset(&self) -> Option<&EdgeEvent> {
        match self {
            Sensitivity::Edges(events) => events.iter().find(|e| e.edge == EdgeKind::Neg),
            Sensitivity::Star => None,
        }
    }
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Sensitivity list.
    pub sensitivity: Sensitivity,
    /// Body statement (usually a `begin ... end` block).
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// An `initial` block (used only to preset registers in test fixtures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitialBlock {
    /// Body statement.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `begin ... end`
    Block {
        /// Statements in order.
        stmts: Vec<Stmt>,
        /// Source span.
        span: Span,
    },
    /// `if (cond) ... [else ...]`
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
        /// Source span of the `if (cond)` header.
        span: Span,
    },
    /// `case (subject) ... endcase`
    Case {
        /// Scrutinee.
        subject: Expr,
        /// Labelled arms.
        arms: Vec<CaseArm>,
        /// Optional `default:` arm.
        default: Option<Box<Stmt>>,
        /// Source span of the `case (...)` header.
        span: Span,
    },
    /// Blocking assignment `lhs = rhs;`
    Blocking {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// Source span.
        span: Span,
    },
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// Source span.
        span: Span,
    },
    /// Empty statement `;`
    Null,
}

impl Stmt {
    /// The span of the statement header.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::Blocking { span, .. }
            | Stmt::NonBlocking { span, .. } => *span,
            Stmt::Null => Span::synthetic(),
        }
    }

    /// Depth-first traversal of this statement and all nested statements.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        visit(self);
        match self {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    s.walk(visit);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(visit);
                if let Some(e) = else_branch {
                    e.walk(visit);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    arm.body.walk(visit);
                }
                if let Some(d) = default {
                    d.walk(visit);
                }
            }
            Stmt::Blocking { .. } | Stmt::NonBlocking { .. } | Stmt::Null => {}
        }
    }

    /// Mutable depth-first traversal; the closure is applied to every nested statement.
    pub fn walk_mut(&mut self, visit: &mut dyn FnMut(&mut Stmt)) {
        visit(self);
        match self {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    s.walk_mut(visit);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk_mut(visit);
                if let Some(e) = else_branch {
                    e.walk_mut(visit);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    arm.body.walk_mut(visit);
                }
                if let Some(d) = default {
                    d.walk_mut(visit);
                }
            }
            Stmt::Blocking { .. } | Stmt::NonBlocking { .. } | Stmt::Null => {}
        }
    }

    /// Collects the names of all signals assigned anywhere in this statement.
    pub fn assigned_signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |s| match s {
            Stmt::Blocking { lhs, .. } | Stmt::NonBlocking { lhs, .. } => {
                out.extend(lhs.base_names());
            }
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }
}

/// One labelled arm of a `case` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Labels that select this arm.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
    /// Source span of the label line.
    pub span: Span,
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A whole signal, e.g. `count`.
    Ident(String),
    /// A single bit, e.g. `flags[2]`.
    Bit(String, Box<Expr>),
    /// A constant part-select, e.g. `data[7:4]`.
    Part(String, BitRange),
    /// A concatenation of lvalues, e.g. `{carry, sum}`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Base signal names written by this lvalue.
    pub fn base_names(&self) -> Vec<String> {
        match self {
            LValue::Ident(n) | LValue::Bit(n, _) | LValue::Part(n, _) => vec![n.clone()],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.base_names()).collect(),
        }
    }
}

/// A numeric literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Explicit width (bits) when the literal was sized.
    pub width: Option<u32>,
    /// Value truncated to 64 bits.
    pub value: u64,
    /// Base used in the source (`'b'`, `'d'`, `'h'`, `'o'`).
    pub base: char,
}

impl Literal {
    /// An unsized decimal literal.
    pub fn dec(value: u64) -> Self {
        Self {
            width: None,
            value,
            base: 'd',
        }
    }

    /// A sized decimal literal such as `4'd3`.
    pub fn sized(width: u32, value: u64) -> Self {
        Self {
            width: Some(width),
            value,
            base: 'd',
        }
    }

    /// A sized binary literal such as `4'b1010`.
    pub fn bin(width: u32, value: u64) -> Self {
        Self {
            width: Some(width),
            value,
            base: 'b',
        }
    }

    /// A sized hexadecimal literal such as `8'hFF`.
    pub fn hex(width: u32, value: u64) -> Self {
        Self {
            width: Some(width),
            value,
            base: 'h',
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation `!`
    LogicalNot,
    /// Bitwise complement `~`
    BitNot,
    /// Arithmetic negation `-`
    Neg,
    /// Reduction AND `&`
    RedAnd,
    /// Reduction OR `|`
    RedOr,
    /// Reduction XOR `^`
    RedXor,
}

impl UnaryOp {
    /// The source spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnaryOp::LogicalNot => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::Neg => "-",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
        }
    }
}

/// Binary operators, ordered roughly by precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

impl BinaryOp {
    /// The source spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::LogicalAnd => "&&",
            BinaryOp::LogicalOr => "||",
        }
    }

    /// Returns `true` if the operator produces a 1-bit (boolean) result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr
        )
    }

    /// All binary operators, useful for mutation enumeration.
    pub fn all() -> &'static [BinaryOp] {
        &[
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Mod,
            BinaryOp::Shl,
            BinaryOp::Shr,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::BitAnd,
            BinaryOp::BitOr,
            BinaryOp::BitXor,
            BinaryOp::LogicalAnd,
            BinaryOp::LogicalOr,
        ]
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal.
    Number(Literal),
    /// A signal or parameter reference.
    Ident(String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// The ternary conditional `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit select `sig[idx]`.
    Bit(String, Box<Expr>),
    /// Constant part select `sig[msb:lsb]`.
    Part(String, BitRange),
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Repeat(u32, Box<Expr>),
    /// `$past(expr)` or `$past(expr, n)` — value of `expr` `n` cycles ago (SVA only).
    Past(Box<Expr>, u32),
    /// `$rose(expr)` — expression rose this cycle (SVA only).
    Rose(Box<Expr>),
    /// `$fell(expr)` — expression fell this cycle (SVA only).
    Fell(Box<Expr>),
    /// `$stable(expr)` — expression unchanged since last cycle (SVA only).
    Stable(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Self {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for an unsized decimal literal.
    pub fn num(value: u64) -> Self {
        Expr::Number(Literal::dec(value))
    }

    /// Convenience constructor for a sized decimal literal.
    pub fn sized(width: u32, value: u64) -> Self {
        Expr::Number(Literal::sized(width, value))
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary operation.
    pub fn unary(op: UnaryOp, operand: Expr) -> Self {
        Expr::Unary(op, Box::new(operand))
    }

    /// Logical negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::unary(UnaryOp::LogicalNot, self)
    }

    /// Equality comparison helper.
    pub fn eq(self, rhs: Expr) -> Self {
        Expr::binary(BinaryOp::Eq, self, rhs)
    }

    /// Collects all identifier names referenced in the expression (including inside
    /// `$past`/`$rose`/... and index expressions).
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Number(_) => {}
            Expr::Ident(n) => out.push(n.clone()),
            Expr::Unary(_, e)
            | Expr::Past(e, _)
            | Expr::Rose(e)
            | Expr::Fell(e)
            | Expr::Stable(e)
            | Expr::Repeat(_, e) => e.collect_idents(out),
            Expr::Binary(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_idents(out);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Bit(n, idx) => {
                out.push(n.clone());
                idx.collect_idents(out);
            }
            Expr::Part(n, _) => out.push(n.clone()),
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_idents(out);
                }
            }
        }
    }

    /// Depth-first traversal over every sub-expression, including `self`.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Number(_) | Expr::Ident(_) | Expr::Part(_, _) => {}
            Expr::Unary(_, e)
            | Expr::Past(e, _)
            | Expr::Rose(e)
            | Expr::Fell(e)
            | Expr::Stable(e)
            | Expr::Repeat(_, e) => e.walk(visit),
            Expr::Binary(_, a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Expr::Ternary(c, a, b) => {
                c.walk(visit);
                a.walk(visit);
                b.walk(visit);
            }
            Expr::Bit(_, idx) => idx.walk(visit),
            Expr::Concat(parts) => {
                for p in parts {
                    p.walk(visit);
                }
            }
        }
    }

    /// Counts the nodes in the expression tree (a rough complexity measure used by the
    /// repair-model feature extractor).
    pub fn node_count(&self) -> usize {
        let mut count = 0usize;
        self.walk(&mut |_| count += 1);
        count
    }
}

/// A named concurrent property declaration.
///
/// The supported shape mirrors the paper's running example:
///
/// ```text
/// property valid_out_check;
///   @(posedge clk) disable iff (!rst_n)
///   end_cnt |-> ##1 valid_out == 1;
/// endproperty
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyDecl {
    /// Property name.
    pub name: String,
    /// Sampling clock.
    pub clock: EdgeEvent,
    /// Optional `disable iff (...)` guard.
    pub disable_iff: Option<Expr>,
    /// Property body.
    pub body: PropExpr,
    /// Source span.
    pub span: Span,
}

/// A property expression (a small temporal-logic fragment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropExpr {
    /// A boolean expression sampled at the property clock.
    Expr(Expr),
    /// Overlapping (`|->`) or non-overlapping (`|=>`) implication.
    Implication {
        /// Antecedent (trigger) expression.
        antecedent: Box<PropExpr>,
        /// Consequent that must hold when the antecedent matches.
        consequent: Box<PropExpr>,
        /// `true` for `|->`, `false` for `|=>`.
        overlapping: bool,
    },
    /// A delayed sequence element `##N expr`, optionally chained after another element.
    Delay {
        /// The element preceding the delay, if any (`a ##1 b` vs a leading `##1 b`).
        lhs: Option<Box<PropExpr>>,
        /// Number of clock cycles to wait.
        cycles: u32,
        /// The element that must hold after the delay.
        rhs: Box<PropExpr>,
    },
    /// Property negation `not (...)`.
    Not(Box<PropExpr>),
}

impl PropExpr {
    /// All signal identifiers referenced anywhere in the property expression.
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            PropExpr::Expr(e) => out.extend(e.idents()),
            PropExpr::Implication {
                antecedent,
                consequent,
                ..
            } => {
                antecedent.collect_idents(out);
                consequent.collect_idents(out);
            }
            PropExpr::Delay { lhs, rhs, .. } => {
                if let Some(l) = lhs {
                    l.collect_idents(out);
                }
                rhs.collect_idents(out);
            }
            PropExpr::Not(inner) => inner.collect_idents(out),
        }
    }

    /// The maximum number of future cycles the property looks ahead (its "depth").
    pub fn horizon(&self) -> u32 {
        match self {
            PropExpr::Expr(_) => 0,
            PropExpr::Implication {
                antecedent,
                consequent,
                overlapping,
            } => {
                let extra = u32::from(!*overlapping);
                antecedent.horizon() + consequent.horizon() + extra
            }
            PropExpr::Delay { lhs, cycles, rhs } => {
                lhs.as_ref().map_or(0, |l| l.horizon()) + cycles + rhs.horizon()
            }
            PropExpr::Not(inner) => inner.horizon(),
        }
    }
}

/// What a concurrent assertion checks: either a named property or an inline one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AssertTarget {
    /// `assert property (prop_name)`
    Named(String),
    /// `assert property (@(posedge clk) expr |-> expr)` written inline.
    Inline(Box<PropertyDecl>),
}

/// A concurrent assertion item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssertionItem {
    /// Optional label (`label: assert property (...)`).
    pub label: Option<String>,
    /// The property being asserted.
    pub target: AssertTarget,
    /// Optional `$error("...")` message from the else branch.
    pub message: Option<String>,
    /// Source span.
    pub span: Span,
}

impl AssertionItem {
    /// The display name of the assertion: its label, or the property name.
    pub fn display_name(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        match &self.target {
            AssertTarget::Named(name) => name.clone(),
            AssertTarget::Inline(p) => p.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_range_width() {
        assert_eq!(BitRange::new(7, 0).width(), 8);
        assert_eq!(BitRange::new(0, 0).width(), 1);
        assert_eq!(BitRange::new(3, 1).width(), 3);
    }

    #[test]
    fn expr_idents_dedup_and_sort() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::ident("b"),
            Expr::binary(BinaryOp::BitAnd, Expr::ident("a"), Expr::ident("b")),
        );
        let ids = e.idents();
        assert_eq!(ids, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn expr_node_count() {
        let e = Expr::binary(BinaryOp::Add, Expr::ident("a"), Expr::num(1));
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn lvalue_base_names() {
        let lv = LValue::Concat(vec![
            LValue::Ident("carry".into()),
            LValue::Part("sum".into(), BitRange::new(3, 0)),
        ]);
        assert_eq!(
            lv.base_names(),
            vec!["carry".to_string(), "sum".to_string()]
        );
    }

    #[test]
    fn stmt_assigned_signals() {
        let stmt = Stmt::Block {
            stmts: vec![
                Stmt::NonBlocking {
                    lhs: LValue::Ident("q".into()),
                    rhs: Expr::ident("d"),
                    span: Span::line(2),
                },
                Stmt::If {
                    cond: Expr::ident("en"),
                    then_branch: Box::new(Stmt::NonBlocking {
                        lhs: LValue::Ident("count".into()),
                        rhs: Expr::num(0),
                        span: Span::line(4),
                    }),
                    else_branch: None,
                    span: Span::line(3),
                },
            ],
            span: Span::new(1, 5),
        };
        assert_eq!(
            stmt.assigned_signals(),
            vec!["count".to_string(), "q".to_string()]
        );
    }

    #[test]
    fn prop_horizon() {
        // end_cnt |-> ##1 valid_out == 1   → horizon 1
        let prop = PropExpr::Implication {
            antecedent: Box::new(PropExpr::Expr(Expr::ident("end_cnt"))),
            consequent: Box::new(PropExpr::Delay {
                lhs: None,
                cycles: 1,
                rhs: Box::new(PropExpr::Expr(Expr::ident("valid_out").eq(Expr::num(1)))),
            }),
            overlapping: true,
        };
        assert_eq!(prop.horizon(), 1);
        let nonoverlap = PropExpr::Implication {
            antecedent: Box::new(PropExpr::Expr(Expr::ident("a"))),
            consequent: Box::new(PropExpr::Expr(Expr::ident("b"))),
            overlapping: false,
        };
        assert_eq!(nonoverlap.horizon(), 1);
    }

    #[test]
    fn sensitivity_clock_and_reset() {
        let s = Sensitivity::Edges(vec![EdgeEvent::posedge("clk"), EdgeEvent::negedge("rst_n")]);
        assert_eq!(s.clock().unwrap().signal, "clk");
        assert_eq!(s.async_reset().unwrap().signal, "rst_n");
        assert!(!s.is_combinational());
        assert!(Sensitivity::Star.is_combinational());
    }

    #[test]
    fn module_helpers() {
        let m = Module::new(
            "m",
            vec![Port::input("a"), Port::output_reg_vec("q", 3)],
            vec![Item::Net(NetDecl {
                kind: NetKind::Wire,
                width: Some(BitRange::new(7, 0)),
                names: vec!["tmp".into()],
                span: Span::line(2),
            })],
        );
        assert_eq!(m.signal_width("a"), Some(1));
        assert_eq!(m.signal_width("q"), Some(4));
        assert_eq!(m.signal_width("tmp"), Some(8));
        assert_eq!(m.signal_width("nope"), None);
        assert!(!m.has_functional_logic());
        assert_eq!(m.declared_names().len(), 3);
    }

    #[test]
    fn assertion_display_name() {
        let a = AssertionItem {
            label: Some("check_q".into()),
            target: AssertTarget::Named("p_q".into()),
            message: None,
            span: Span::line(9),
        };
        assert_eq!(a.display_name(), "check_q");
        let b = AssertionItem {
            label: None,
            target: AssertTarget::Named("p_q".into()),
            message: None,
            span: Span::line(9),
        };
        assert_eq!(b.display_name(), "p_q");
    }
}
