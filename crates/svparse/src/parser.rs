//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Recursive-descent parser over a pre-lexed token stream.
///
/// # Examples
///
/// ```
/// use svparse::Parser;
/// let file = Parser::new("module m(input a, output b); assign b = !a; endmodule")?
///     .parse_file()?;
/// assert_eq!(file.modules[0].assigns().count(), 1);
/// # Ok::<(), svparse::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

/// Maximum syntactic nesting depth (parenthesised expressions, unary chains,
/// nested statements, concatenations) before the parser reports an error instead
/// of exhausting the call stack. Each level costs the full precedence-chain stack
/// frame budget, so the bound must stay small enough for debug builds on default
/// 2 MiB test threads. Deeply nested input is adversarial, not real hardware;
/// hand-written and generated designs stay far below this bound.
const MAX_NESTING_DEPTH: u32 = 64;

impl Parser {
    /// Lexes the source and prepares a parser.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the source cannot be tokenized.
    pub fn new(source: &str) -> Result<Self, ParseError> {
        Ok(Self {
            tokens: Lexer::tokenize(source)?,
            pos: 0,
            depth: 0,
        })
    }

    fn enter_nested(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ParseError::new(
                format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                self.line(),
            ));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn prev_line(&self) -> u32 {
        if self.pos == 0 {
            1
        } else {
            self.tokens[self.pos - 1].line
        }
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek().is_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{sym}`")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{}`", kw.as_str())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match &self.peek().kind {
            TokenKind::Number { value, .. } => {
                let v = *value;
                self.bump();
                Ok(v)
            }
            _ => Err(self.unexpected("number")),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            format!("expected {expected}, found {}", self.peek().kind),
            self.line(),
        )
    }

    /// Parses a complete source file (zero or more modules).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on the first syntax problem.
    pub fn parse_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !self.peek().is_eof() {
            modules.push(self.parse_module()?);
        }
        Ok(SourceFile::new(modules))
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let start = self.line();
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut ports = Vec::new();
        if self.eat_symbol("(") {
            if !self.peek().is_symbol(")") {
                loop {
                    ports.push(self.parse_port()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_symbol(";")?;

        let mut items = Vec::new();
        while !self.peek().is_keyword(Keyword::Endmodule) {
            if self.peek().is_eof() {
                return Err(ParseError::new("missing `endmodule`", self.line()));
            }
            items.push(self.parse_item()?);
        }
        self.expect_keyword(Keyword::Endmodule)?;
        Ok(Module {
            name,
            ports,
            items,
            span: Span::new(start, self.prev_line()),
        })
    }

    fn parse_port(&mut self) -> Result<Port, ParseError> {
        let dir = if self.eat_keyword(Keyword::Input) {
            PortDir::Input
        } else if self.eat_keyword(Keyword::Output) {
            PortDir::Output
        } else if self.eat_keyword(Keyword::Inout) {
            PortDir::Inout
        } else {
            return Err(self.unexpected("`input`, `output` or `inout`"));
        };
        let net = if self.eat_keyword(Keyword::Reg) {
            NetKind::Reg
        } else {
            // `wire`/`logic` are optional on ports; consume the keyword when present.
            let _ = self.eat_keyword(Keyword::Wire) || self.eat_keyword(Keyword::Logic);
            NetKind::Wire
        };
        self.eat_keyword(Keyword::Signed);
        let width = self.parse_opt_range()?;
        let name = self.expect_ident()?;
        Ok(Port {
            dir,
            net,
            width,
            name,
        })
    }

    fn parse_opt_range(&mut self) -> Result<Option<BitRange>, ParseError> {
        if self.peek().is_symbol("[") {
            self.bump();
            let msb = self.expect_number()? as u32;
            self.expect_symbol(":")?;
            let lsb = self.expect_number()? as u32;
            self.expect_symbol("]")?;
            Ok(Some(BitRange::new(msb, lsb)))
        } else {
            Ok(None)
        }
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let start = self.line();
        let kind = self.peek().kind.clone();
        match kind {
            TokenKind::Keyword(Keyword::Wire) => self.parse_net_decl(NetKind::Wire, start),
            TokenKind::Keyword(Keyword::Reg) | TokenKind::Keyword(Keyword::Logic) => {
                self.parse_net_decl(NetKind::Reg, start)
            }
            TokenKind::Keyword(Keyword::Integer) => self.parse_net_decl(NetKind::Integer, start),
            TokenKind::Keyword(Keyword::Parameter) => self.parse_param(false, start),
            TokenKind::Keyword(Keyword::Localparam) => self.parse_param(true, start),
            TokenKind::Keyword(Keyword::Assign) => self.parse_assign(start),
            TokenKind::Keyword(Keyword::Always)
            | TokenKind::Keyword(Keyword::AlwaysFf)
            | TokenKind::Keyword(Keyword::AlwaysComb) => self.parse_always(start),
            TokenKind::Keyword(Keyword::Initial) => self.parse_initial(start),
            TokenKind::Keyword(Keyword::Property) => self.parse_property(start).map(Item::Property),
            TokenKind::Keyword(Keyword::Assert) => self.parse_assert(None, start),
            TokenKind::Ident(label) if self.peek_at(1).is_symbol(":") => {
                self.bump(); // label
                self.bump(); // :
                if self.peek().is_keyword(Keyword::Assert) {
                    self.parse_assert(Some(label), start)
                } else {
                    Err(self.unexpected("`assert` after label"))
                }
            }
            _ => Err(self.unexpected("module item")),
        }
    }

    fn parse_net_decl(&mut self, kind: NetKind, start: u32) -> Result<Item, ParseError> {
        self.bump(); // wire/reg/logic/integer
        self.eat_keyword(Keyword::Signed);
        let width = self.parse_opt_range()?;
        let mut names = vec![self.expect_ident()?];
        while self.eat_symbol(",") {
            names.push(self.expect_ident()?);
        }
        // Optional initialiser on reg declarations is accepted and discarded.
        if self.eat_symbol("=") {
            let _ = self.parse_expr()?;
        }
        self.expect_symbol(";")?;
        Ok(Item::Net(NetDecl {
            kind,
            width,
            names,
            span: Span::new(start, self.prev_line()),
        }))
    }

    fn parse_param(&mut self, local: bool, start: u32) -> Result<Item, ParseError> {
        self.bump(); // parameter/localparam
        let _ = self.parse_opt_range()?;
        let name = self.expect_ident()?;
        self.expect_symbol("=")?;
        let value = self.parse_expr()?;
        self.expect_symbol(";")?;
        Ok(Item::Param(ParamDecl {
            local,
            name,
            value,
            span: Span::new(start, self.prev_line()),
        }))
    }

    fn parse_assign(&mut self, start: u32) -> Result<Item, ParseError> {
        self.expect_keyword(Keyword::Assign)?;
        let lhs = self.parse_lvalue()?;
        self.expect_symbol("=")?;
        let rhs = self.parse_expr()?;
        self.expect_symbol(";")?;
        Ok(Item::Assign(ContinuousAssign {
            lhs,
            rhs,
            span: Span::new(start, self.prev_line()),
        }))
    }

    fn parse_always(&mut self, start: u32) -> Result<Item, ParseError> {
        let tok = self.bump();
        let sensitivity = if tok.is_keyword(Keyword::AlwaysComb) {
            Sensitivity::Star
        } else {
            self.expect_symbol("@")?;
            self.parse_sensitivity()?
        };
        let body = self.parse_stmt()?;
        Ok(Item::Always(AlwaysBlock {
            sensitivity,
            body,
            span: Span::new(start, self.prev_line()),
        }))
    }

    fn parse_sensitivity(&mut self) -> Result<Sensitivity, ParseError> {
        if self.eat_symbol("*") {
            return Ok(Sensitivity::Star);
        }
        self.expect_symbol("(")?;
        if self.eat_symbol("*") {
            self.expect_symbol(")")?;
            return Ok(Sensitivity::Star);
        }
        let mut events = Vec::new();
        let mut any_edge = false;
        loop {
            if self.eat_keyword(Keyword::Posedge) {
                any_edge = true;
                events.push(EdgeEvent::posedge(self.expect_ident()?));
            } else if self.eat_keyword(Keyword::Negedge) {
                any_edge = true;
                events.push(EdgeEvent::negedge(self.expect_ident()?));
            } else {
                // Plain signal sensitivity (e.g. `always @(a or b)`) is treated as
                // combinational, matching common synthesisable usage.
                let _ = self.expect_ident()?;
            }
            if self.eat_keyword(Keyword::Or) || self.eat_symbol(",") {
                continue;
            }
            break;
        }
        self.expect_symbol(")")?;
        if any_edge {
            Ok(Sensitivity::Edges(events))
        } else {
            Ok(Sensitivity::Star)
        }
    }

    fn parse_initial(&mut self, start: u32) -> Result<Item, ParseError> {
        self.expect_keyword(Keyword::Initial)?;
        let body = self.parse_stmt()?;
        Ok(Item::Initial(InitialBlock {
            body,
            span: Span::new(start, self.prev_line()),
        }))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter_nested()?;
        let result = self.parse_stmt_inner();
        self.depth -= 1;
        result
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let start = self.line();
        if self.eat_keyword(Keyword::Begin) {
            let mut stmts = Vec::new();
            while !self.peek().is_keyword(Keyword::End) {
                if self.peek().is_eof() {
                    return Err(ParseError::new("missing `end`", self.line()));
                }
                stmts.push(self.parse_stmt()?);
            }
            self.expect_keyword(Keyword::End)?;
            return Ok(Stmt::Block {
                stmts,
                span: Span::new(start, self.prev_line()),
            });
        }
        if self.eat_keyword(Keyword::If) {
            self.expect_symbol("(")?;
            let cond = self.parse_expr()?;
            self.expect_symbol(")")?;
            let header_end = self.prev_line();
            let then_branch = Box::new(self.parse_stmt()?);
            let else_branch = if self.eat_keyword(Keyword::Else) {
                Some(Box::new(self.parse_stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
                span: Span::new(start, header_end),
            });
        }
        if self.peek().is_keyword(Keyword::Case) || self.peek().is_keyword(Keyword::Casez) {
            self.bump();
            self.expect_symbol("(")?;
            let subject = self.parse_expr()?;
            self.expect_symbol(")")?;
            let header_end = self.prev_line();
            let mut arms = Vec::new();
            let mut default = None;
            while !self.peek().is_keyword(Keyword::Endcase) {
                if self.peek().is_eof() {
                    return Err(ParseError::new("missing `endcase`", self.line()));
                }
                if self.eat_keyword(Keyword::Default) {
                    self.eat_symbol(":");
                    default = Some(Box::new(self.parse_stmt()?));
                    continue;
                }
                let arm_start = self.line();
                let mut labels = vec![self.parse_expr()?];
                while self.eat_symbol(",") {
                    labels.push(self.parse_expr()?);
                }
                self.expect_symbol(":")?;
                let body = self.parse_stmt()?;
                arms.push(CaseArm {
                    labels,
                    body,
                    span: Span::new(arm_start, self.prev_line()),
                });
            }
            self.expect_keyword(Keyword::Endcase)?;
            return Ok(Stmt::Case {
                subject,
                arms,
                default,
                span: Span::new(start, header_end),
            });
        }
        if self.eat_symbol(";") {
            return Ok(Stmt::Null);
        }

        // Assignment statement.
        let lhs = self.parse_lvalue()?;
        if self.eat_symbol("<=") {
            let rhs = self.parse_expr()?;
            self.expect_symbol(";")?;
            return Ok(Stmt::NonBlocking {
                lhs,
                rhs,
                span: Span::new(start, self.prev_line()),
            });
        }
        if self.eat_symbol("=") {
            let rhs = self.parse_expr()?;
            self.expect_symbol(";")?;
            return Ok(Stmt::Blocking {
                lhs,
                rhs,
                span: Span::new(start, self.prev_line()),
            });
        }
        Err(self.unexpected("`=` or `<=`"))
    }

    fn parse_lvalue(&mut self) -> Result<LValue, ParseError> {
        self.enter_nested()?;
        let result = self.parse_lvalue_inner();
        self.depth -= 1;
        result
    }

    fn parse_lvalue_inner(&mut self) -> Result<LValue, ParseError> {
        if self.eat_symbol("{") {
            let mut parts = vec![self.parse_lvalue()?];
            while self.eat_symbol(",") {
                parts.push(self.parse_lvalue()?);
            }
            self.expect_symbol("}")?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat_symbol("[") {
            let first = self.parse_expr()?;
            if self.eat_symbol(":") {
                let msb = expr_const(&first).ok_or_else(|| {
                    ParseError::new("part-select bounds must be constant", self.line())
                })?;
                let lsb = self.expect_number()? as u32;
                self.expect_symbol("]")?;
                return Ok(LValue::Part(name, BitRange::new(msb as u32, lsb)));
            }
            self.expect_symbol("]")?;
            return Ok(LValue::Bit(name, Box::new(first)));
        }
        Ok(LValue::Ident(name))
    }

    /// Parses an expression (public so that dataset tooling can parse fix snippets).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed expressions.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter_nested()?;
        let result = self.parse_ternary();
        self.depth -= 1;
        result
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_logical_or()?;
        if self.eat_symbol("?") {
            let then_val = self.parse_expr()?;
            self.expect_symbol(":")?;
            let else_val = self.parse_expr()?;
            return Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then_val),
                Box::new(else_val),
            ));
        }
        Ok(cond)
    }

    fn parse_logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_logical_and()?;
        while self.eat_symbol("||") {
            let rhs = self.parse_logical_and()?;
            lhs = Expr::binary(BinaryOp::LogicalOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_or()?;
        while self.eat_symbol("&&") {
            let rhs = self.parse_bit_or()?;
            lhs = Expr::binary(BinaryOp::LogicalAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_xor()?;
        while self.eat_symbol("|") {
            let rhs = self.parse_bit_xor()?;
            lhs = Expr::binary(BinaryOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bit_and()?;
        while self.eat_symbol("^") {
            let rhs = self.parse_bit_and()?;
            lhs = Expr::binary(BinaryOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_equality()?;
        while self.eat_symbol("&") {
            let rhs = self.parse_equality()?;
            lhs = Expr::binary(BinaryOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_relational()?;
        loop {
            if self.eat_symbol("==") || self.eat_symbol("===") {
                let rhs = self.parse_relational()?;
                lhs = Expr::binary(BinaryOp::Eq, lhs, rhs);
            } else if self.eat_symbol("!=") || self.eat_symbol("!==") {
                let rhs = self.parse_relational()?;
                lhs = Expr::binary(BinaryOp::Ne, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = if self.eat_symbol("<=") {
                BinaryOp::Le
            } else if self.eat_symbol(">=") {
                BinaryOp::Ge
            } else if self.eat_symbol("<") {
                BinaryOp::Lt
            } else if self.eat_symbol(">") {
                BinaryOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_shift()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat_symbol("<<") || self.eat_symbol("<<<") {
                BinaryOp::Shl
            } else if self.eat_symbol(">>") || self.eat_symbol(">>>") {
                BinaryOp::Shr
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_additive()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinaryOp::Add
            } else if self.eat_symbol("-") {
                BinaryOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinaryOp::Mul
            } else if self.eat_symbol("/") {
                BinaryOp::Div
            } else if self.eat_symbol("%") {
                BinaryOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.eat_symbol("!") {
            Some(UnaryOp::LogicalNot)
        } else if self.eat_symbol("~") {
            Some(UnaryOp::BitNot)
        } else if self.eat_symbol("-") {
            Some(UnaryOp::Neg)
        } else if self.eat_symbol("&") {
            Some(UnaryOp::RedAnd)
        } else if self.eat_symbol("|") {
            Some(UnaryOp::RedOr)
        } else if self.eat_symbol("^") {
            Some(UnaryOp::RedXor)
        } else {
            None
        };
        match op {
            Some(op) => {
                self.enter_nested()?;
                let inner = self.parse_unary();
                self.depth -= 1;
                Ok(Expr::unary(op, inner?))
            }
            None => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let kind = self.peek().kind.clone();
        match kind {
            TokenKind::Number { width, value, base } => {
                self.bump();
                Ok(Expr::Number(Literal { width, value, base }))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_symbol("[") {
                    let first = self.parse_expr()?;
                    if self.eat_symbol(":") {
                        let msb = expr_const(&first).ok_or_else(|| {
                            ParseError::new("part-select bounds must be constant", self.line())
                        })?;
                        let lsb = self.expect_number()? as u32;
                        self.expect_symbol("]")?;
                        return Ok(Expr::Part(name, BitRange::new(msb as u32, lsb)));
                    }
                    self.expect_symbol("]")?;
                    return Ok(Expr::Bit(name, Box::new(first)));
                }
                Ok(Expr::Ident(name))
            }
            TokenKind::SysIdent(sys) => {
                self.bump();
                self.expect_symbol("(")?;
                let inner = self.parse_expr()?;
                let result = match sys.as_str() {
                    "past" => {
                        let cycles = if self.eat_symbol(",") {
                            self.expect_number()? as u32
                        } else {
                            1
                        };
                        Expr::Past(Box::new(inner), cycles)
                    }
                    "rose" => Expr::Rose(Box::new(inner)),
                    "fell" => Expr::Fell(Box::new(inner)),
                    "stable" => Expr::Stable(Box::new(inner)),
                    other => {
                        return Err(ParseError::new(
                            format!("unsupported system function `${other}` in expression"),
                            self.line(),
                        ))
                    }
                };
                self.expect_symbol(")")?;
                Ok(result)
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            TokenKind::Symbol("{") => {
                self.bump();
                let first = self.parse_expr()?;
                // Replication: {N{expr}}
                if self.peek().is_symbol("{") {
                    let count = expr_const(&first).ok_or_else(|| {
                        ParseError::new("replication count must be constant", self.line())
                    })? as u32;
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect_symbol("}")?;
                    self.expect_symbol("}")?;
                    return Ok(Expr::Repeat(count, Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat_symbol(",") {
                    parts.push(self.parse_expr()?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn parse_property(&mut self, start: u32) -> Result<PropertyDecl, ParseError> {
        self.expect_keyword(Keyword::Property)?;
        let name = self.expect_ident()?;
        self.expect_symbol(";")?;
        let (clock, disable_iff, body) = self.parse_property_spec()?;
        self.expect_symbol(";")?;
        self.expect_keyword(Keyword::Endproperty)?;
        Ok(PropertyDecl {
            name,
            clock,
            disable_iff,
            body,
            span: Span::new(start, self.prev_line()),
        })
    }

    fn parse_property_spec(&mut self) -> Result<(EdgeEvent, Option<Expr>, PropExpr), ParseError> {
        self.expect_symbol("@")?;
        self.expect_symbol("(")?;
        let edge = if self.eat_keyword(Keyword::Posedge) {
            EdgeKind::Pos
        } else if self.eat_keyword(Keyword::Negedge) {
            EdgeKind::Neg
        } else {
            return Err(self.unexpected("`posedge` or `negedge`"));
        };
        let clk = self.expect_ident()?;
        self.expect_symbol(")")?;
        let clock = EdgeEvent { edge, signal: clk };
        let disable_iff = if self.eat_keyword(Keyword::Disable) {
            self.expect_keyword(Keyword::Iff)?;
            self.expect_symbol("(")?;
            let guard = self.parse_expr()?;
            self.expect_symbol(")")?;
            Some(guard)
        } else {
            None
        };
        let body = self.parse_prop_expr()?;
        Ok((clock, disable_iff, body))
    }

    fn parse_prop_expr(&mut self) -> Result<PropExpr, ParseError> {
        self.enter_nested()?;
        let result = self.parse_prop_expr_inner();
        self.depth -= 1;
        result
    }

    fn parse_prop_expr_inner(&mut self) -> Result<PropExpr, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            self.expect_symbol("(")?;
            let inner = self.parse_prop_expr()?;
            self.expect_symbol(")")?;
            return Ok(PropExpr::Not(Box::new(inner)));
        }
        let antecedent = self.parse_prop_sequence()?;
        if self.eat_symbol("|->") {
            let consequent = self.parse_prop_expr()?;
            return Ok(PropExpr::Implication {
                antecedent: Box::new(antecedent),
                consequent: Box::new(consequent),
                overlapping: true,
            });
        }
        if self.eat_symbol("|=>") {
            let consequent = self.parse_prop_expr()?;
            return Ok(PropExpr::Implication {
                antecedent: Box::new(antecedent),
                consequent: Box::new(consequent),
                overlapping: false,
            });
        }
        Ok(antecedent)
    }

    fn parse_prop_sequence(&mut self) -> Result<PropExpr, ParseError> {
        let mut lhs = if self.peek().is_symbol("##") {
            None
        } else {
            Some(PropExpr::Expr(self.parse_expr()?))
        };
        while self.eat_symbol("##") {
            let cycles = self.expect_number()? as u32;
            let rhs = PropExpr::Expr(self.parse_expr()?);
            lhs = Some(PropExpr::Delay {
                lhs: lhs.map(Box::new),
                cycles,
                rhs: Box::new(rhs),
            });
        }
        lhs.ok_or_else(|| self.unexpected("property expression"))
    }

    fn parse_assert(&mut self, label: Option<String>, start: u32) -> Result<Item, ParseError> {
        self.expect_keyword(Keyword::Assert)?;
        self.expect_keyword(Keyword::Property)?;
        self.expect_symbol("(")?;
        let target = if self.peek().is_symbol("@") {
            let (clock, disable_iff, body) = self.parse_property_spec()?;
            let inline_name = label
                .clone()
                .unwrap_or_else(|| "inline_property".to_string());
            AssertTarget::Inline(Box::new(PropertyDecl {
                name: inline_name,
                clock,
                disable_iff,
                body,
                span: Span::new(start, self.prev_line()),
            }))
        } else {
            AssertTarget::Named(self.expect_ident()?)
        };
        self.expect_symbol(")")?;
        let mut message = None;
        if self.eat_keyword(Keyword::Else) {
            // else $error("...") or $display("...")
            match self.bump().kind {
                TokenKind::SysIdent(_) => {}
                _ => return Err(self.unexpected("system task after `else`")),
            }
            self.expect_symbol("(")?;
            if let TokenKind::StringLit(text) = self.peek().kind.clone() {
                message = Some(text);
                self.bump();
            }
            // Skip any extra arguments.
            while !self.peek().is_symbol(")") {
                if self.peek().is_eof() {
                    return Err(self.unexpected("`)`"));
                }
                self.bump();
            }
            self.expect_symbol(")")?;
        }
        self.expect_symbol(";")?;
        Ok(Item::Assertion(AssertionItem {
            label,
            target,
            message,
            span: Span::new(start, self.prev_line()),
        }))
    }
}

fn expr_const(expr: &Expr) -> Option<u64> {
    match expr {
        Expr::Number(lit) => Some(lit.value),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const ACCU: &str = r#"
module accu(
  input clk,
  input rst_n,
  input [7:0] data_in,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n)
    end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion:
  assert property (valid_out_check)
  else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    #[test]
    fn parses_paper_style_module() {
        let m = crate::parse_module(ACCU).unwrap();
        assert_eq!(m.name, "accu");
        assert_eq!(m.ports.len(), 5);
        assert_eq!(m.always_blocks().count(), 2);
        assert_eq!(m.properties().count(), 1);
        assert_eq!(m.assertions().count(), 1);
        let assertion = m.assertions().next().unwrap();
        assert_eq!(
            assertion.display_name(),
            "valid_out_check_assertion".to_string()
        );
        assert_eq!(
            assertion.message.as_deref(),
            Some("valid_out should be high when end_cnt high")
        );
        let prop = m.property("valid_out_check").unwrap();
        assert_eq!(prop.clock.signal, "clk");
        assert!(prop.disable_iff.is_some());
        assert_eq!(prop.body.horizon(), 1);
    }

    #[test]
    fn operator_precedence() {
        let m = crate::parse_module(
            "module m(input a, input b, input c, output x); assign x = a & b | c; endmodule",
        )
        .unwrap();
        let assign = m.assigns().next().unwrap();
        // Expect (a & b) | c
        match &assign.rhs {
            Expr::Binary(BinaryOp::BitOr, lhs, _) => match lhs.as_ref() {
                Expr::Binary(BinaryOp::BitAnd, _, _) => {}
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected rhs {other:?}"),
        }
    }

    #[test]
    fn ternary_and_comparison() {
        let m = crate::parse_module(
            "module m(input [3:0] a, output [3:0] y); assign y = (a >= 4'd8) ? a - 4'd8 : a + 4'd1; endmodule",
        )
        .unwrap();
        let assign = m.assigns().next().unwrap();
        assert!(matches!(assign.rhs, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn case_statement() {
        let src = r#"
module m(input [1:0] sel, input a, input b, input c, output reg y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2, 2'd3: y = c;
      default: y = 0;
    endcase
  end
endmodule
"#;
        let m = crate::parse_module(src).unwrap();
        let always = m.always_blocks().next().unwrap();
        let mut found_case = false;
        always.body.walk(&mut |s| {
            if let Stmt::Case { arms, default, .. } = s {
                found_case = true;
                assert_eq!(arms.len(), 3);
                assert!(default.is_some());
            }
        });
        assert!(found_case);
    }

    #[test]
    fn concat_and_replication() {
        let m = crate::parse_module(
            "module m(input [3:0] a, output [7:0] y, output [7:0] z); assign y = {a, 4'b0000}; assign z = {2{a}}; endmodule",
        )
        .unwrap();
        let assigns: Vec<_> = m.assigns().collect();
        assert!(matches!(assigns[0].rhs, Expr::Concat(_)));
        assert!(matches!(assigns[1].rhs, Expr::Repeat(2, _)));
    }

    #[test]
    fn bit_and_part_select() {
        let m = crate::parse_module(
            "module m(input [7:0] d, input [2:0] i, output y, output [3:0] hi); assign y = d[i]; assign hi = d[7:4]; endmodule",
        )
        .unwrap();
        let assigns: Vec<_> = m.assigns().collect();
        assert!(matches!(assigns[0].rhs, Expr::Bit(_, _)));
        assert!(matches!(assigns[1].rhs, Expr::Part(_, _)));
    }

    #[test]
    fn inline_assert_property() {
        let src = r#"
module m(input clk, input rst_n, input a, output reg b);
  always @(posedge clk) b <= a;
  a_implies_b: assert property (@(posedge clk) disable iff (!rst_n) a |=> b);
endmodule
"#;
        let m = crate::parse_module(src).unwrap();
        let assertion = m.assertions().next().unwrap();
        match &assertion.target {
            AssertTarget::Inline(p) => {
                assert_eq!(p.clock.signal, "clk");
                assert_eq!(p.body.horizon(), 1);
            }
            other => panic!("expected inline property, got {other:?}"),
        }
    }

    #[test]
    fn sva_system_functions() {
        let src = r#"
module m(input clk, input req, input ack);
  property p;
    @(posedge clk) $rose(req) |-> ##2 ack == $past(req, 2);
  endproperty
  assert property (p);
endmodule
"#;
        let m = crate::parse_module(src).unwrap();
        let p = m.property("p").unwrap();
        let ids = p.body.idents();
        assert!(ids.contains(&"req".to_string()));
        assert!(ids.contains(&"ack".to_string()));
    }

    #[test]
    fn missing_endmodule_is_error() {
        assert!(parse("module m(input a);").is_err());
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("module m(input a, output b); assign b = a endmodule").is_err());
    }

    #[test]
    fn garbage_is_error() {
        assert!(parse("modul m(); endmodule").is_err());
    }

    #[test]
    fn multiple_modules() {
        let f = parse("module a(); endmodule module b(); endmodule").unwrap();
        assert_eq!(f.modules.len(), 2);
    }

    #[test]
    fn parameters_and_localparams() {
        let m = crate::parse_module(
            "module m(input a, output y); parameter WIDTH = 8; localparam DEPTH = 4; assign y = a; endmodule",
        )
        .unwrap();
        let params: Vec<_> = m
            .items
            .iter()
            .filter(|i| matches!(i, Item::Param(_)))
            .collect();
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn spans_are_tracked() {
        let m = crate::parse_module(ACCU).unwrap();
        let assign = m.assigns().next().unwrap();
        assert!(assign.span.start_line >= 10 && assign.span.start_line <= 12);
        for item in &m.items {
            assert!(!item.span().is_synthetic());
        }
    }

    #[test]
    fn initial_block() {
        let m = crate::parse_module("module m(output reg q); initial begin q = 0; end endmodule")
            .unwrap();
        assert!(m.items.iter().any(|i| matches!(i, Item::Initial(_))));
    }

    #[test]
    fn reduction_operators() {
        let m = crate::parse_module(
            "module m(input [3:0] a, output y, output z); assign y = &a; assign z = ^a; endmodule",
        )
        .unwrap();
        let assigns: Vec<_> = m.assigns().collect();
        assert!(matches!(assigns[0].rhs, Expr::Unary(UnaryOp::RedAnd, _)));
        assert!(matches!(assigns[1].rhs, Expr::Unary(UnaryOp::RedXor, _)));
    }
}
