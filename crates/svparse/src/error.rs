//! Error type shared by the lexer and parser.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when source text cannot be lexed or parsed.
///
/// The error carries the 1-based line on which the problem was detected so that the
/// Stage-1 "compiler analysis" entries of the *Verilog-PT* dataset can point at the
/// offending construct, exactly as the paper's pipeline records Icarus Verilog
/// diagnostics.
///
/// # Examples
///
/// ```
/// let err = svparse::parse("module m(; endmodule").unwrap_err();
/// assert!(err.line() >= 1);
/// assert!(!err.to_string().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    message: String,
    line: u32,
}

impl ParseError {
    /// Creates a new error with a message and the 1-based line it refers to.
    pub fn new(message: impl Into<String>, line: u32) -> Self {
        Self {
            message: message.into(),
            line,
        }
    }

    /// The human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line the error refers to (0 when unknown).
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "syntax error: {}", self.message)
        } else {
            write!(f, "syntax error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new("unexpected token", 12);
        assert_eq!(e.to_string(), "syntax error at line 12: unexpected token");
    }

    #[test]
    fn display_without_line() {
        let e = ParseError::new("empty input", 0);
        assert_eq!(e.to_string(), "syntax error: empty input");
    }

    #[test]
    fn accessors() {
        let e = ParseError::new("x", 3);
        assert_eq!(e.message(), "x");
        assert_eq!(e.line(), 3);
    }
}
