//! Token definitions produced by the [`crate::lexer`].

use std::fmt;

/// The lexical category of a [`Token`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier such as `count` or an escaped identifier.
    Ident(String),
    /// A system identifier such as `$error` or `$past` (leading `$` stripped).
    SysIdent(String),
    /// A reserved keyword such as `module` or `assign`.
    Keyword(Keyword),
    /// A numeric literal; see [`crate::ast::Literal`] for the parsed form.
    Number {
        /// Explicit bit width if the literal was sized (e.g. `4` in `4'b1010`).
        width: Option<u32>,
        /// The value, truncated to 64 bits.
        value: u64,
        /// The base character used (`'b'`, `'h'`, `'d'`, `'o'`), or `'d'` for plain decimals.
        base: char,
    },
    /// A double-quoted string literal (quotes stripped, escapes resolved).
    StringLit(String),
    /// An operator or punctuation symbol, e.g. `"+"`, `"<="`, `"|->"`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Logic,
    Parameter,
    Localparam,
    Assign,
    Always,
    AlwaysFf,
    AlwaysComb,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    Property,
    Endproperty,
    Assert,
    Disable,
    Iff,
    Not,
    Signed,
}

impl Keyword {
    /// Maps an identifier to a keyword, if it is one.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(word: &str) -> Option<Keyword> {
        Some(match word {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "integer" => Keyword::Integer,
            "logic" => Keyword::Logic,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "always_ff" => Keyword::AlwaysFf,
            "always_comb" => Keyword::AlwaysComb,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "property" => Keyword::Property,
            "endproperty" => Keyword::Endproperty,
            "assert" => Keyword::Assert,
            "disable" => Keyword::Disable,
            "iff" => Keyword::Iff,
            "not" => Keyword::Not,
            "signed" => Keyword::Signed,
            _ => return None,
        })
    }

    /// The canonical source spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Integer => "integer",
            Keyword::Logic => "logic",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::AlwaysFf => "always_ff",
            Keyword::AlwaysComb => "always_comb",
            Keyword::Initial => "initial",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Property => "property",
            Keyword::Endproperty => "endproperty",
            Keyword::Assert => "assert",
            Keyword::Disable => "disable",
            Keyword::Iff => "iff",
            Keyword::Not => "not",
            Keyword::Signed => "signed",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A token together with the 1-based line on which it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexical category and payload.
    pub kind: TokenKind,
    /// The 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Creates a token at the given line.
    pub fn new(kind: TokenKind, line: u32) -> Self {
        Self { kind, line }
    }

    /// Returns `true` if the token is the given symbol.
    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(&self.kind, TokenKind::Symbol(s) if *s == sym)
    }

    /// Returns `true` if the token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }

    /// Returns `true` if the token marks the end of input.
    pub fn is_eof(&self) -> bool {
        matches!(self.kind, TokenKind::Eof)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::SysIdent(s) => write!(f, "system identifier `${s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Number { value, .. } => write!(f, "number `{value}`"),
            TokenKind::StringLit(s) => write!(f, "string \"{s}\""),
            TokenKind::Symbol(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for word in [
            "module",
            "endmodule",
            "always",
            "property",
            "posedge",
            "assign",
            "iff",
        ] {
            let kw = Keyword::from_str(word).unwrap();
            assert_eq!(kw.as_str(), word);
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert!(Keyword::from_str("count").is_none());
        assert!(Keyword::from_str("").is_none());
    }

    #[test]
    fn token_predicates() {
        let t = Token::new(TokenKind::Symbol("<="), 4);
        assert!(t.is_symbol("<="));
        assert!(!t.is_symbol("="));
        assert!(!t.is_eof());
        let k = Token::new(TokenKind::Keyword(Keyword::Module), 1);
        assert!(k.is_keyword(Keyword::Module));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Symbol("|->").to_string(), "`|->`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
    }
}
