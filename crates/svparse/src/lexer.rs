//! Hand-written lexer for the Verilog/SVA subset.

use crate::error::ParseError;
use crate::token::{Keyword, Token, TokenKind};

/// Converts source text into a vector of [`Token`]s.
///
/// Comments (`//` and `/* */`) and whitespace are skipped; line numbers are tracked so
/// every token knows the 1-based line it starts on.
///
/// # Examples
///
/// ```
/// use svparse::Lexer;
/// let tokens = Lexer::tokenize("assign y = a & b;")?;
/// assert!(tokens.iter().any(|t| t.is_symbol("&")));
/// # Ok::<(), svparse::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

/// Multi-character symbols, longest first so that maximal munch works.
const MULTI_SYMBOLS: &[&str] = &[
    "|=>", "|->", "<<<", ">>>", "===", "!==", "##", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+:", "-:",
];

const SINGLE_SYMBOLS: &[char] = &[
    '(', ')', '[', ']', '{', '}', ';', ',', ':', '?', '@', '#', '=', '+', '-', '*', '/', '%', '&',
    '|', '^', '~', '!', '<', '>', '.',
];

impl<'a> Lexer<'a> {
    /// Creates a lexer over the given source text.
    pub fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenizes the whole input, appending a final [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on unterminated strings/comments, malformed numeric
    /// literals or characters outside the supported alphabet.
    pub fn tokenize(source: &'a str) -> Result<Vec<Token>, ParseError> {
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            let token = lexer.next_token()?;
            let eof = token.is_eof();
            tokens.push(token);
            if eof {
                break;
            }
        }
        // The EOF token reports the last content line: trailing newlines would
        // otherwise push it past the end of the source, so "found end of input"
        // diagnostics would point at a line that does not exist.
        if tokens.len() >= 2 {
            let last_content_line = tokens[tokens.len() - 2].line;
            tokens.last_mut().expect("eof token").line = last_content_line;
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    start_line,
                                ))
                            }
                        }
                    }
                }
                Some(b'`') => {
                    // Compiler directives (`timescale, `define ...) are skipped to end of line.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, line));
        };

        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(Token::new(self.lex_word(), line));
        }
        if c == b'$' {
            self.bump();
            let word = self.take_ident_chars();
            return Ok(Token::new(TokenKind::SysIdent(word), line));
        }
        if c.is_ascii_digit() || (c == b'\'' && self.is_base_char(self.peek_at(1))) {
            return self.lex_number(line);
        }
        if c == b'"' {
            return self.lex_string(line);
        }

        // Multi-character symbols first (maximal munch).
        for sym in MULTI_SYMBOLS {
            if self.src[self.pos..].starts_with(sym.as_bytes()) {
                for _ in 0..sym.len() {
                    self.bump();
                }
                return Ok(Token::new(TokenKind::Symbol(sym), line));
            }
        }
        if SINGLE_SYMBOLS.contains(&(c as char)) {
            self.bump();
            let sym = single_symbol_str(c as char);
            return Ok(Token::new(TokenKind::Symbol(sym), line));
        }

        Err(ParseError::new(
            format!("unexpected character `{}`", c as char),
            line,
        ))
    }

    fn is_base_char(&self, c: Option<u8>) -> bool {
        matches!(
            c,
            Some(b'b' | b'B' | b'h' | b'H' | b'd' | b'D' | b'o' | b'O')
        )
    }

    fn take_ident_chars(&mut self) -> String {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                word.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    fn lex_word(&mut self) -> TokenKind {
        let word = self.take_ident_chars();
        match Keyword::from_str(&word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word),
        }
    }

    fn lex_string(&mut self, line: u32) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let escaped = self
                        .bump()
                        .ok_or_else(|| ParseError::new("unterminated string literal", line))?;
                    match escaped {
                        b'n' => text.push('\n'),
                        b't' => text.push('\t'),
                        other => text.push(other as char),
                    }
                }
                Some(c) => text.push(c as char),
                None => return Err(ParseError::new("unterminated string literal", line)),
            }
        }
        Ok(Token::new(TokenKind::StringLit(text), line))
    }

    fn lex_number(&mut self, line: u32) -> Result<Token, ParseError> {
        // Optional leading decimal size, e.g. `4` in 4'b1010.
        let mut width_digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'_' {
                if c != b'_' {
                    width_digits.push(c as char);
                }
                self.bump();
            } else {
                break;
            }
        }

        if self.peek() == Some(b'\'') && self.is_base_char(self.peek_at(1)) {
            self.bump(); // '
            let base_char = (self.bump().expect("base char checked") as char).to_ascii_lowercase();
            let radix = match base_char {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                _ => unreachable!("base char validated"),
            };
            let mut digits = String::new();
            while let Some(c) = self.peek() {
                let ch = (c as char).to_ascii_lowercase();
                if ch == '_' {
                    self.bump();
                    continue;
                }
                if ch.is_digit(radix) || (radix == 2 && (ch == 'x' || ch == 'z')) {
                    // x/z digits are mapped to 0: the simulator is two-state.
                    digits.push(if ch == 'x' || ch == 'z' { '0' } else { ch });
                    self.bump();
                } else {
                    break;
                }
            }
            if digits.is_empty() {
                return Err(ParseError::new("missing digits in sized literal", line));
            }
            let value = u64::from_str_radix(&digits, radix)
                .map_err(|_| ParseError::new("numeric literal does not fit in 64 bits", line))?;
            let width = if width_digits.is_empty() {
                None
            } else {
                Some(
                    width_digits
                        .parse::<u32>()
                        .map_err(|_| ParseError::new("invalid literal width", line))?,
                )
            };
            return Ok(Token::new(
                TokenKind::Number {
                    width,
                    value,
                    base: base_char,
                },
                line,
            ));
        }

        if width_digits.is_empty() {
            return Err(ParseError::new("malformed numeric literal", line));
        }
        let value = width_digits
            .parse::<u64>()
            .map_err(|_| ParseError::new("numeric literal does not fit in 64 bits", line))?;
        Ok(Token::new(
            TokenKind::Number {
                width: None,
                value,
                base: 'd',
            },
            line,
        ))
    }
}

fn single_symbol_str(c: char) -> &'static str {
    match c {
        '(' => "(",
        ')' => ")",
        '[' => "[",
        ']' => "]",
        '{' => "{",
        '}' => "}",
        ';' => ";",
        ',' => ",",
        ':' => ":",
        '?' => "?",
        '@' => "@",
        '#' => "#",
        '=' => "=",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '~' => "~",
        '!' => "!",
        '<' => "<",
        '>' => ">",
        '.' => ".",
        _ => unreachable!("symbol table covers all single symbols"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_keywords_and_idents() {
        let ks = kinds("module foo endmodule");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Module));
        assert_eq!(ks[1], TokenKind::Ident("foo".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::Endmodule));
        assert_eq!(ks[3], TokenKind::Eof);
    }

    #[test]
    fn lex_sized_literals() {
        let ks = kinds("4'b1010 8'hFF 'd42 16'd123");
        assert_eq!(
            ks[0],
            TokenKind::Number {
                width: Some(4),
                value: 0b1010,
                base: 'b'
            }
        );
        assert_eq!(
            ks[1],
            TokenKind::Number {
                width: Some(8),
                value: 0xFF,
                base: 'h'
            }
        );
        assert_eq!(
            ks[2],
            TokenKind::Number {
                width: None,
                value: 42,
                base: 'd'
            }
        );
        assert_eq!(
            ks[3],
            TokenKind::Number {
                width: Some(16),
                value: 123,
                base: 'd'
            }
        );
    }

    #[test]
    fn lex_plain_decimal() {
        let ks = kinds("42");
        assert_eq!(
            ks[0],
            TokenKind::Number {
                width: None,
                value: 42,
                base: 'd'
            }
        );
    }

    #[test]
    fn lex_multi_symbols() {
        let ks = kinds("a |-> b |=> c ## d <= e == f");
        let syms: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["|->", "|=>", "##", "<=", "=="]);
    }

    #[test]
    fn comments_and_directives_are_skipped() {
        let ks = kinds("// line comment\n`timescale 1ns/1ps\n/* block\ncomment */ module");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Module));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = Lexer::tokenize("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn string_literals_with_escapes() {
        let ks = kinds(r#""valid_out should be high\n""#);
        assert_eq!(
            ks[0],
            TokenKind::StringLit("valid_out should be high\n".into())
        );
    }

    #[test]
    fn system_identifiers() {
        let ks = kinds("$error $past $display");
        assert_eq!(ks[0], TokenKind::SysIdent("error".into()));
        assert_eq!(ks[1], TokenKind::SysIdent("past".into()));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(Lexer::tokenize("/* nope").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::tokenize("\"nope").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = Lexer::tokenize("\\escaped").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn underscores_in_numbers() {
        let ks = kinds("16'b1010_1010");
        assert_eq!(
            ks[0],
            TokenKind::Number {
                width: Some(16),
                value: 0b1010_1010,
                base: 'b'
            }
        );
    }

    #[test]
    fn x_and_z_digits_read_as_zero() {
        let ks = kinds("4'bxx10");
        assert_eq!(
            ks[0],
            TokenKind::Number {
                width: Some(4),
                value: 0b0010,
                base: 'b'
            }
        );
    }
}
