//! Canonical pretty-printer.
//!
//! The emitter produces a deterministic, one-statement-per-line rendering of a module.
//! All of the dataset machinery relies on this canonical form: bug injection re-emits
//! the mutated AST and the "buggy line" of a training/evaluation sample is defined as
//! the line of the canonical text that differs from the golden rendering.
//!
//! The canonical form is designed to be re-parsable: `parse(emit(ast))` succeeds and
//! emitting again yields the identical string (idempotence), which is checked by a
//! property test in the crate.

use crate::ast::*;

/// Emits a whole source file in canonical form.
///
/// # Examples
///
/// ```
/// let file = svparse::parse("module m(input a, output b); assign b = a; endmodule")?;
/// let text = svparse::emit_file(&file);
/// assert!(text.contains("assign b = a;"));
/// # Ok::<(), svparse::ParseError>(())
/// ```
pub fn emit_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, module) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&emit_module(module));
    }
    out
}

/// Emits a single module in canonical form (one statement per line, two-space indent).
pub fn emit_module(module: &Module) -> String {
    let mut w = Writer::new();
    if module.ports.is_empty() {
        w.line(0, &format!("module {}();", module.name));
    } else {
        w.line(0, &format!("module {}(", module.name));
        for (i, port) in module.ports.iter().enumerate() {
            let comma = if i + 1 == module.ports.len() { "" } else { "," };
            w.line(1, &format!("{}{}", emit_port(port), comma));
        }
        w.line(0, ");");
    }
    for item in &module.items {
        emit_item(&mut w, item);
    }
    w.line(0, "endmodule");
    w.finish()
}

/// Emits an expression in canonical form (minimal parentheses).
pub fn emit_expr(expr: &Expr) -> String {
    expr_text(expr, 0)
}

/// Emits a statement in canonical single-line or multi-line form, unindented.
///
/// Useful for rendering golden fixes in dataset entries.
pub fn emit_stmt(stmt: &Stmt) -> String {
    let mut w = Writer::new();
    emit_stmt_at(&mut w, 0, stmt);
    w.finish().trim_end().to_string()
}

/// Emits an lvalue in canonical form.
pub fn emit_lvalue(lvalue: &LValue) -> String {
    match lvalue {
        LValue::Ident(n) => n.clone(),
        LValue::Bit(n, idx) => format!("{n}[{}]", emit_expr(idx)),
        LValue::Part(n, range) => format!("{n}{range}"),
        LValue::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(emit_lvalue).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

struct Writer {
    lines: Vec<String>,
}

impl Writer {
    fn new() -> Self {
        Self { lines: Vec::new() }
    }

    fn line(&mut self, indent: usize, text: &str) {
        let mut s = "  ".repeat(indent);
        s.push_str(text);
        self.lines.push(s);
    }

    fn finish(self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }
}

fn emit_port(port: &Port) -> String {
    let mut s = port.dir.to_string();
    if port.net == NetKind::Reg && port.dir == PortDir::Output {
        s.push_str(" reg");
    }
    if let Some(range) = port.width {
        s.push_str(&format!(" {range}"));
    }
    s.push(' ');
    s.push_str(&port.name);
    s
}

fn emit_item(w: &mut Writer, item: &Item) {
    match item {
        Item::Net(decl) => {
            let range = decl.width.map(|r| format!(" {r}")).unwrap_or_default();
            w.line(
                1,
                &format!("{}{} {};", decl.kind, range, decl.names.join(", ")),
            );
        }
        Item::Param(p) => {
            let kw = if p.local { "localparam" } else { "parameter" };
            w.line(1, &format!("{kw} {} = {};", p.name, emit_expr(&p.value)));
        }
        Item::Assign(a) => {
            w.line(
                1,
                &format!("assign {} = {};", emit_lvalue(&a.lhs), emit_expr(&a.rhs)),
            );
        }
        Item::Always(block) => {
            let sens = match &block.sensitivity {
                Sensitivity::Star => "always @(*)".to_string(),
                Sensitivity::Edges(events) => {
                    let parts: Vec<String> = events
                        .iter()
                        .map(|e| format!("{} {}", e.edge, e.signal))
                        .collect();
                    format!("always @({})", parts.join(" or "))
                }
            };
            w.line(1, &format!("{sens} begin"));
            emit_body_lines(w, 2, &block.body);
            w.line(1, "end");
        }
        Item::Initial(block) => {
            w.line(1, "initial begin");
            emit_body_lines(w, 2, &block.body);
            w.line(1, "end");
        }
        Item::Property(p) => {
            w.line(1, &format!("property {};", p.name));
            w.line(2, &emit_property_spec(p));
            w.line(1, "endproperty");
        }
        Item::Assertion(a) => {
            let label = a
                .label
                .as_ref()
                .map(|l| format!("{l}: "))
                .unwrap_or_default();
            let target = match &a.target {
                AssertTarget::Named(name) => name.clone(),
                AssertTarget::Inline(p) => emit_property_spec(p),
            };
            let message = a
                .message
                .as_ref()
                .map(|m| format!(" else $error(\"{m}\")"))
                .unwrap_or_default();
            w.line(1, &format!("{label}assert property ({target}){message};"));
        }
    }
}

fn emit_property_spec(p: &PropertyDecl) -> String {
    let mut s = format!("@({} {}) ", p.clock.edge, p.clock.signal);
    if let Some(guard) = &p.disable_iff {
        s.push_str(&format!("disable iff ({}) ", emit_expr(guard)));
    }
    s.push_str(&emit_prop_expr(&p.body));
    s.push(';');
    s
}

fn emit_prop_expr(p: &PropExpr) -> String {
    match p {
        PropExpr::Expr(e) => emit_expr(e),
        PropExpr::Implication {
            antecedent,
            consequent,
            overlapping,
        } => {
            let arrow = if *overlapping { "|->" } else { "|=>" };
            format!(
                "{} {arrow} {}",
                emit_prop_expr(antecedent),
                emit_prop_expr(consequent)
            )
        }
        PropExpr::Delay { lhs, cycles, rhs } => {
            let prefix = lhs
                .as_ref()
                .map(|l| format!("{} ", emit_prop_expr(l)))
                .unwrap_or_default();
            format!("{prefix}##{cycles} {}", emit_prop_expr(rhs))
        }
        PropExpr::Not(inner) => format!("not ({})", emit_prop_expr(inner)),
    }
}

/// Emits the statements inside a `begin ... end` body without emitting the wrapper.
fn emit_body_lines(w: &mut Writer, indent: usize, body: &Stmt) {
    match body {
        Stmt::Block { stmts, .. } => {
            for stmt in stmts {
                emit_stmt_at(w, indent, stmt);
            }
        }
        other => emit_stmt_at(w, indent, other),
    }
}

fn emit_stmt_at(w: &mut Writer, indent: usize, stmt: &Stmt) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            w.line(indent, "begin");
            for s in stmts {
                emit_stmt_at(w, indent + 1, s);
            }
            w.line(indent, "end");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => emit_if(w, indent, cond, then_branch, else_branch.as_deref(), "if"),
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            w.line(indent, &format!("case ({})", emit_expr(subject)));
            for arm in arms {
                let labels: Vec<String> = arm.labels.iter().map(emit_expr).collect();
                if is_simple(&arm.body) {
                    w.line(
                        indent + 1,
                        &format!("{}: {}", labels.join(", "), simple_stmt_text(&arm.body)),
                    );
                } else {
                    w.line(indent + 1, &format!("{}: begin", labels.join(", ")));
                    emit_body_lines(w, indent + 2, &arm.body);
                    w.line(indent + 1, "end");
                }
            }
            if let Some(d) = default {
                if is_simple(d) {
                    w.line(indent + 1, &format!("default: {}", simple_stmt_text(d)));
                } else {
                    w.line(indent + 1, "default: begin");
                    emit_body_lines(w, indent + 2, d);
                    w.line(indent + 1, "end");
                }
            }
            w.line(indent, "endcase");
        }
        Stmt::Blocking { .. } | Stmt::NonBlocking { .. } | Stmt::Null => {
            w.line(indent, &simple_stmt_text(stmt));
        }
    }
}

fn emit_if(
    w: &mut Writer,
    indent: usize,
    cond: &Expr,
    then_branch: &Stmt,
    else_branch: Option<&Stmt>,
    keyword: &str,
) {
    let header = format!("{keyword} ({})", emit_expr(cond));
    if is_simple(then_branch) {
        w.line(
            indent,
            &format!("{header} {}", simple_stmt_text(then_branch)),
        );
    } else {
        w.line(indent, &format!("{header} begin"));
        emit_body_lines(w, indent + 1, then_branch);
        w.line(indent, "end");
    }
    match else_branch {
        None => {}
        Some(Stmt::If {
            cond: else_cond,
            then_branch: else_then,
            else_branch: else_else,
            ..
        }) => {
            emit_if(
                w,
                indent,
                else_cond,
                else_then,
                else_else.as_deref(),
                "else if",
            );
        }
        Some(other) if is_simple(other) => {
            w.line(indent, &format!("else {}", simple_stmt_text(other)));
        }
        Some(other) => {
            w.line(indent, "else begin");
            emit_body_lines(w, indent + 1, other);
            w.line(indent, "end");
        }
    }
}

fn is_simple(stmt: &Stmt) -> bool {
    matches!(
        stmt,
        Stmt::Blocking { .. } | Stmt::NonBlocking { .. } | Stmt::Null
    )
}

fn simple_stmt_text(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Blocking { lhs, rhs, .. } => {
            format!("{} = {};", emit_lvalue(lhs), emit_expr(rhs))
        }
        Stmt::NonBlocking { lhs, rhs, .. } => {
            format!("{} <= {};", emit_lvalue(lhs), emit_expr(rhs))
        }
        Stmt::Null => ";".to_string(),
        _ => unreachable!("simple_stmt_text called on compound statement"),
    }
}

fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::LogicalOr => 1,
        BinaryOp::LogicalAnd => 2,
        BinaryOp::BitOr => 3,
        BinaryOp::BitXor => 4,
        BinaryOp::BitAnd => 5,
        BinaryOp::Eq | BinaryOp::Ne => 6,
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 7,
        BinaryOp::Shl | BinaryOp::Shr => 8,
        BinaryOp::Add | BinaryOp::Sub => 9,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 10,
    }
}

fn expr_text(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Number(lit) => literal_text(lit),
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, inner) => {
            // Parenthesise non-primary operands both for readability and to avoid
            // token gluing (`& &x` vs `&&x`) when unary operators are nested.
            if matches!(
                inner.as_ref(),
                Expr::Ident(_) | Expr::Number(_) | Expr::Bit(_, _) | Expr::Part(_, _)
            ) {
                format!("{}{}", op.symbol(), expr_text(inner, 11))
            } else {
                format!("{}({})", op.symbol(), expr_text(inner, 0))
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let text = format!(
                "{} {} {}",
                expr_text(lhs, prec),
                op.symbol(),
                expr_text(rhs, prec + 1)
            );
            if prec < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Ternary(cond, a, b) => {
            let text = format!(
                "{} ? {} : {}",
                expr_text(cond, 1),
                expr_text(a, 0),
                expr_text(b, 0)
            );
            if parent_prec > 0 {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Bit(name, idx) => format!("{name}[{}]", expr_text(idx, 0)),
        Expr::Part(name, range) => format!("{name}{range}"),
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| expr_text(p, 0)).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repeat(count, inner) => format!("{{{count}{{{}}}}}", expr_text(inner, 0)),
        Expr::Past(inner, cycles) => {
            if *cycles == 1 {
                format!("$past({})", expr_text(inner, 0))
            } else {
                format!("$past({}, {cycles})", expr_text(inner, 0))
            }
        }
        Expr::Rose(inner) => format!("$rose({})", expr_text(inner, 0)),
        Expr::Fell(inner) => format!("$fell({})", expr_text(inner, 0)),
        Expr::Stable(inner) => format!("$stable({})", expr_text(inner, 0)),
    }
}

fn literal_text(lit: &Literal) -> String {
    match (lit.width, lit.base) {
        (None, _) => format!("{}", lit.value),
        (Some(w), 'b') => format!("{w}'b{:b}", lit.value),
        (Some(w), 'h') => format!("{w}'h{:x}", lit.value),
        (Some(w), 'o') => format!("{w}'o{:o}", lit.value),
        (Some(w), _) => format!("{w}'d{}", lit.value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const SRC: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
    else cnt <= cnt;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high");
endmodule
"#;

    #[test]
    fn roundtrip_is_idempotent() {
        let module = parse_module(SRC).unwrap();
        let once = emit_module(&module);
        let reparsed = parse_module(&once).unwrap();
        let twice = emit_module(&reparsed);
        assert_eq!(once, twice);
    }

    #[test]
    fn one_statement_per_line() {
        let module = parse_module(SRC).unwrap();
        let text = emit_module(&module);
        for line in text.lines() {
            // No line contains two statement terminators outside of strings.
            let without_strings: String = line.split('"').step_by(2).collect();
            assert!(
                without_strings.matches(';').count() <= 1,
                "line has multiple statements: {line}"
            );
        }
    }

    #[test]
    fn emits_else_if_chain() {
        let module = parse_module(SRC).unwrap();
        let text = emit_module(&module);
        assert!(text.contains("else if (valid_in) cnt <= cnt + 2'd1;"));
        assert!(text.contains("if (!rst_n) cnt <= 2'd0;"));
    }

    #[test]
    fn emits_property_and_assertion() {
        let module = parse_module(SRC).unwrap();
        let text = emit_module(&module);
        assert!(text.contains("property valid_out_check;"));
        assert!(text.contains("end_cnt |-> ##1 valid_out == 1;"));
        assert!(text.contains("assert property (valid_out_check) else $error("));
    }

    #[test]
    fn minimal_parentheses_preserve_meaning() {
        let module = parse_module(
            "module m(input a, input b, input c, output x, output y); assign x = a & (b | c); assign y = (a & b) | c; endmodule",
        )
        .unwrap();
        let text = emit_module(&module);
        assert!(text.contains("assign x = a & (b | c);"));
        assert!(text.contains("assign y = a & b | c;"));
        // Re-parse and make sure the structure is preserved.
        let reparsed = parse_module(&text).unwrap();
        assert_eq!(emit_module(&reparsed), text);
    }

    #[test]
    fn literal_forms() {
        assert_eq!(literal_text(&Literal::bin(4, 0b1010)), "4'b1010");
        assert_eq!(literal_text(&Literal::hex(8, 0xff)), "8'hff");
        assert_eq!(literal_text(&Literal::sized(2, 3)), "2'd3");
        assert_eq!(literal_text(&Literal::dec(7)), "7");
    }

    #[test]
    fn emit_stmt_renders_single_line_fix() {
        let module = parse_module(SRC).unwrap();
        let always = module.always_blocks().next().unwrap();
        let mut assigns = Vec::new();
        always.body.walk(&mut |s| {
            if matches!(s, Stmt::NonBlocking { .. }) {
                assigns.push(s.clone());
            }
        });
        assert_eq!(emit_stmt(&assigns[0]), "cnt <= 2'd0;");
    }

    #[test]
    fn case_emission_roundtrips() {
        let src = r#"
module m(input [1:0] sel, input a, input b, output reg y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      default: y = 0;
    endcase
  end
endmodule
"#;
        let module = parse_module(src).unwrap();
        let once = emit_module(&module);
        let again = emit_module(&parse_module(&once).unwrap());
        assert_eq!(once, again);
        assert!(once.contains("case (sel)"));
        assert!(once.contains("default: y = 0;"));
    }
}
