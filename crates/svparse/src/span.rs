//! Source locations.
//!
//! Every AST item carries a [`Span`] recording the 1-based line range it came from.
//! Spans are what connect the model's "buggy line" answers back to the source text.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open region of source text identified by 1-based line numbers.
///
/// Column information is intentionally not tracked: the AssertSolver task is defined
/// at line granularity ("the buggy line snippet and the corresponding correct code").
///
/// # Examples
///
/// ```
/// use svparse::Span;
/// let s = Span::line(3);
/// assert_eq!(s.start_line, 3);
/// assert!(s.contains_line(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// First line covered by the span (1-based).
    pub start_line: u32,
    /// Last line covered by the span (inclusive, 1-based).
    pub end_line: u32,
}

impl Span {
    /// Creates a span covering the inclusive line range `start..=end`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = svparse::Span::new(2, 5);
    /// assert!(s.contains_line(4));
    /// ```
    pub fn new(start_line: u32, end_line: u32) -> Self {
        Self {
            start_line,
            end_line: end_line.max(start_line),
        }
    }

    /// Creates a span covering a single line.
    pub fn line(line: u32) -> Self {
        Self::new(line, line)
    }

    /// A placeholder span for synthesised nodes that have no source location yet.
    pub fn synthetic() -> Self {
        Self::new(0, 0)
    }

    /// Returns `true` if this span was produced by [`Span::synthetic`].
    pub fn is_synthetic(&self) -> bool {
        self.start_line == 0
    }

    /// Returns `true` if the given 1-based line falls inside the span.
    pub fn contains_line(&self, line: u32) -> bool {
        line >= self.start_line && line <= self.end_line
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// Synthetic spans are ignored so that merging with a placeholder does not
    /// accidentally stretch the result down to line zero.
    pub fn merge(&self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return *self;
        }
        Span::new(
            self.start_line.min(other.start_line),
            self.end_line.max(other.end_line),
        )
    }

    /// Number of lines covered (at least 1 for non-synthetic spans).
    pub fn line_count(&self) -> u32 {
        if self.is_synthetic() {
            0
        } else {
            self.end_line - self.start_line + 1
        }
    }
}

impl Default for Span {
    fn default() -> Self {
        Self::synthetic()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start_line == self.end_line {
            write!(f, "line {}", self.start_line)
        } else {
            write!(f, "lines {}-{}", self.start_line, self.end_line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(3, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(3, 9));
    }

    #[test]
    fn merge_ignores_synthetic() {
        let a = Span::new(3, 5);
        assert_eq!(a.merge(Span::synthetic()), a);
        assert_eq!(Span::synthetic().merge(a), a);
    }

    #[test]
    fn display_single_and_range() {
        assert_eq!(Span::line(7).to_string(), "line 7");
        assert_eq!(Span::new(2, 4).to_string(), "lines 2-4");
    }

    #[test]
    fn line_count() {
        assert_eq!(Span::new(2, 4).line_count(), 3);
        assert_eq!(Span::synthetic().line_count(), 0);
    }

    #[test]
    fn end_never_precedes_start() {
        let s = Span::new(9, 3);
        assert_eq!(s.end_line, 9);
    }
}
