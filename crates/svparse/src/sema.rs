//! Lightweight semantic analysis.
//!
//! The checks mirror what the paper uses the Icarus Verilog compiler for: catching
//! undeclared identifiers, multiply-driven registers and malformed assertions before a
//! design is allowed to proceed to simulation/verification.  The module also builds
//! the signal dependency graph used for cone-of-influence reasoning by the mutation
//! classifier and the repair model's feature extractor.

use crate::ast::*;
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Information about one declared signal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalInfo {
    /// Signal name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Net kind (`wire`, `reg`, `integer`).
    pub kind: NetKind,
    /// Port direction if the signal is a port.
    pub dir: Option<PortDir>,
    /// `true` if the signal is driven by an edge-triggered always block.
    pub is_clocked: bool,
}

/// Symbol table for one module.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    signals: BTreeMap<String, SignalInfo>,
    parameters: BTreeMap<String, u64>,
}

impl SymbolTable {
    /// Builds the symbol table for a module.
    pub fn build(module: &Module) -> Self {
        let mut signals = BTreeMap::new();
        let mut parameters = BTreeMap::new();
        for port in &module.ports {
            signals.insert(
                port.name.clone(),
                SignalInfo {
                    name: port.name.clone(),
                    width: port.bit_width(),
                    kind: port.net,
                    dir: Some(port.dir),
                    is_clocked: false,
                },
            );
        }
        for item in &module.items {
            match item {
                Item::Net(decl) => {
                    for name in &decl.names {
                        let width = match decl.kind {
                            NetKind::Integer => 32,
                            _ => decl.width.map_or(1, |r| r.width()),
                        };
                        signals.entry(name.clone()).or_insert(SignalInfo {
                            name: name.clone(),
                            width,
                            kind: decl.kind,
                            dir: None,
                            is_clocked: false,
                        });
                    }
                }
                Item::Param(p) => {
                    let value = const_eval(&p.value).unwrap_or(0);
                    parameters.insert(p.name.clone(), value);
                }
                _ => {}
            }
        }
        // Mark clocked signals.
        for block in module.always_blocks() {
            if block.sensitivity.is_combinational() {
                continue;
            }
            for name in block.body.assigned_signals() {
                if let Some(info) = signals.get_mut(&name) {
                    info.is_clocked = true;
                }
            }
        }
        Self {
            signals,
            parameters,
        }
    }

    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<&SignalInfo> {
        self.signals.get(name)
    }

    /// Looks up a parameter constant by name.
    pub fn parameter(&self, name: &str) -> Option<u64> {
        self.parameters.get(name).copied()
    }

    /// Returns `true` if the name is a declared signal or parameter.
    pub fn is_declared(&self, name: &str) -> bool {
        self.signals.contains_key(name) || self.parameters.contains_key(name)
    }

    /// Iterates over all declared signals.
    pub fn signals(&self) -> impl Iterator<Item = &SignalInfo> {
        self.signals.values()
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Returns `true` when no signals are declared.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }
}

/// A single semantic diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemaError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line the problem refers to.
    pub line: u32,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl std::error::Error for SemaError {}

/// The result of checking one module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SemaReport {
    /// Hard errors: the module would not compile.
    pub errors: Vec<SemaError>,
    /// Soft warnings: suspicious but accepted constructs.
    pub warnings: Vec<SemaError>,
}

impl SemaReport {
    /// Returns `true` when there are no hard errors.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Dependency graph over module signals: edges point from a signal to the signals
/// appearing in expressions that drive it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl DependencyGraph {
    /// Builds the driver-dependency graph for a module.
    pub fn build(module: &Module) -> Self {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut add = |target: &str, sources: Vec<String>| {
            edges.entry(target.to_string()).or_default().extend(sources);
        };
        for assign in module.assigns() {
            for target in assign.lhs.base_names() {
                add(&target, assign.rhs.idents());
            }
        }
        for block in module.always_blocks() {
            collect_stmt_deps(&block.body, &mut Vec::new(), &mut |target, sources| {
                add(target, sources)
            });
        }
        Self { edges }
    }

    /// The direct drivers (fan-in) of a signal.
    pub fn drivers(&self, signal: &str) -> Vec<String> {
        self.edges
            .get(signal)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The transitive fan-in cone of a signal, excluding the signal itself unless it
    /// participates in a feedback loop.
    pub fn cone_of_influence(&self, signal: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<String> = self.drivers(signal).into();
        while let Some(current) = queue.pop_front() {
            if seen.insert(current.clone()) {
                for next in self.drivers(&current) {
                    if !seen.contains(&next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        seen
    }

    /// Distance (in driver hops) from `from` to `to`, or `None` if `to` is not in the
    /// fan-in cone of `from`.
    pub fn distance(&self, from: &str, to: &str) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<(String, u32)> =
            self.drivers(from).into_iter().map(|d| (d, 1)).collect();
        while let Some((current, depth)) = queue.pop_front() {
            if current == to {
                return Some(depth);
            }
            if seen.insert(current.clone()) {
                for next in self.drivers(&current) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        None
    }

    /// All signals that have at least one driver edge.
    pub fn driven_signals(&self) -> Vec<String> {
        self.edges.keys().cloned().collect()
    }
}

fn collect_stmt_deps(
    stmt: &Stmt,
    control_context: &mut Vec<String>,
    add: &mut impl FnMut(&str, Vec<String>),
) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                collect_stmt_deps(s, control_context, add);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let cond_ids = cond.idents();
            control_context.extend(cond_ids.clone());
            collect_stmt_deps(then_branch, control_context, add);
            if let Some(e) = else_branch {
                collect_stmt_deps(e, control_context, add);
            }
            control_context.truncate(control_context.len() - cond_ids.len());
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            let subject_ids = subject.idents();
            control_context.extend(subject_ids.clone());
            for arm in arms {
                collect_stmt_deps(&arm.body, control_context, add);
            }
            if let Some(d) = default {
                collect_stmt_deps(d, control_context, add);
            }
            control_context.truncate(control_context.len() - subject_ids.len());
        }
        Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
            let mut sources = rhs.idents();
            sources.extend(control_context.iter().cloned());
            for target in lhs.base_names() {
                add(&target, sources.clone());
            }
        }
        Stmt::Null => {}
    }
}

/// Evaluates a constant expression, returning `None` if it references signals.
pub fn const_eval(expr: &Expr) -> Option<u64> {
    match expr {
        Expr::Number(lit) => Some(lit.value),
        Expr::Unary(UnaryOp::Neg, inner) => const_eval(inner).map(|v| v.wrapping_neg()),
        Expr::Unary(UnaryOp::BitNot, inner) => const_eval(inner).map(|v| !v),
        Expr::Unary(UnaryOp::LogicalNot, inner) => const_eval(inner).map(|v| u64::from(v == 0)),
        Expr::Binary(op, a, b) => {
            let a = const_eval(a)?;
            let b = const_eval(b)?;
            Some(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => a.checked_div(b).unwrap_or(0),
                BinaryOp::Mod => a.checked_rem(b).unwrap_or(0),
                BinaryOp::Shl => a.wrapping_shl(b as u32),
                BinaryOp::Shr => a.wrapping_shr(b as u32),
                BinaryOp::Lt => u64::from(a < b),
                BinaryOp::Le => u64::from(a <= b),
                BinaryOp::Gt => u64::from(a > b),
                BinaryOp::Ge => u64::from(a >= b),
                BinaryOp::Eq => u64::from(a == b),
                BinaryOp::Ne => u64::from(a != b),
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::LogicalAnd => u64::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => u64::from(a != 0 || b != 0),
            })
        }
        _ => None,
    }
}

/// Runs all semantic checks on a module.
///
/// # Examples
///
/// ```
/// let module = svparse::parse_module(
///     "module m(input a, output b); assign b = a; endmodule",
/// )?;
/// let report = svparse::sema::check_module(&module);
/// assert!(report.is_clean());
/// # Ok::<(), svparse::ParseError>(())
/// ```
pub fn check_module(module: &Module) -> SemaReport {
    let table = SymbolTable::build(module);
    let mut report = SemaReport::default();

    let check_expr = |expr: &Expr, span: Span, report: &mut SemaReport| {
        for name in expr.idents() {
            if !table.is_declared(&name) {
                report.errors.push(SemaError {
                    message: format!("use of undeclared identifier `{name}`"),
                    line: span.start_line,
                });
            }
        }
    };

    let mut driven_by_always: BTreeMap<String, u32> = BTreeMap::new();

    for item in &module.items {
        match item {
            Item::Assign(assign) => {
                check_expr(&assign.rhs, assign.span, &mut report);
                for name in assign.lhs.base_names() {
                    if !table.is_declared(&name) {
                        report.errors.push(SemaError {
                            message: format!("assignment to undeclared signal `{name}`"),
                            line: assign.span.start_line,
                        });
                    } else if let Some(info) = table.signal(&name) {
                        if info.kind == NetKind::Reg && info.dir != Some(PortDir::Input) {
                            report.warnings.push(SemaError {
                                message: format!("continuous assignment drives reg `{name}`"),
                                line: assign.span.start_line,
                            });
                        }
                    }
                }
            }
            Item::Always(block) => {
                if let Sensitivity::Edges(events) = &block.sensitivity {
                    for event in events {
                        if !table.is_declared(&event.signal) {
                            report.errors.push(SemaError {
                                message: format!(
                                    "sensitivity list references undeclared signal `{}`",
                                    event.signal
                                ),
                                line: block.span.start_line,
                            });
                        }
                    }
                }
                block.body.walk(&mut |stmt| match stmt {
                    Stmt::Blocking { lhs, rhs, span } | Stmt::NonBlocking { lhs, rhs, span } => {
                        check_expr(rhs, *span, &mut report);
                        for name in lhs.base_names() {
                            if !table.is_declared(&name) {
                                report.errors.push(SemaError {
                                    message: format!("assignment to undeclared signal `{name}`"),
                                    line: span.start_line,
                                });
                            }
                        }
                    }
                    Stmt::If { cond, span, .. } => check_expr(cond, *span, &mut report),
                    Stmt::Case { subject, span, .. } => check_expr(subject, *span, &mut report),
                    _ => {}
                });
                if !block.sensitivity.is_combinational() {
                    for name in block.body.assigned_signals() {
                        *driven_by_always.entry(name).or_insert(0) += 1;
                    }
                }
            }
            Item::Initial(block) => {
                block.body.walk(&mut |stmt| {
                    if let Stmt::Blocking { rhs, span, .. } | Stmt::NonBlocking { rhs, span, .. } =
                        stmt
                    {
                        check_expr(rhs, *span, &mut report);
                    }
                });
            }
            Item::Property(prop) => {
                for name in prop.body.idents() {
                    if !table.is_declared(&name) {
                        report.errors.push(SemaError {
                            message: format!(
                                "property `{}` references undeclared signal `{name}`",
                                prop.name
                            ),
                            line: prop.span.start_line,
                        });
                    }
                }
                if !table.is_declared(&prop.clock.signal) {
                    report.errors.push(SemaError {
                        message: format!(
                            "property `{}` clocked by undeclared signal `{}`",
                            prop.name, prop.clock.signal
                        ),
                        line: prop.span.start_line,
                    });
                }
            }
            Item::Assertion(assertion) => {
                if let AssertTarget::Named(name) = &assertion.target {
                    if module.property(name).is_none() {
                        report.errors.push(SemaError {
                            message: format!("assertion references unknown property `{name}`"),
                            line: assertion.span.start_line,
                        });
                    }
                }
            }
            Item::Net(_) | Item::Param(_) => {}
        }
    }

    for (name, count) in driven_by_always {
        if count > 1 {
            report.warnings.push(SemaError {
                message: format!("signal `{name}` is driven by {count} clocked always blocks"),
                line: module.span.start_line,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const SRC: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  assert property (valid_out_check);
endmodule
"#;

    #[test]
    fn symbol_table_widths_and_kinds() {
        let m = parse_module(SRC).unwrap();
        let table = SymbolTable::build(&m);
        assert_eq!(table.signal("cnt").unwrap().width, 2);
        assert_eq!(table.signal("cnt").unwrap().kind, NetKind::Reg);
        assert_eq!(table.signal("end_cnt").unwrap().kind, NetKind::Wire);
        assert!(table.signal("valid_out").unwrap().is_clocked);
        assert!(!table.signal("end_cnt").unwrap().is_clocked);
        assert_eq!(table.signal("clk").unwrap().dir, Some(PortDir::Input));
        assert!(table.len() >= 6);
    }

    #[test]
    fn clean_module_passes() {
        let m = parse_module(SRC).unwrap();
        assert!(check_module(&m).is_clean());
    }

    #[test]
    fn undeclared_identifier_is_error() {
        let m =
            parse_module("module m(input a, output b); assign b = a & missing; endmodule").unwrap();
        let report = check_module(&m);
        assert!(!report.is_clean());
        assert!(report.errors[0].message.contains("missing"));
    }

    #[test]
    fn undeclared_property_signal_is_error() {
        let src = r#"
module m(input clk, input a, output reg b);
  always @(posedge clk) b <= a;
  property p;
    @(posedge clk) ghost |-> b;
  endproperty
  assert property (p);
endmodule
"#;
        let m = parse_module(src).unwrap();
        assert!(!check_module(&m).is_clean());
    }

    #[test]
    fn unknown_property_reference_is_error() {
        let src = r#"
module m(input clk, input a, output reg b);
  always @(posedge clk) b <= a;
  assert property (does_not_exist);
endmodule
"#;
        let m = parse_module(src).unwrap();
        assert!(!check_module(&m).is_clean());
    }

    #[test]
    fn dependency_graph_cone() {
        let m = parse_module(SRC).unwrap();
        let graph = DependencyGraph::build(&m);
        let cone = graph.cone_of_influence("valid_out");
        assert!(cone.contains("end_cnt"));
        assert!(cone.contains("cnt"));
        assert!(cone.contains("valid_in"));
        assert!(cone.contains("rst_n"));
        // Direct driver distance.
        assert_eq!(graph.distance("valid_out", "end_cnt"), Some(1));
        assert_eq!(graph.distance("valid_out", "cnt"), Some(2));
        assert_eq!(graph.distance("valid_out", "valid_out"), Some(0));
        assert_eq!(graph.distance("end_cnt", "valid_out"), None);
    }

    #[test]
    fn const_eval_basics() {
        use crate::ast::Expr;
        let e = Expr::binary(BinaryOp::Add, Expr::num(3), Expr::num(4));
        assert_eq!(const_eval(&e), Some(7));
        let c = Expr::binary(BinaryOp::LogicalAnd, Expr::num(1), Expr::num(0));
        assert_eq!(const_eval(&c), Some(0));
        assert_eq!(const_eval(&Expr::ident("x")), None);
        let div0 = Expr::binary(BinaryOp::Div, Expr::num(3), Expr::num(0));
        assert_eq!(const_eval(&div0), Some(0));
    }

    #[test]
    fn multiply_driven_reg_is_warning() {
        let src = r#"
module m(input clk, input a, output reg q);
  always @(posedge clk) q <= a;
  always @(posedge clk) q <= !a;
endmodule
"#;
        let m = parse_module(src).unwrap();
        let report = check_module(&m);
        assert!(report.is_clean());
        assert!(!report.warnings.is_empty());
    }
}
