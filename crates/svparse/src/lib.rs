//! # svparse — Verilog / SystemVerilog-assertion frontend
//!
//! This crate is the reproduction's stand-in for the Icarus Verilog compiler used by
//! the AssertSolver paper (Zhou et al., DAC 2025) as a syntax oracle.  It provides a
//! lexer, recursive-descent parser, abstract syntax tree, canonical pretty-printer and
//! a lightweight semantic checker for the Verilog-2001 subset (plus concurrent
//! SystemVerilog assertions) exercised by the rest of the workspace.
//!
//! The crate is deliberately self-contained: it performs no I/O and has no
//! dependencies beyond `serde` for dataset serialisation.
//!
//! ## Quick example
//!
//! ```
//! # fn main() -> Result<(), svparse::ParseError> {
//! let src = r#"
//! module counter(input clk, input rst_n, output reg [3:0] count);
//!   always @(posedge clk or negedge rst_n) begin
//!     if (!rst_n) count <= 4'd0;
//!     else count <= count + 4'd1;
//!   end
//! endmodule
//! "#;
//! let file = svparse::parse(src)?;
//! assert_eq!(file.modules[0].name, "counter");
//! # Ok(())
//! # }
//! ```
//!
//! The canonical form produced by [`pretty::emit_module`] is the textual substrate on
//! which the bug-injection and repair-model crates operate: one statement per line, so
//! that "buggy line" answers are well defined.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{
    AlwaysBlock, AssertTarget, AssertionItem, BinaryOp, BitRange, CaseArm, ContinuousAssign,
    EdgeEvent, EdgeKind, Expr, InitialBlock, Item, LValue, Literal, Module, NetDecl, NetKind,
    ParamDecl, Port, PortDir, PropExpr, PropertyDecl, Sensitivity, SourceFile, Stmt, UnaryOp,
};
pub use error::ParseError;
pub use lexer::Lexer;
pub use parser::Parser;
pub use pretty::{emit_file, emit_module};
pub use sema::{DependencyGraph, SemaError, SemaReport, SignalInfo, SymbolTable};
pub use span::Span;
pub use token::{Token, TokenKind};

/// Parses a complete source file containing zero or more modules.
///
/// This is the main entry point most callers need; it is equivalent to constructing a
/// [`Parser`] and calling [`Parser::parse_file`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic problem
/// encountered, including the line on which it occurred.
///
/// # Examples
///
/// ```
/// let file = svparse::parse("module m(input a, output b); assign b = a; endmodule")?;
/// assert_eq!(file.modules.len(), 1);
/// # Ok::<(), svparse::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<SourceFile, ParseError> {
    Parser::new(source)?.parse_file()
}

/// Parses a source file expected to contain exactly one module and returns it.
///
/// # Errors
///
/// Returns a [`ParseError`] if the source does not parse or does not contain exactly
/// one module.
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let file = parse(source)?;
    match file.modules.len() {
        1 => Ok(file.modules.into_iter().next().expect("length checked")),
        n => Err(ParseError::new(
            format!("expected exactly one module, found {n}"),
            0,
        )),
    }
}

/// Performs a full "compile check": parse plus semantic analysis.
///
/// This mirrors how Stage 1 of the paper's augmentation pipeline uses Icarus Verilog:
/// a module either compiles (syntax and basic semantics are sound) or it is rejected
/// with a diagnostic that later becomes part of the *Verilog-PT* dataset.
///
/// # Errors
///
/// Returns the parse error or the first semantic error, rendered as a [`ParseError`].
pub fn compile_check(source: &str) -> Result<SemaReport, ParseError> {
    let file = parse(source)?;
    let mut last_report = SemaReport::default();
    for module in &file.modules {
        let report = sema::check_module(module);
        if let Some(err) = report.errors.first() {
            return Err(ParseError::new(err.to_string(), err.line));
        }
        last_report = report;
    }
    Ok(last_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_smoke() {
        let file = parse("module m(input a, output b); assign b = a; endmodule").unwrap();
        assert_eq!(file.modules.len(), 1);
        assert_eq!(file.modules[0].ports.len(), 2);
    }

    #[test]
    fn parse_module_rejects_multiple() {
        let src = "module a(); endmodule\nmodule b(); endmodule";
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn compile_check_rejects_undeclared() {
        let src = "module m(input a, output b); assign b = missing_wire; endmodule";
        assert!(compile_check(src).is_err());
    }
}
