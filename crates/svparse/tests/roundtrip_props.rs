//! Property test: `parse ↔ emit_file` is a structural round trip over 4096 seeded
//! `svgen` modules.
//!
//! Every design family instance — across widths, depths and variants far beyond what
//! the hand-picked corpora exercise — must satisfy:
//!
//! 1. the family source parses ([`svparse::parse`]);
//! 2. the canonical emission ([`svparse::emit_file`]) re-parses;
//! 3. emission is idempotent: `emit(parse(emit(f))) == emit(f)`;
//! 4. the round trip preserves structure (module names, port counts, item counts,
//!    assertion names).
//!
//! This is the in-tree twin of the `svfuzz` roundtrip oracle: any asymmetry the
//! fuzzer mines should be reproducible here by adding its `(family, params, index)`
//! triple, and the printer/parser must be fixed rather than the oracle weakened.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgen::{instantiate, Family, FamilyParams};
use svparse::{emit_file, parse};

/// Deterministic parameter variation: wider than `CorpusGenerator`'s sweep so the
/// property covers corner widths (1-bit data paths, deep pipelines, variant codes).
fn params_for(seed: u64) -> FamilyParams {
    let mut rng = StdRng::seed_from_u64(seed);
    FamilyParams {
        width: rng.gen_range(1..=16u32),
        depth: rng.gen_range(1..=14u32),
        variant: rng.gen_range(0..4u32),
    }
}

#[test]
fn family_sources_roundtrip_4096() {
    let families = Family::all();
    for case in 0..4096u64 {
        let family = families[(case as usize) % families.len()];
        let params = params_for(case);
        let inst = instantiate(family, params, case as usize);
        let file = parse(&inst.source).unwrap_or_else(|e| {
            panic!(
                "case {case} ({family}, {params:?}): family source must parse: {e}\n{}",
                inst.source
            )
        });
        let once = emit_file(&file);
        let refile = parse(&once).unwrap_or_else(|e| {
            panic!("case {case} ({family}, {params:?}): canonical text must re-parse: {e}\n{once}")
        });
        let twice = emit_file(&refile);
        assert_eq!(
            once, twice,
            "case {case} ({family}, {params:?}): emission is not idempotent"
        );

        // Structure is preserved across the trip.
        assert_eq!(file.modules.len(), refile.modules.len(), "case {case}");
        for (a, b) in file.modules.iter().zip(refile.modules.iter()) {
            assert_eq!(a.name, b.name, "case {case}: module name drifted");
            assert_eq!(
                a.ports.len(),
                b.ports.len(),
                "case {case}: port count drifted"
            );
            assert_eq!(
                a.items.len(),
                b.items.len(),
                "case {case}: item count drifted"
            );
            let asserts_a: Vec<String> = a.assertions().map(|x| x.display_name()).collect();
            let asserts_b: Vec<String> = b.assertions().map(|x| x.display_name()).collect();
            assert_eq!(asserts_a, asserts_b, "case {case}: assertions drifted");
        }
    }
}

/// The canonical form of a family source is a fixed point: parsing the emitted text
/// and emitting again changes nothing, even when the *original* family template used
/// a different surface style (extra parentheses, different whitespace).
#[test]
fn canonical_form_is_fixed_point_across_families() {
    for (i, family) in Family::all().iter().enumerate() {
        let inst = instantiate(*family, FamilyParams::default(), i);
        let canonical = emit_file(&parse(&inst.source).expect("family parses"));
        for round in 0..3 {
            let again = emit_file(&parse(&canonical).expect("canonical parses"));
            assert_eq!(canonical, again, "{family}: round {round} not stable");
        }
    }
}
