//! Property-based tests for the frontend: randomly generated ASTs must pretty-print to
//! text that re-parses to the same canonical form (emit ∘ parse is idempotent), and
//! expression emission must preserve structure.

use proptest::prelude::*;
use svparse::{
    emit_module, parse_module, BinaryOp, BitRange, Expr, Item, LValue, Literal, Module, NetDecl,
    NetKind, Port, Span, Stmt, UnaryOp,
};

/// Signal pool used by generated expressions; all are declared in the wrapper module.
const SIGNALS: &[&str] = &["a", "b", "c", "d", "sel"];

fn arb_literal() -> impl Strategy<Value = Expr> {
    (1u32..=8, 0u64..256).prop_map(|(w, v)| {
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        Expr::Number(Literal::sized(w, v & mask))
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(BinaryOp::all().to_vec())
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop::sample::select(vec![
        UnaryOp::LogicalNot,
        UnaryOp::BitNot,
        UnaryOp::RedAnd,
        UnaryOp::RedOr,
        UnaryOp::RedXor,
    ])
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal(),
        prop::sample::select(SIGNALS.to_vec()).prop_map(Expr::ident),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            (arb_unop(), inner.clone()).prop_map(|(op, e)| Expr::unary(op, e)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| Expr::Ternary(Box::new(c), Box::new(a), Box::new(b))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Concat),
        ]
    })
}

/// Wraps an expression into a module that declares every signal in the pool.
fn wrap_module(expr: Expr) -> Module {
    let ports = vec![
        Port::input("a"),
        Port::input("b"),
        Port::input("c"),
        Port::input_vec("d", 7),
        Port::input_vec("sel", 1),
        Port::output_wire_vec("y", 7),
    ];
    let items = vec![Item::Assign(svparse::ContinuousAssign {
        lhs: LValue::Ident("y".into()),
        rhs: expr,
        span: Span::synthetic(),
    })];
    Module::new("prop_m", ports, items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical emission is idempotent: emit(parse(emit(ast))) == emit(ast).
    #[test]
    fn emit_parse_emit_is_idempotent(expr in arb_expr()) {
        let module = wrap_module(expr);
        let once = emit_module(&module);
        let reparsed = parse_module(&once).expect("canonical text must re-parse");
        let twice = emit_module(&reparsed);
        prop_assert_eq!(once, twice);
    }

    /// Every canonical emission parses cleanly and keeps the same declared signals.
    #[test]
    fn canonical_text_reparses(expr in arb_expr()) {
        let module = wrap_module(expr);
        let text = emit_module(&module);
        let reparsed = parse_module(&text).expect("canonical text must re-parse");
        prop_assert_eq!(reparsed.ports.len(), module.ports.len());
        prop_assert_eq!(reparsed.name, module.name);
    }

    /// Identifier collection is stable across the round trip.
    #[test]
    fn idents_preserved(expr in arb_expr()) {
        let before = expr.idents();
        let module = wrap_module(expr);
        let text = emit_module(&module);
        let reparsed = parse_module(&text).unwrap();
        let after = reparsed.assigns().next().unwrap().rhs.idents();
        prop_assert_eq!(before, after);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomly generated procedural statements survive the round trip.
    #[test]
    fn statements_roundtrip(conds in prop::collection::vec(arb_expr(), 1..4)) {
        let mut stmts = Vec::new();
        for (i, cond) in conds.into_iter().enumerate() {
            let target = if i % 2 == 0 { "q" } else { "r" };
            stmts.push(Stmt::If {
                cond,
                then_branch: Box::new(Stmt::NonBlocking {
                    lhs: LValue::Ident(target.into()),
                    rhs: Expr::ident("a"),
                    span: Span::synthetic(),
                }),
                else_branch: Some(Box::new(Stmt::NonBlocking {
                    lhs: LValue::Ident(target.into()),
                    rhs: Expr::sized(1, 0),
                    span: Span::synthetic(),
                })),
                span: Span::synthetic(),
            });
        }
        let ports = vec![
            Port::input("clk"),
            Port::input("a"),
            Port::input("b"),
            Port::input("c"),
            Port::input_vec("d", 7),
            Port::input_vec("sel", 1),
            Port::output_reg("q"),
            Port::output_reg("r"),
        ];
        let items = vec![Item::Always(svparse::AlwaysBlock {
            sensitivity: svparse::Sensitivity::Edges(vec![svparse::EdgeEvent::posedge("clk")]),
            body: Stmt::Block { stmts, span: Span::synthetic() },
            span: Span::synthetic(),
        })];
        let module = Module::new("prop_stmt", ports, items);
        let once = emit_module(&module);
        let reparsed = parse_module(&once).expect("canonical text must re-parse");
        prop_assert_eq!(emit_module(&reparsed), once);
    }
}

#[test]
fn net_decl_roundtrip() {
    let module = Module::new(
        "decls",
        vec![Port::input("a"), Port::output_wire("y")],
        vec![
            Item::Net(NetDecl {
                kind: NetKind::Reg,
                width: Some(BitRange::new(15, 0)),
                names: vec!["x0".into(), "x1".into()],
                span: Span::synthetic(),
            }),
            Item::Assign(svparse::ContinuousAssign {
                lhs: LValue::Ident("y".into()),
                rhs: Expr::ident("a"),
                span: Span::synthetic(),
            }),
        ],
    );
    let once = emit_module(&module);
    let reparsed = parse_module(&once).unwrap();
    assert_eq!(emit_module(&reparsed), once);
    assert!(once.contains("reg [15:0] x0, x1;"));
}
