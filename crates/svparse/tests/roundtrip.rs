//! Randomised round-trip tests for the frontend: randomly generated ASTs must
//! pretty-print to text that re-parses to the same canonical form (emit ∘ parse is
//! idempotent), and expression emission must preserve structure.
//!
//! Originally written against `proptest`; the workspace now vendors a minimal `rand`
//! stand-in instead, so the strategies are hand-rolled seeded generators.  Every case
//! is deterministic per seed, and failures print the offending seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use svparse::{
    emit_module, parse_module, BinaryOp, BitRange, Expr, Item, LValue, Literal, Module, NetDecl,
    NetKind, Port, Span, Stmt, UnaryOp,
};

/// Signal pool used by generated expressions; all are declared in the wrapper module.
const SIGNALS: &[&str] = &["a", "b", "c", "d", "sel"];

fn arb_literal(rng: &mut StdRng) -> Expr {
    let width = rng.gen_range(1..=8u32);
    let value = rng.gen_range(0..256u64);
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    Expr::Number(Literal::sized(width, value & mask))
}

fn arb_unop(rng: &mut StdRng) -> UnaryOp {
    *[
        UnaryOp::LogicalNot,
        UnaryOp::BitNot,
        UnaryOp::RedAnd,
        UnaryOp::RedOr,
        UnaryOp::RedXor,
    ]
    .choose(rng)
    .expect("non-empty op pool")
}

/// Recursive expression generator mirroring the old proptest strategy: leaves are
/// literals or identifiers; inner nodes are binary/unary/ternary/concat.
fn arb_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            arb_literal(rng)
        } else {
            Expr::ident(*SIGNALS.choose(rng).expect("non-empty signal pool"))
        };
    }
    match rng.gen_range(0..4u8) {
        0 => {
            let op = *BinaryOp::all().choose(rng).expect("non-empty binop pool");
            let lhs = arb_expr(rng, depth - 1);
            let rhs = arb_expr(rng, depth - 1);
            Expr::binary(op, lhs, rhs)
        }
        1 => {
            let op = arb_unop(rng);
            Expr::unary(op, arb_expr(rng, depth - 1))
        }
        2 => Expr::Ternary(
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        ),
        _ => {
            let arity = rng.gen_range(2..4usize);
            Expr::Concat((0..arity).map(|_| arb_expr(rng, depth - 1)).collect())
        }
    }
}

/// Wraps an expression into a module that declares every signal in the pool.
fn wrap_module(expr: Expr) -> Module {
    let ports = vec![
        Port::input("a"),
        Port::input("b"),
        Port::input("c"),
        Port::input_vec("d", 7),
        Port::input_vec("sel", 1),
        Port::output_wire_vec("y", 7),
    ];
    let items = vec![Item::Assign(svparse::ContinuousAssign {
        lhs: LValue::Ident("y".into()),
        rhs: expr,
        span: Span::synthetic(),
    })];
    Module::new("prop_m", ports, items)
}

/// Canonical emission is idempotent: emit(parse(emit(ast))) == emit(ast).
#[test]
fn emit_parse_emit_is_idempotent() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let module = wrap_module(arb_expr(&mut rng, 4));
        let once = emit_module(&module);
        let reparsed = parse_module(&once)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical text must re-parse: {e:?}"));
        let twice = emit_module(&reparsed);
        assert_eq!(once, twice, "seed {seed}: emission not idempotent");
    }
}

/// Every canonical emission parses cleanly and keeps the same declared signals.
#[test]
fn canonical_text_reparses() {
    for seed in 1000..1128u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let module = wrap_module(arb_expr(&mut rng, 4));
        let text = emit_module(&module);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical text must re-parse: {e:?}"));
        assert_eq!(reparsed.ports.len(), module.ports.len(), "seed {seed}");
        assert_eq!(reparsed.name, module.name, "seed {seed}");
    }
}

/// Identifier collection is stable across the round trip.
#[test]
fn idents_preserved() {
    for seed in 2000..2128u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let expr = arb_expr(&mut rng, 4);
        let before = expr.idents();
        let module = wrap_module(expr);
        let text = emit_module(&module);
        let reparsed = parse_module(&text).unwrap();
        let after = reparsed
            .assigns()
            .next()
            .expect("wrapper module has one assign")
            .rhs
            .idents();
        assert_eq!(before, after, "seed {seed}");
    }
}

/// Randomly generated procedural statements survive the round trip.
#[test]
fn statements_roundtrip() {
    for seed in 3000..3064u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let conds: Vec<Expr> = (0..rng.gen_range(1..4usize))
            .map(|_| arb_expr(&mut rng, 4))
            .collect();
        let mut stmts = Vec::new();
        for (i, cond) in conds.into_iter().enumerate() {
            let target = if i % 2 == 0 { "q" } else { "r" };
            stmts.push(Stmt::If {
                cond,
                then_branch: Box::new(Stmt::NonBlocking {
                    lhs: LValue::Ident(target.into()),
                    rhs: Expr::ident("a"),
                    span: Span::synthetic(),
                }),
                else_branch: Some(Box::new(Stmt::NonBlocking {
                    lhs: LValue::Ident(target.into()),
                    rhs: Expr::sized(1, 0),
                    span: Span::synthetic(),
                })),
                span: Span::synthetic(),
            });
        }
        let ports = vec![
            Port::input("clk"),
            Port::input("a"),
            Port::input("b"),
            Port::input("c"),
            Port::input_vec("d", 7),
            Port::input_vec("sel", 1),
            Port::output_reg("q"),
            Port::output_reg("r"),
        ];
        let items = vec![Item::Always(svparse::AlwaysBlock {
            sensitivity: svparse::Sensitivity::Edges(vec![svparse::EdgeEvent::posedge("clk")]),
            body: Stmt::Block {
                stmts,
                span: Span::synthetic(),
            },
            span: Span::synthetic(),
        })];
        let module = Module::new("prop_stmt", ports, items);
        let once = emit_module(&module);
        let reparsed = parse_module(&once)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical text must re-parse: {e:?}"));
        assert_eq!(emit_module(&reparsed), once, "seed {seed}");
    }
}

#[test]
fn net_decl_roundtrip() {
    let module = Module::new(
        "decls",
        vec![Port::input("a"), Port::output_wire("y")],
        vec![
            Item::Net(NetDecl {
                kind: NetKind::Reg,
                width: Some(BitRange::new(15, 0)),
                names: vec!["x0".into(), "x1".into()],
                span: Span::synthetic(),
            }),
            Item::Assign(svparse::ContinuousAssign {
                lhs: LValue::Ident("y".into()),
                rhs: Expr::ident("a"),
                span: Span::synthetic(),
            }),
        ],
    );
    let once = emit_module(&module);
    let reparsed = parse_module(&once).unwrap();
    assert_eq!(emit_module(&reparsed), once);
    assert!(once.contains("reg [15:0] x0, x1;"));
}
