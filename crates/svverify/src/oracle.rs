//! High-level yes/no oracles used by the data-augmentation pipeline.
//!
//! Stage 2 of the paper uses its EDA tools to answer three questions:
//!
//! 1. is a generated SVA *valid* on the golden design (it never fires)?
//! 2. does an injected bug *trigger* an assertion failure?
//! 3. does a candidate fix actually *solve* the failure?
//!
//! This module packages the [`crate::bmc::BoundedChecker`] into those three oracles,
//! plus a bounded input/output equivalence check used by tests and ablations.

use crate::bmc::{BoundedChecker, CheckConfig, Verdict};
use crate::stimulus;
use serde::{Deserialize, Serialize};
use svparse::Module;
use svsim::{Design, Simulator};

/// Outcome of validating a golden design against its assertions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SvaValidity {
    /// The assertions hold within the bound (and at least one antecedent triggered).
    Valid,
    /// The assertions fail on the golden design — the SVA itself is wrong.
    InvalidOnGolden,
    /// The design could not be checked.
    Unverifiable(String),
}

/// The oracle façade.
#[derive(Debug, Clone, Default)]
pub struct VerifyOracle {
    checker: BoundedChecker,
}

impl VerifyOracle {
    /// Creates an oracle with the given bounded-check configuration.
    pub fn new(config: CheckConfig) -> Self {
        Self {
            checker: BoundedChecker::new(config),
        }
    }

    /// Access to the underlying bounded checker.
    pub fn checker(&self) -> &BoundedChecker {
        &self.checker
    }

    /// Question 1: are the design's assertions valid on the (golden) module?
    pub fn sva_valid_on_golden(&self, golden: &Module) -> SvaValidity {
        match self.checker.check_module(golden) {
            Verdict::Pass { .. } => SvaValidity::Valid,
            Verdict::Fail { .. } => SvaValidity::InvalidOnGolden,
            Verdict::Unverifiable { reason } => SvaValidity::Unverifiable(reason),
        }
    }

    /// Question 2: does the buggy module trigger at least one assertion failure?
    ///
    /// Returns the failing verdict (with witness) on success, `None` when the bug does
    /// not cause any failure within the bound, and an error string when the buggy
    /// module cannot be simulated at all (e.g. the mutation introduced a combinational
    /// loop).
    pub fn bug_triggers_failure(&self, buggy: &Module) -> Result<Option<Verdict>, String> {
        match self.checker.check_module(buggy) {
            Verdict::Unverifiable { reason } => Err(reason),
            verdict @ Verdict::Fail { .. } => Ok(Some(verdict)),
            Verdict::Pass { .. } => Ok(None),
        }
    }

    /// Question 3: does a candidate repair solve the assertion failure?
    ///
    /// A repair is accepted when the repaired module's assertions pass within the
    /// bound.  This is the acceptance criterion the pass@k evaluation uses ("deeming
    /// `c` of them effective if they successfully solve the assertion failure").
    pub fn repair_solves_failure(&self, repaired: &Module) -> bool {
        self.checker.check_module(repaired).passed()
    }

    /// Bounded input/output equivalence of two modules over shared outputs.
    ///
    /// Both modules are driven with the same randomised stimulus (derived from the
    /// first module's interface) and their output traces are compared cycle by cycle.
    pub fn outputs_equivalent(
        &self,
        reference: &Module,
        candidate: &Module,
        sequences: usize,
        seed: u64,
    ) -> Result<bool, String> {
        let ref_design = Design::elaborate(reference).map_err(|e| e.to_string())?;
        let cand_design = Design::elaborate(candidate).map_err(|e| e.to_string())?;
        let depth = self.checker.config().depth;
        let stimuli = stimulus::random_stimuli(&ref_design, depth, sequences, seed);
        for stim in &stimuli {
            let ref_trace = Simulator::run(&ref_design, stim).map_err(|e| e.to_string())?;
            let cand_trace = Simulator::run(&cand_design, stim).map_err(|e| e.to_string())?;
            for cycle in 0..ref_trace.len() {
                for output in &ref_design.outputs {
                    let a = ref_trace.value(output, cycle);
                    let b = cand_trace.value(output, cycle);
                    if a.map(|v| v.bits()) != b.map(|v| v.bits()) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;

    const GOLDEN: &str = r#"
module gray(input clk, input rst_n, input en, output reg [2:0] code);
  reg [2:0] bin;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) bin <= 3'd0;
    else if (en) bin <= bin + 3'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) code <= 3'd0;
    else code <= (bin >> 1) ^ bin;
  end
  property code_follows_bin;
    @(posedge clk) disable iff (!rst_n) 1 |=> code == (($past(bin) >> 1) ^ $past(bin));
  endproperty
  assert property (code_follows_bin);
endmodule
"#;

    #[test]
    fn golden_sva_is_valid() {
        let golden = parse_module(GOLDEN).unwrap();
        let oracle = VerifyOracle::default();
        assert_eq!(oracle.sva_valid_on_golden(&golden), SvaValidity::Valid);
    }

    #[test]
    fn injected_bug_triggers_failure_and_fix_solves_it() {
        let golden = parse_module(GOLDEN).unwrap();
        let buggy_src = GOLDEN.replace("code <= (bin >> 1) ^ bin;", "code <= (bin >> 1) & bin;");
        let buggy = parse_module(&buggy_src).unwrap();
        let oracle = VerifyOracle::default();

        let verdict = oracle.bug_triggers_failure(&buggy).unwrap();
        assert!(verdict.is_some(), "operator bug must trigger the assertion");

        // Repairing back to the golden text solves the failure.
        assert!(oracle.repair_solves_failure(&golden));
        // Leaving the bug in does not.
        assert!(!oracle.repair_solves_failure(&buggy));
    }

    #[test]
    fn wrong_sva_is_invalid_on_golden() {
        let wrong = GOLDEN.replace(
            "1 |=> code == (($past(bin) >> 1) ^ $past(bin));",
            "1 |=> code == ($past(bin) + 3'd1);",
        );
        let module = parse_module(&wrong).unwrap();
        let oracle = VerifyOracle::default();
        assert_eq!(
            oracle.sva_valid_on_golden(&module),
            SvaValidity::InvalidOnGolden
        );
    }

    #[test]
    fn equivalence_check_distinguishes_designs() {
        let golden = parse_module(GOLDEN).unwrap();
        let same = parse_module(GOLDEN).unwrap();
        let buggy =
            parse_module(&GOLDEN.replace("code <= (bin >> 1) ^ bin;", "code <= (bin >> 1) | bin;"))
                .unwrap();
        let oracle = VerifyOracle::default();
        assert!(oracle.outputs_equivalent(&golden, &same, 8, 7).unwrap());
        assert!(!oracle.outputs_equivalent(&golden, &buggy, 8, 7).unwrap());
    }

    #[test]
    fn unsimulatable_bug_reports_error() {
        let looped = r#"
module loopy(input clk, input a, output y);
  assign y = !y;
  property p;
    @(posedge clk) a |-> y;
  endproperty
  assert property (p);
endmodule
"#;
        let module = parse_module(looped).unwrap();
        let oracle = VerifyOracle::default();
        assert!(oracle.bug_triggers_failure(&module).is_err());
    }
}
