//! # svverify — bounded formal checking of concurrent assertions
//!
//! The AssertSolver paper validates every generated SVA and every injected bug with
//! the SymbiYosys formal verifier.  This crate is the reproduction's stand-in: a
//! bounded checker that exhaustively enumerates input sequences for small designs and
//! falls back to seeded randomised sweeps for larger ones, plus the three yes/no
//! oracles the data pipeline needs (SVA validity, bug-triggers-failure, and
//! repair-solves-failure).
//!
//! ## Quick example
//!
//! ```
//! let module = svparse::parse_module(r#"
//! module latch(input clk, input rst_n, input d, output reg q);
//!   always @(posedge clk or negedge rst_n) begin
//!     if (!rst_n) q <= 0;
//!     else q <= d;
//!   end
//!   property follows;
//!     @(posedge clk) disable iff (!rst_n) d |=> q;
//!   endproperty
//!   assert property (follows);
//! endmodule
//! "#).map_err(|e| e.to_string())?;
//! let verdict = svverify::BoundedChecker::default().check_module(&module);
//! assert!(verdict.passed());
//! # Ok::<(), String>(())
//! ```

pub mod bmc;
pub mod oracle;
pub mod stimulus;

pub use bmc::{BoundedChecker, CheckConfig, CheckMethod, Verdict};
pub use oracle::{SvaValidity, VerifyOracle};
pub use stimulus::{
    driven_inputs, exhaustive_is_tractable, exhaustive_stimuli, input_bits, random_stimuli,
    reset_then_constant, DrivenInput,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::BoundedChecker>();
        assert_send_sync::<super::Verdict>();
        assert_send_sync::<super::VerifyOracle>();
    }
}
