//! Bounded checking of concurrent assertions.
//!
//! [`BoundedChecker`] plays the role SymbiYosys plays in the paper's pipeline: it
//! answers, for a bounded depth, whether a design's assertions can be violated.  Small
//! designs are checked exhaustively over every input sequence; larger ones fall back
//! to a seeded randomised sweep (documented as a substitution in DESIGN.md).

use crate::stimulus;
use serde::{Deserialize, Serialize};
use svparse::Module;
use svsim::{check_assertions, AssertionFailure, Design, InputVector, SimError, Simulator};

/// Configuration of a bounded check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckConfig {
    /// Number of clock cycles to unroll.
    pub depth: usize,
    /// Maximum total decision bits for which exhaustive enumeration is attempted.
    pub max_exhaustive_bits: u32,
    /// Number of random sequences used when exhaustive enumeration is intractable.
    pub random_cases: usize,
    /// Seed for the randomised sweep.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            depth: 16,
            max_exhaustive_bits: 14,
            random_cases: 48,
            seed: 0xA55E_7501,
        }
    }
}

impl CheckConfig {
    /// A configuration with a specific unrolling depth and otherwise default limits.
    pub fn with_depth(depth: usize) -> Self {
        Self {
            depth,
            ..Self::default()
        }
    }

    /// Stable little-endian byte encoding of every field.
    ///
    /// Used as the configuration component of content-addressed verdict-cache keys
    /// (`svserve::verdict_key`): two checks share a cached verdict only when every
    /// parameter that could change the verdict is identical.
    pub fn fingerprint(&self) -> [u8; 28] {
        let mut bytes = [0u8; 28];
        bytes[..8].copy_from_slice(&(self.depth as u64).to_le_bytes());
        bytes[8..12].copy_from_slice(&self.max_exhaustive_bits.to_le_bytes());
        bytes[12..20].copy_from_slice(&(self.random_cases as u64).to_le_bytes());
        bytes[20..28].copy_from_slice(&self.seed.to_le_bytes());
        bytes
    }
}

/// How the verdict of a bounded check was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckMethod {
    /// Every input sequence up to the depth was simulated.
    Exhaustive,
    /// A randomised subset of sequences was simulated.
    Randomised,
}

/// Verdict of a bounded assertion check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// No assertion failure was found within the bound.
    Pass {
        /// Whether the search was exhaustive or randomised.
        method: CheckMethod,
        /// Number of sequences simulated.
        sequences: usize,
    },
    /// At least one assertion failed; the witness stimulus and failures are returned.
    Fail {
        /// Whether the search was exhaustive or randomised.
        method: CheckMethod,
        /// The first counterexample stimulus found.
        witness: Vec<InputVector>,
        /// The assertion failures observed on the witness.
        failures: Vec<AssertionFailure>,
    },
    /// The design could not be simulated (elaboration error or combinational loop).
    Unverifiable {
        /// Description of the problem.
        reason: String,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass { .. })
    }

    /// Returns `true` for [`Verdict::Fail`].
    pub fn failed(&self) -> bool {
        matches!(self, Verdict::Fail { .. })
    }

    /// The failures of a failing verdict (empty otherwise).
    pub fn failures(&self) -> &[AssertionFailure] {
        match self {
            Verdict::Fail { failures, .. } => failures,
            _ => &[],
        }
    }
}

/// Bounded assertion checker.
#[derive(Debug, Clone, Default)]
pub struct BoundedChecker {
    config: CheckConfig,
}

impl BoundedChecker {
    /// Creates a checker with the given configuration.
    pub fn new(config: CheckConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    /// Checks every assertion of a module within the bound.
    ///
    /// Designs without assertions trivially pass (zero sequences are simulated).
    pub fn check_module(&self, module: &Module) -> Verdict {
        let design = match Design::elaborate(module) {
            Ok(d) => d,
            Err(e) => {
                return Verdict::Unverifiable {
                    reason: e.to_string(),
                }
            }
        };
        self.check_design(&design)
    }

    /// Checks every assertion of an elaborated design within the bound.
    pub fn check_design(&self, design: &Design) -> Verdict {
        if !design.has_assertions() {
            return Verdict::Pass {
                method: CheckMethod::Exhaustive,
                sequences: 0,
            };
        }
        // Make sure the unrolling is deep enough for the longest look-ahead.
        let depth = self
            .config
            .depth
            .max(design.max_property_horizon() as usize + 4);

        let (method, stimuli) =
            if stimulus::exhaustive_is_tractable(design, depth, self.config.max_exhaustive_bits) {
                (
                    CheckMethod::Exhaustive,
                    stimulus::exhaustive_stimuli(design, depth),
                )
            } else {
                (
                    CheckMethod::Randomised,
                    stimulus::random_stimuli(
                        design,
                        depth,
                        self.config.random_cases,
                        self.config.seed,
                    ),
                )
            };

        let mut simulated = 0usize;
        for stim in &stimuli {
            match Simulator::run(design, stim) {
                Ok(trace) => {
                    simulated += 1;
                    let failures = check_assertions(design, &trace);
                    if !failures.is_empty() {
                        return Verdict::Fail {
                            method,
                            witness: stim.clone(),
                            failures,
                        };
                    }
                }
                Err(SimError::CombinationalLoop { module }) => {
                    return Verdict::Unverifiable {
                        reason: format!("combinational loop in module `{module}`"),
                    }
                }
                Err(other) => {
                    return Verdict::Unverifiable {
                        reason: other.to_string(),
                    }
                }
            }
        }
        Verdict::Pass {
            method,
            sequences: simulated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;

    const GOLDEN: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  assert property (valid_out_check);
endmodule
"#;

    fn buggy() -> String {
        GOLDEN.replace(
            "else if (end_cnt) valid_out <= 1;",
            "else if (!end_cnt) valid_out <= 1;",
        )
    }

    #[test]
    fn golden_design_passes_bounded_check() {
        let module = parse_module(GOLDEN).unwrap();
        let verdict = BoundedChecker::default().check_module(&module);
        assert!(verdict.passed(), "unexpected verdict: {verdict:?}");
    }

    #[test]
    fn buggy_design_fails_with_witness() {
        let module = parse_module(&buggy()).unwrap();
        let verdict = BoundedChecker::default().check_module(&module);
        match verdict {
            Verdict::Fail {
                witness, failures, ..
            } => {
                assert!(!witness.is_empty());
                assert!(!failures.is_empty());
                assert_eq!(failures[0].assertion, "valid_out_check");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn design_without_assertions_trivially_passes() {
        let module = parse_module(
            "module m(input clk, input a, output reg q);\n  always @(posedge clk) q <= a;\nendmodule",
        )
        .unwrap();
        let verdict = BoundedChecker::default().check_module(&module);
        assert_eq!(
            verdict,
            Verdict::Pass {
                method: CheckMethod::Exhaustive,
                sequences: 0
            }
        );
    }

    #[test]
    fn combinational_loop_is_unverifiable() {
        let module = parse_module(
            r#"
module loopy(input clk, input a, output y);
  assign y = !y;
  property p;
    @(posedge clk) a |-> y;
  endproperty
  assert property (p);
endmodule
"#,
        )
        .unwrap();
        let verdict = BoundedChecker::default().check_module(&module);
        assert!(matches!(verdict, Verdict::Unverifiable { .. }));
    }

    #[test]
    fn wide_design_uses_randomised_method() {
        let module = parse_module(
            r#"
module wide(input clk, input rst_n, input [31:0] a, input [31:0] b, output reg [31:0] sum);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) sum <= 32'd0;
    else sum <= a + b;
  end
  property sum_matches;
    @(posedge clk) disable iff (!rst_n) 1 |=> sum == $past(a) + $past(b);
  endproperty
  assert property (sum_matches);
endmodule
"#,
        )
        .unwrap();
        let verdict = BoundedChecker::default().check_module(&module);
        match verdict {
            Verdict::Pass { method, sequences } => {
                assert_eq!(method, CheckMethod::Randomised);
                assert!(sequences > 0);
            }
            other => panic!("expected randomised pass, got {other:?}"),
        }
    }

    #[test]
    fn verdict_helpers() {
        let pass = Verdict::Pass {
            method: CheckMethod::Exhaustive,
            sequences: 3,
        };
        assert!(pass.passed());
        assert!(!pass.failed());
        assert!(pass.failures().is_empty());
    }

    #[test]
    fn fingerprint_covers_every_field() {
        let base = CheckConfig::default();
        assert_eq!(base.fingerprint(), CheckConfig::default().fingerprint());
        let variants = [
            CheckConfig {
                depth: base.depth + 1,
                ..base.clone()
            },
            CheckConfig {
                max_exhaustive_bits: base.max_exhaustive_bits + 1,
                ..base.clone()
            },
            CheckConfig {
                random_cases: base.random_cases + 1,
                ..base.clone()
            },
            CheckConfig {
                seed: base.seed + 1,
                ..base.clone()
            },
        ];
        for variant in variants {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "every CheckConfig field must change the fingerprint"
            );
        }
    }
}
