//! Stimulus generation for bounded checking.
//!
//! Two strategies are provided:
//!
//! * **exhaustive** — enumerate every input sequence up to a depth, used when the
//!   total number of driven input bits is small enough;
//! * **randomised** — seeded random sequences with a directed reset prefix, used for
//!   wider designs.
//!
//! Every sequence starts with the asynchronous reset (if any) asserted for one cycle
//! and released afterwards, which is how the paper's SymbiYosys flow constrains its
//! checks (reset assumptions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use svsim::{Design, InputVector};

/// Description of one primary input to drive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrivenInput {
    /// Signal name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// Collects the inputs of a design that the stimulus generator must drive, excluding
/// the clock (implicit) but including the reset.
pub fn driven_inputs(design: &Design) -> Vec<DrivenInput> {
    design
        .inputs
        .iter()
        .map(|name| DrivenInput {
            name: name.clone(),
            width: design.width(name),
        })
        .collect()
}

/// Total number of input bits driven per cycle.
pub fn input_bits(design: &Design) -> u32 {
    driven_inputs(design).iter().map(|i| i.width).sum()
}

/// Returns `true` if exhaustive enumeration up to `depth` cycles is tractable.
///
/// The limit is expressed in total decision bits (`input bits × depth`, with the reset
/// held by the directed prefix and therefore excluded from the budget).
pub fn exhaustive_is_tractable(design: &Design, depth: usize, max_bits: u32) -> bool {
    let reset_bits = u32::from(design.reset_n.is_some());
    let free_bits = input_bits(design).saturating_sub(reset_bits);
    (free_bits as u64) * (depth as u64) <= u64::from(max_bits)
}

/// Generates every input sequence of length `depth` over the non-reset inputs, with
/// the reset held low on cycle 0 and high afterwards.
///
/// # Panics
///
/// Panics if the enumeration would exceed 2^24 sequences; callers are expected to
/// check [`exhaustive_is_tractable`] first.
pub fn exhaustive_stimuli(design: &Design, depth: usize) -> Vec<Vec<InputVector>> {
    let inputs = driven_inputs(design);
    let reset = design.reset_n.clone();
    let free: Vec<&DrivenInput> = inputs
        .iter()
        .filter(|i| Some(&i.name) != reset.as_ref())
        .collect();
    let bits_per_cycle: u32 = free.iter().map(|i| i.width).sum();
    let total_bits = bits_per_cycle as u64 * depth as u64;
    assert!(
        total_bits <= 24,
        "exhaustive enumeration over {total_bits} bits is intractable"
    );
    let count = 1u64 << total_bits;
    let mut sequences = Vec::with_capacity(count as usize);
    for encoding in 0..count {
        let mut sequence = Vec::with_capacity(depth);
        let mut cursor = 0u32;
        for cycle in 0..depth {
            let mut vector = InputVector::new();
            if let Some(rst) = &reset {
                vector.insert(rst.clone(), u64::from(cycle > 0));
            }
            for input in &free {
                let field = (encoding >> cursor) & mask_bits(input.width);
                vector.insert(input.name.clone(), field);
                cursor += input.width;
            }
            sequence.push(vector);
        }
        sequences.push(sequence);
    }
    sequences
}

fn mask_bits(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Generates `count` seeded random sequences of length `depth`.
///
/// Sequence 0 is fully directed: reset on cycle 0, all other inputs exercised with a
/// walking pattern, which catches the common "never triggered the antecedent" issue
/// cheaply.  The remaining sequences are uniformly random with the reset released
/// after cycle 0 (one in eight sequences also pulses reset mid-run to exercise the
/// `disable iff` paths).
pub fn random_stimuli(
    design: &Design,
    depth: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<InputVector>> {
    let inputs = driven_inputs(design);
    let reset = design.reset_n.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(count);
    for case in 0..count {
        let mut sequence = Vec::with_capacity(depth);
        let pulse_reset_mid = case % 8 == 7 && depth > 4;
        for cycle in 0..depth {
            let mut vector = InputVector::new();
            if let Some(rst) = &reset {
                let mid_pulse = pulse_reset_mid && cycle == depth / 2;
                vector.insert(rst.clone(), u64::from(cycle > 0 && !mid_pulse));
            }
            for input in inputs.iter().filter(|i| Some(&i.name) != reset.as_ref()) {
                let value = if case == 0 {
                    // Directed pattern: walk ones / saturate small signals.
                    match input.width {
                        1 => u64::from(cycle % 2 == 1 || cycle % 3 == 1),
                        w => ((cycle as u64) + 1).wrapping_mul(3) & mask_bits(w),
                    }
                } else {
                    rng.gen::<u64>() & mask_bits(input.width)
                };
                vector.insert(input.name.clone(), value);
            }
            sequence.push(vector);
        }
        sequences.push(sequence);
    }
    sequences
}

/// A reset-then-constant stimulus useful for smoke tests and examples.
pub fn reset_then_constant(
    design: &Design,
    depth: usize,
    constants: &BTreeMap<String, u64>,
) -> Vec<InputVector> {
    let inputs = driven_inputs(design);
    let reset = design.reset_n.clone();
    (0..depth)
        .map(|cycle| {
            let mut vector = InputVector::new();
            if let Some(rst) = &reset {
                vector.insert(rst.clone(), u64::from(cycle > 0));
            }
            for input in inputs.iter().filter(|i| Some(&i.name) != reset.as_ref()) {
                let value = constants.get(&input.name).copied().unwrap_or(1);
                vector.insert(input.name.clone(), value & mask_bits(input.width));
            }
            vector
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;
    use svsim::Design;

    const SRC: &str = r#"
module dut(input clk, input rst_n, input en, input [1:0] mode, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else if (en) q <= q + {2'd0, mode};
  end
endmodule
"#;

    fn design() -> Design {
        Design::elaborate(&parse_module(SRC).unwrap()).unwrap()
    }

    #[test]
    fn driven_inputs_exclude_clock() {
        let d = design();
        let names: Vec<String> = driven_inputs(&d).into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["rst_n", "en", "mode"]);
        assert_eq!(input_bits(&d), 4);
    }

    #[test]
    fn tractability_check() {
        let d = design();
        assert!(exhaustive_is_tractable(&d, 4, 16));
        assert!(!exhaustive_is_tractable(&d, 10, 16));
    }

    #[test]
    fn exhaustive_covers_all_sequences() {
        let d = design();
        let seqs = exhaustive_stimuli(&d, 2);
        // 3 free bits per cycle × 2 cycles = 64 sequences.
        assert_eq!(seqs.len(), 64);
        for seq in &seqs {
            assert_eq!(seq.len(), 2);
            assert_eq!(seq[0].get("rst_n"), Some(&0));
            assert_eq!(seq[1].get("rst_n"), Some(&1));
        }
        // All distinct.
        let mut rendered: Vec<String> = seqs.iter().map(|s| format!("{s:?}")).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), 64);
    }

    #[test]
    fn random_stimuli_are_deterministic_per_seed() {
        let d = design();
        let a = random_stimuli(&d, 8, 16, 42);
        let b = random_stimuli(&d, 8, 16, 42);
        let c = random_stimuli(&d, 8, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|s| s.len() == 8));
    }

    #[test]
    fn random_stimuli_respect_widths() {
        let d = design();
        for seq in random_stimuli(&d, 8, 8, 1) {
            for vector in seq {
                assert!(vector.get("mode").copied().unwrap_or(0) <= 3);
                assert!(vector.get("en").copied().unwrap_or(0) <= 1);
            }
        }
    }

    #[test]
    fn reset_then_constant_shapes() {
        let d = design();
        let stim = reset_then_constant(&d, 5, &BTreeMap::from([("mode".to_string(), 2u64)]));
        assert_eq!(stim.len(), 5);
        assert_eq!(stim[0].get("rst_n"), Some(&0));
        assert_eq!(stim[4].get("rst_n"), Some(&1));
        assert_eq!(stim[3].get("mode"), Some(&2));
    }
}
