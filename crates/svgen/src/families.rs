//! Parameterised design families.
//!
//! Each family is a generator function returning Verilog source text (with embedded
//! SVAs) plus a one-sentence functional description used by the spec generator.  The
//! families cover the styles the paper's corpus contains — counters, accumulators,
//! FIFOs, FSMs, ALUs, arbiters, register files, pipelines — and their parameters are
//! chosen so the emitted modules spread across the five code-length bins of Table II.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The design families the corpus generator knows how to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Family {
    Counter,
    Accumulator,
    ShiftRegister,
    Parity,
    GrayCode,
    Fifo,
    SequenceDetector,
    Alu,
    Arbiter,
    EdgeDetector,
    SaturatingCounter,
    Pwm,
    MajorityVoter,
    RegisterFile,
    BaudTick,
    Pipeline,
}

impl Family {
    /// Every family, in a stable order.
    pub fn all() -> &'static [Family] {
        &[
            Family::Counter,
            Family::Accumulator,
            Family::ShiftRegister,
            Family::Parity,
            Family::GrayCode,
            Family::Fifo,
            Family::SequenceDetector,
            Family::Alu,
            Family::Arbiter,
            Family::EdgeDetector,
            Family::SaturatingCounter,
            Family::Pwm,
            Family::MajorityVoter,
            Family::RegisterFile,
            Family::BaudTick,
            Family::Pipeline,
        ]
    }

    /// A short lowercase tag used in generated module names.
    pub fn tag(&self) -> &'static str {
        match self {
            Family::Counter => "counter",
            Family::Accumulator => "accu",
            Family::ShiftRegister => "shiftreg",
            Family::Parity => "parity",
            Family::GrayCode => "gray",
            Family::Fifo => "fifo",
            Family::SequenceDetector => "seqdet",
            Family::Alu => "alu",
            Family::Arbiter => "arbiter",
            Family::EdgeDetector => "edgedet",
            Family::SaturatingCounter => "satcnt",
            Family::Pwm => "pwm",
            Family::MajorityVoter => "voter",
            Family::RegisterFile => "regfile",
            Family::BaudTick => "baud",
            Family::Pipeline => "pipe",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Parameters applied to a family template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FamilyParams {
    /// Main data width (bits).
    pub width: u32,
    /// Structural depth: FIFO depth, pipeline stages, register count, …
    pub depth: u32,
    /// Variant selector used by some families to diversify the emitted style.
    pub variant: u32,
}

impl Default for FamilyParams {
    fn default() -> Self {
        Self {
            width: 4,
            depth: 4,
            variant: 0,
        }
    }
}

/// Output of instantiating one family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyInstance {
    /// The family that produced the source.
    pub family: Family,
    /// The parameters used.
    pub params: FamilyParams,
    /// The module name embedded in the source.
    pub module_name: String,
    /// Verilog source text, including properties and assertions.
    pub source: String,
    /// One-sentence functional description used by the spec generator.
    pub function: String,
}

/// Instantiates a family with the given parameters and an index used to make the
/// module name unique across the corpus.
pub fn instantiate(family: Family, params: FamilyParams, index: usize) -> FamilyInstance {
    let name = format!("{}_{}_{index}", family.tag(), params.width);
    let (source, function) = match family {
        Family::Counter => counter(&name, params),
        Family::Accumulator => accumulator(&name, params),
        Family::ShiftRegister => shift_register(&name, params),
        Family::Parity => parity(&name, params),
        Family::GrayCode => gray_code(&name, params),
        Family::Fifo => fifo(&name, params),
        Family::SequenceDetector => sequence_detector(&name, params),
        Family::Alu => alu(&name, params),
        Family::Arbiter => arbiter(&name, params),
        Family::EdgeDetector => edge_detector(&name, params),
        Family::SaturatingCounter => saturating_counter(&name, params),
        Family::Pwm => pwm(&name, params),
        Family::MajorityVoter => majority_voter(&name, params),
        Family::RegisterFile => register_file(&name, params),
        Family::BaudTick => baud_tick(&name, params),
        Family::Pipeline => pipeline(&name, params),
    };
    FamilyInstance {
        family,
        params,
        module_name: name,
        source,
        function,
    }
}

fn max_value(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn counter(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.max(2);
    let msb = w - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input en,
  output reg [{msb}:0] count
);
  wire at_max;
  assign at_max = count == {w}'d{max};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= {w}'d0;
    else if (en) count <= count + {w}'d1;
  end
  property count_increments;
    @(posedge clk) disable iff (!rst_n) en |=> count == ($past(count) + {w}'d1);
  endproperty
  count_increments_check: assert property (count_increments) else $error("count must increment when enabled");
  property count_holds;
    @(posedge clk) disable iff (!rst_n) !en |=> count == $past(count);
  endproperty
  count_holds_check: assert property (count_holds) else $error("count must hold when disabled");
endmodule
"#,
        max = max_value(w)
    );
    (
        src,
        format!("A {w}-bit up counter with synchronous enable and active-low asynchronous reset; count increments by one each cycle while en is high and holds otherwise."),
    )
}

fn accumulator(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.max(3);
    let msb = w - 1;
    let cnt_max = 3u64;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input valid_in,
  input [{msb}:0] data_in,
  output reg [{msb}:0] data_out,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd{cnt_max}) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) data_out <= {w}'d0;
    else if (valid_in) data_out <= data_out + data_in;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
  property valid_out_low;
    @(posedge clk) disable iff (!rst_n) !end_cnt |-> ##1 valid_out == 0;
  endproperty
  valid_out_low_assertion: assert property (valid_out_low) else $error("valid_out should stay low without end_cnt");
endmodule
"#
    );
    (
        src,
        format!("An accumulator that sums {w}-bit inputs over groups of four valid beats and pulses valid_out for one cycle after every fourth valid input."),
    )
}

fn shift_register(name: &str, p: FamilyParams) -> (String, String) {
    let d = p.depth.clamp(2, 16);
    let msb = d - 1;
    let upper = d - 2;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input din,
  output [{msb}:0] taps,
  output dout
);
  reg [{msb}:0] sr;
  assign taps = sr;
  assign dout = sr[{msb}];
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) sr <= {d}'d0;
    else sr <= {{sr[{upper}:0], din}};
  end
  property shift_in;
    @(posedge clk) disable iff (!rst_n) din |=> sr[0];
  endproperty
  shift_in_check: assert property (shift_in) else $error("new bit must enter stage 0");
  property shift_chain;
    @(posedge clk) disable iff (!rst_n) 1 |=> sr[1] == $past(sr[0]);
  endproperty
  shift_chain_check: assert property (shift_chain) else $error("stage 1 must take stage 0's old value");
endmodule
"#
    );
    (
        src,
        format!("A {d}-stage serial-in shift register: every clock the contents move one stage towards the MSB and din enters at stage zero."),
    )
}

fn parity(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.max(2);
    let msb = w - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input [{msb}:0] data,
  output parity,
  output all_ones
);
  assign parity = ^data;
  assign all_ones = &data;
  property parity_matches;
    @(posedge clk) parity == (^data);
  endproperty
  parity_matches_check: assert property (parity_matches) else $error("parity must be the XOR reduction of data");
  property ones_implies_parity;
    @(posedge clk) all_ones |-> parity == {odd};
  endproperty
  ones_implies_parity_check: assert property (ones_implies_parity) else $error("all-ones word has known parity");
endmodule
"#,
        odd = u64::from(w % 2 == 1)
    );
    (
        src,
        format!("A combinational parity generator over a {w}-bit word, also flagging the all-ones pattern."),
    )
}

fn gray_code(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 8);
    let msb = w - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input en,
  output reg [{msb}:0] code
);
  reg [{msb}:0] bin;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) bin <= {w}'d0;
    else if (en) bin <= bin + {w}'d1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) code <= {w}'d0;
    else code <= (bin >> 1) ^ bin;
  end
  property code_follows_bin;
    @(posedge clk) disable iff (!rst_n) 1 |=> code == (($past(bin) >> 1) ^ $past(bin));
  endproperty
  code_follows_bin_check: assert property (code_follows_bin) else $error("gray output must track the binary counter");
endmodule
"#
    );
    (
        src,
        format!("A {w}-bit Gray-code generator driven by an internal binary counter with enable."),
    )
}

fn fifo(name: &str, p: FamilyParams) -> (String, String) {
    let depth = p.depth.clamp(2, 15) as u64;
    let cw = 64 - depth.leading_zeros().max(60);
    let cw = cw.clamp(2, 4);
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input push,
  input pop,
  output full,
  output empty,
  output reg [{cmsb}:0] count
);
  wire do_push;
  wire do_pop;
  assign full = count == {cw}'d{depth};
  assign empty = count == {cw}'d0;
  assign do_push = push && !full;
  assign do_pop = pop && !empty;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= {cw}'d0;
    else if (do_push && !do_pop) count <= count + {cw}'d1;
    else if (do_pop && !do_push) count <= count - {cw}'d1;
  end
  property never_overflow;
    @(posedge clk) disable iff (!rst_n) count <= {cw}'d{depth};
  endproperty
  never_overflow_check: assert property (never_overflow) else $error("occupancy must never exceed the depth");
  property full_means_max;
    @(posedge clk) disable iff (!rst_n) full |-> count == {cw}'d{depth};
  endproperty
  full_means_max_check: assert property (full_means_max) else $error("full must mean the FIFO holds depth entries");
  property push_grows;
    @(posedge clk) disable iff (!rst_n) (do_push && !do_pop) |=> count == ($past(count) + {cw}'d1);
  endproperty
  push_grows_check: assert property (push_grows) else $error("a push without pop must grow the occupancy");
endmodule
"#,
        cmsb = cw - 1
    );
    (
        src,
        format!("An occupancy-tracking FIFO controller of depth {depth} with push/pop handshakes and full/empty flags."),
    )
}

fn sequence_detector(name: &str, p: FamilyParams) -> (String, String) {
    let extra_states = p.depth.clamp(0, 4);
    let mut extra_arms = String::new();
    for i in 0..extra_states {
        extra_arms.push_str(&format!(
            "      3'd{}: state <= din ? 3'd2 : 3'd0;\n",
            4 + i
        ));
    }
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input din,
  output detected
);
  reg [2:0] state;
  assign detected = (state == 3'd2) && din;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) state <= 3'd0;
    else begin
      case (state)
        3'd0: state <= din ? 3'd1 : 3'd0;
        3'd1: state <= din ? 3'd1 : 3'd2;
        3'd2: state <= din ? 3'd1 : 3'd0;
{extra_arms}        default: state <= 3'd0;
      endcase
    end
  end
  property detect_needs_high;
    @(posedge clk) disable iff (!rst_n) detected |-> din;
  endproperty
  detect_needs_high_check: assert property (detect_needs_high) else $error("detection requires the final 1");
  property detect_needs_gap;
    @(posedge clk) disable iff (!rst_n) detected |-> !$past(din);
  endproperty
  detect_needs_gap_check: assert property (detect_needs_gap) else $error("detection requires the middle 0");
endmodule
"#
    );
    (
        src,
        "A Mealy finite-state machine that raises detected when the serial input contains the pattern 1-0-1.".to_string(),
    )
}

fn alu(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 16);
    let msb = w - 1;
    let extended_ops = p.variant % 2 == 1;
    let extra = if extended_ops {
        format!(
            r#"      3'd4: result = a << 1;
      3'd5: result = a >> 1;
      3'd6: result = (a < b) ? {w}'d1 : {w}'d0;
"#
        )
    } else {
        String::new()
    };
    let src = format!(
        r#"module {name}(
  input clk,
  input [2:0] op,
  input [{msb}:0] a,
  input [{msb}:0] b,
  output reg [{msb}:0] result,
  output zero
);
  assign zero = result == {w}'d0;
  always @(*) begin
    case (op)
      3'd0: result = a + b;
      3'd1: result = a - b;
      3'd2: result = a & b;
      3'd3: result = a | b;
{extra}      default: result = a ^ b;
    endcase
  end
  property add_correct;
    @(posedge clk) op == 3'd0 |-> result == (a + b);
  endproperty
  add_correct_check: assert property (add_correct) else $error("addition result mismatch");
  property and_correct;
    @(posedge clk) op == 3'd2 |-> result == (a & b);
  endproperty
  and_correct_check: assert property (and_correct) else $error("bitwise-and result mismatch");
  property zero_flag;
    @(posedge clk) zero |-> result == {w}'d0;
  endproperty
  zero_flag_check: assert property (zero_flag) else $error("zero flag must track an all-zero result");
endmodule
"#
    );
    (
        src,
        format!("A combinational {w}-bit ALU selecting between arithmetic and logic operations with a zero flag."),
    )
}

fn arbiter(name: &str, p: FamilyParams) -> (String, String) {
    let n = p.depth.clamp(2, 4);
    let msb = n - 1;
    let mut grant_logic = String::new();
    grant_logic.push_str("  assign grant[0] = req[0];\n");
    for i in 1..n {
        let mut mask = String::new();
        for j in 0..i {
            if j > 0 {
                mask.push_str(" && ");
            }
            mask.push_str(&format!("!req[{j}]"));
        }
        grant_logic.push_str(&format!("  assign grant[{i}] = req[{i}] && {mask};\n"));
    }
    let src = format!(
        r#"module {name}(
  input clk,
  input [{msb}:0] req,
  output [{msb}:0] grant,
  output busy
);
{grant_logic}  assign busy = |req;
  property highest_priority_wins;
    @(posedge clk) req[0] |-> grant[0];
  endproperty
  highest_priority_wins_check: assert property (highest_priority_wins) else $error("requester 0 has absolute priority");
  property one_hot_grant;
    @(posedge clk) !(grant[0] && grant[1]);
  endproperty
  one_hot_grant_check: assert property (one_hot_grant) else $error("at most one grant may be active");
  property grant_needs_request;
    @(posedge clk) grant[1] |-> req[1];
  endproperty
  grant_needs_request_check: assert property (grant_needs_request) else $error("grants require a matching request");
endmodule
"#
    );
    (
        src,
        format!("A fixed-priority arbiter over {n} requesters where requester 0 always wins and grants are one-hot."),
    )
}

fn edge_detector(name: &str, p: FamilyParams) -> (String, String) {
    let _ = p;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input din,
  output rising,
  output falling
);
  reg prev;
  assign rising = din && !prev;
  assign falling = !din && prev;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) prev <= 0;
    else prev <= din;
  end
  property rising_needs_low_history;
    @(posedge clk) disable iff (!rst_n) rising |-> !$past(din);
  endproperty
  rising_needs_low_history_check: assert property (rising_needs_low_history) else $error("a rising pulse requires din to have been low");
  property edges_exclusive;
    @(posedge clk) disable iff (!rst_n) !(rising && falling);
  endproperty
  edges_exclusive_check: assert property (edges_exclusive) else $error("rising and falling cannot fire together");
endmodule
"#
    );
    (
        src,
        "An edge detector producing single-cycle rising and falling pulses from a registered history bit.".to_string(),
    )
}

fn saturating_counter(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 8);
    let msb = w - 1;
    let limit = max_value(w) - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input inc,
  input clear,
  output reg [{msb}:0] level,
  output saturated
);
  assign saturated = level == {w}'d{limit};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) level <= {w}'d0;
    else if (clear) level <= {w}'d0;
    else if (inc && !saturated) level <= level + {w}'d1;
  end
  property never_past_limit;
    @(posedge clk) disable iff (!rst_n) level <= {w}'d{limit};
  endproperty
  never_past_limit_check: assert property (never_past_limit) else $error("level must saturate at the limit");
  property clear_wins;
    @(posedge clk) disable iff (!rst_n) clear |=> level == {w}'d0;
  endproperty
  clear_wins_check: assert property (clear_wins) else $error("clear must reset the level");
endmodule
"#
    );
    (
        src,
        format!("A {w}-bit saturating counter with synchronous clear that stops incrementing at {limit}."),
    )
}

fn pwm(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 8);
    let msb = w - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input [{msb}:0] duty,
  output pwm_out,
  output reg [{msb}:0] phase
);
  assign pwm_out = phase < duty;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) phase <= {w}'d0;
    else phase <= phase + {w}'d1;
  end
  property zero_duty_is_silent;
    @(posedge clk) disable iff (!rst_n) duty == {w}'d0 |-> !pwm_out;
  endproperty
  zero_duty_is_silent_check: assert property (zero_duty_is_silent) else $error("zero duty cycle must keep the output low");
  property output_definition;
    @(posedge clk) disable iff (!rst_n) pwm_out == (phase < duty);
  endproperty
  output_definition_check: assert property (output_definition) else $error("output must compare phase against duty");
endmodule
"#
    );
    (
        src,
        format!("A {w}-bit pulse-width modulator comparing a free-running phase counter against the duty input."),
    )
}

fn majority_voter(name: &str, p: FamilyParams) -> (String, String) {
    let _ = p;
    let src = format!(
        r#"module {name}(
  input clk,
  input a,
  input b,
  input c,
  output vote,
  output unanimous
);
  assign vote = (a && b) || (a && c) || (b && c);
  assign unanimous = a && b && c;
  property two_agree;
    @(posedge clk) (a && b) |-> vote;
  endproperty
  two_agree_check: assert property (two_agree) else $error("two agreeing inputs must win the vote");
  property unanimous_implies_vote;
    @(posedge clk) unanimous |-> vote;
  endproperty
  unanimous_implies_vote_check: assert property (unanimous_implies_vote) else $error("unanimity implies a majority");
endmodule
"#
    );
    (
        src,
        "A triple-modular-redundancy majority voter over three single-bit inputs.".to_string(),
    )
}

fn register_file(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 16);
    let msb = w - 1;
    let regs = p.depth.clamp(2, 8);
    let aw = 32 - (regs - 1).leading_zeros().max(29);
    let aw = aw.clamp(1, 3);
    let amsb = aw.saturating_sub(1);
    let mut decls = String::new();
    let mut writes = String::new();
    let mut read_arms = String::new();
    for i in 0..regs {
        decls.push_str(&format!("  reg [{msb}:0] r{i};\n"));
        writes.push_str(&format!(
            "  always @(posedge clk or negedge rst_n) begin\n    if (!rst_n) r{i} <= {w}'d0;\n    else if (we && waddr == {aw}'d{i}) r{i} <= wdata;\n  end\n"
        ));
        read_arms.push_str(&format!("      {aw}'d{i}: rdata = r{i};\n"));
    }
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input we,
  input [{amsb}:0] waddr,
  input [{msb}:0] wdata,
  input [{amsb}:0] raddr,
  output reg [{msb}:0] rdata
);
{decls}{writes}  always @(*) begin
    case (raddr)
{read_arms}      default: rdata = {w}'d0;
    endcase
  end
  property read_reg0;
    @(posedge clk) disable iff (!rst_n) raddr == {aw}'d0 |-> rdata == r0;
  endproperty
  read_reg0_check: assert property (read_reg0) else $error("reading address 0 must return register 0");
  property write_reg0_lands;
    @(posedge clk) disable iff (!rst_n) (we && waddr == {aw}'d0) |=> r0 == $past(wdata);
  endproperty
  write_reg0_lands_check: assert property (write_reg0_lands) else $error("a write to address 0 must land in register 0");
endmodule
"#
    );
    (
        src,
        format!("A {regs}-entry, {w}-bit register file with one synchronous write port and one combinational read port."),
    )
}

fn baud_tick(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(3, 10);
    let msb = w - 1;
    let div = (max_value(w) / 2).max(3);
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  output tick,
  output reg [{msb}:0] cnt
);
  assign tick = cnt == {w}'d{div};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= {w}'d0;
    else if (tick) cnt <= {w}'d0;
    else cnt <= cnt + {w}'d1;
  end
  property tick_resets_counter;
    @(posedge clk) disable iff (!rst_n) tick |=> cnt == {w}'d0;
  endproperty
  tick_resets_counter_check: assert property (tick_resets_counter) else $error("the divider must restart after a tick");
  property counter_bounded;
    @(posedge clk) disable iff (!rst_n) cnt <= {w}'d{div};
  endproperty
  counter_bounded_check: assert property (counter_bounded) else $error("the divider must never pass its terminal count");
endmodule
"#
    );
    (
        src,
        format!(
            "A baud-rate tick generator dividing the clock by {} using a {w}-bit counter.",
            div + 1
        ),
    )
}

fn pipeline(name: &str, p: FamilyParams) -> (String, String) {
    let w = p.width.clamp(2, 16);
    let msb = w - 1;
    let stages = p.depth.clamp(2, 12);
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..stages {
        decls.push_str(&format!("  reg [{msb}:0] stage{i};\n"));
        let source = if i == 0 {
            "din".to_string()
        } else {
            format!("stage{}", i - 1)
        };
        body.push_str(&format!(
            "  always @(posedge clk or negedge rst_n) begin\n    if (!rst_n) stage{i} <= {w}'d0;\n    else stage{i} <= {source};\n  end\n"
        ));
    }
    let last = stages - 1;
    let src = format!(
        r#"module {name}(
  input clk,
  input rst_n,
  input [{msb}:0] din,
  output [{msb}:0] dout
);
{decls}  assign dout = stage{last};
{body}  property first_stage_tracks;
    @(posedge clk) disable iff (!rst_n) 1 |=> stage0 == $past(din);
  endproperty
  first_stage_tracks_check: assert property (first_stage_tracks) else $error("stage 0 must capture the input");
  property chain_advances;
    @(posedge clk) disable iff (!rst_n) 1 |=> stage1 == $past(stage0);
  endproperty
  chain_advances_check: assert property (chain_advances) else $error("stage 1 must capture stage 0");
endmodule
"#
    );
    (
        src,
        format!(
            "A {stages}-stage, {w}-bit register pipeline delaying the input by {stages} cycles."
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instances() -> Vec<FamilyInstance> {
        Family::all()
            .iter()
            .enumerate()
            .map(|(i, f)| instantiate(*f, FamilyParams::default(), i))
            .collect()
    }

    #[test]
    fn every_family_parses_and_compiles() {
        for instance in all_instances() {
            let module = svparse::parse_module(&instance.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", instance.family, instance.source));
            assert_eq!(module.name, instance.module_name);
            assert!(
                svparse::compile_check(&instance.source).is_ok(),
                "{} failed semantic checks",
                instance.family
            );
        }
    }

    #[test]
    fn every_family_has_assertions_and_spec() {
        for instance in all_instances() {
            let module = svparse::parse_module(&instance.source).unwrap();
            assert!(
                module.assertions().count() >= 1,
                "{} has no assertion",
                instance.family
            );
            assert!(!instance.function.is_empty());
        }
    }

    #[test]
    fn parameters_change_emitted_length() {
        let small = instantiate(
            Family::Pipeline,
            FamilyParams {
                width: 4,
                depth: 2,
                variant: 0,
            },
            0,
        );
        let large = instantiate(
            Family::Pipeline,
            FamilyParams {
                width: 8,
                depth: 12,
                variant: 0,
            },
            1,
        );
        assert!(large.source.lines().count() > small.source.lines().count() + 20);
    }

    #[test]
    fn register_file_scales_with_depth() {
        let rf = instantiate(
            Family::RegisterFile,
            FamilyParams {
                width: 8,
                depth: 8,
                variant: 0,
            },
            3,
        );
        let module = svparse::parse_module(&rf.source).unwrap();
        assert!(module.always_blocks().count() >= 9);
        assert!(svparse::compile_check(&rf.source).is_ok());
    }

    #[test]
    fn module_names_are_unique_per_index() {
        let a = instantiate(Family::Counter, FamilyParams::default(), 1);
        let b = instantiate(Family::Counter, FamilyParams::default(), 2);
        assert_ne!(a.module_name, b.module_name);
    }

    #[test]
    fn family_tags_are_distinct() {
        let mut tags: Vec<&str> = Family::all().iter().map(|f| f.tag()).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), Family::all().len());
    }
}
