//! # svgen — synthetic Verilog corpus, specs and assertion-bearing design families
//!
//! The AssertSolver paper augments an open-source corpus of ~109k Verilog samples;
//! that corpus (and the GPT-4-written specifications attached to it) is not available
//! here, so this crate generates a synthetic substitute: sixteen parameterised design
//! families with embedded SystemVerilog assertions, template-based specifications, and
//! a corruption pass that recreates the broken/duplicate/logic-free samples Stage 1 of
//! the pipeline must filter.
//!
//! ## Quick example
//!
//! ```
//! use svgen::{CorpusConfig, CorpusGenerator};
//!
//! let corpus = CorpusGenerator::new(CorpusConfig { golden_designs: 8, ..Default::default() });
//! let designs = corpus.golden_designs();
//! assert_eq!(designs.len(), 8);
//! assert!(designs.iter().all(|d| svparse::compile_check(&d.source).is_ok()));
//! ```

pub mod corpus;
pub mod corrupt;
pub mod families;
pub mod spec;

pub use corpus::{
    length_bin, length_bin_index, CorpusConfig, CorpusGenerator, RawSample, SampleOrigin,
    LENGTH_BINS,
};
pub use corrupt::{corrupt, corrupt_random, CorruptedSample, CorruptionKind};
pub use families::{instantiate, Family, FamilyInstance, FamilyParams};
pub use spec::render_spec;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::CorpusGenerator>();
        assert_send_sync::<super::FamilyInstance>();
        assert_send_sync::<super::RawSample>();
    }
}
