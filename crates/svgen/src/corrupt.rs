//! Corpus corruption for Stage-1 filtering.
//!
//! The raw HuggingFace corpus the paper starts from contains incomplete modules,
//! logic-free stubs, duplicates and code with syntax errors; Stage 1 filters these and
//! routes the syntactically broken (but structurally interesting) ones into the
//! *Verilog-PT* pretraining dataset together with a compiler analysis.  This module
//! produces the same kinds of degraded samples from golden sources so that Stage 1 has
//! realistic work to do.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The ways a corpus sample can be degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// `endmodule` (or `module`) is missing — incomplete code.
    MissingEndmodule,
    /// A statement lost its semicolon — syntax error.
    DroppedSemicolon,
    /// A signal reference was renamed to an undeclared identifier — semantic error.
    UndeclaredIdentifier,
    /// A `begin` keyword was dropped — unbalanced block.
    UnbalancedBegin,
    /// The body was emptied — declarations only, no functional logic.
    NoFunctionalLogic,
}

impl CorruptionKind {
    /// All corruption kinds.
    pub fn all() -> &'static [CorruptionKind] {
        &[
            CorruptionKind::MissingEndmodule,
            CorruptionKind::DroppedSemicolon,
            CorruptionKind::UndeclaredIdentifier,
            CorruptionKind::UnbalancedBegin,
            CorruptionKind::NoFunctionalLogic,
        ]
    }

    /// A short human-readable explanation, used as the "compiler analysis" text in
    /// Verilog-PT entries.
    pub fn analysis(&self) -> &'static str {
        match self {
            CorruptionKind::MissingEndmodule => {
                "the module is never closed: `endmodule` is missing, so the compiler reaches end of file while still inside the module body"
            }
            CorruptionKind::DroppedSemicolon => {
                "a statement is missing its terminating semicolon, so the compiler reports an unexpected token on the following line"
            }
            CorruptionKind::UndeclaredIdentifier => {
                "an expression references a signal that is never declared in the module, so elaboration fails"
            }
            CorruptionKind::UnbalancedBegin => {
                "a begin/end pair is unbalanced, so the procedural block never terminates cleanly"
            }
            CorruptionKind::NoFunctionalLogic => {
                "the module declares ports and nets but contains no assignments or procedural blocks, so it has no functional logic to verify"
            }
        }
    }
}

/// A corrupted corpus sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptedSample {
    /// Degraded source text.
    pub source: String,
    /// What was done to it.
    pub kind: CorruptionKind,
}

/// Applies the given corruption to a golden source.
pub fn corrupt(source: &str, kind: CorruptionKind, rng: &mut StdRng) -> CorruptedSample {
    let degraded = match kind {
        CorruptionKind::MissingEndmodule => source.replace("endmodule", ""),
        CorruptionKind::DroppedSemicolon => drop_random_semicolon(source, rng),
        CorruptionKind::UndeclaredIdentifier => rename_random_signal(source, rng),
        CorruptionKind::UnbalancedBegin => replace_first(source, " begin", " "),
        CorruptionKind::NoFunctionalLogic => strip_logic(source),
    };
    CorruptedSample {
        source: degraded,
        kind,
    }
}

/// Applies a random corruption drawn from all kinds.
pub fn corrupt_random(source: &str, seed: u64) -> CorruptedSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let kind = *CorruptionKind::all()
        .choose(&mut rng)
        .expect("non-empty corruption list");
    corrupt(source, kind, &mut rng)
}

fn drop_random_semicolon(source: &str, rng: &mut StdRng) -> String {
    let positions: Vec<usize> = source
        .char_indices()
        .filter(|(_, c)| *c == ';')
        .map(|(i, _)| i)
        .collect();
    if positions.is_empty() {
        return source.to_string();
    }
    // Skip the port-list semicolon (position 0) when there is a choice, so the error
    // lands inside the body more often.
    let idx = positions[rng.gen_range(0..positions.len())];
    let mut out = String::with_capacity(source.len());
    out.push_str(&source[..idx]);
    out.push_str(&source[idx + 1..]);
    out
}

fn rename_random_signal(source: &str, rng: &mut StdRng) -> String {
    let module = match svparse::parse_module(source) {
        Ok(m) => m,
        Err(_) => return source.to_string(),
    };
    let names = module.declared_names();
    let candidates: Vec<&String> = names
        .iter()
        .filter(|n| n.as_str() != "clk" && n.len() > 2)
        .collect();
    if candidates.is_empty() {
        return source.to_string();
    }
    let victim = candidates[rng.gen_range(0..candidates.len())];
    // Rename only one non-declaration occurrence so the identifier becomes undeclared
    // at a use site.
    let ghost = format!("{victim}_x");
    let mut replaced = false;
    source
        .lines()
        .map(|line| {
            let is_decl = line.trim_start().starts_with("input")
                || line.trim_start().starts_with("output")
                || line.trim_start().starts_with("wire")
                || line.trim_start().starts_with("reg");
            if !replaced && !is_decl && line.contains(victim.as_str()) {
                replaced = true;
                line.replacen(victim.as_str(), &ghost, 1)
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<String>>()
        .join("\n")
}

fn replace_first(source: &str, needle: &str, replacement: &str) -> String {
    source.replacen(needle, replacement, 1)
}

fn strip_logic(source: &str) -> String {
    let module = match svparse::parse_module(source) {
        Ok(m) => m,
        Err(_) => return source.to_string(),
    };
    let stripped = svparse::Module::new(
        module.name.clone(),
        module.ports.clone(),
        module
            .items
            .iter()
            .filter(|i| matches!(i, svparse::Item::Net(_) | svparse::Item::Param(_)))
            .cloned()
            .collect(),
    );
    svparse::emit_module(&stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{instantiate, Family, FamilyParams};

    fn golden() -> String {
        instantiate(Family::Accumulator, FamilyParams::default(), 0).source
    }

    #[test]
    fn missing_endmodule_fails_parse() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample = corrupt(&golden(), CorruptionKind::MissingEndmodule, &mut rng);
        assert!(svparse::parse(&sample.source).is_err());
    }

    #[test]
    fn dropped_semicolon_fails_compile_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample = corrupt(&golden(), CorruptionKind::DroppedSemicolon, &mut rng);
        assert!(svparse::compile_check(&sample.source).is_err());
    }

    #[test]
    fn undeclared_identifier_fails_compile_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = corrupt(&golden(), CorruptionKind::UndeclaredIdentifier, &mut rng);
        assert!(
            svparse::compile_check(&sample.source).is_err(),
            "corrupted source unexpectedly clean:\n{}",
            sample.source
        );
    }

    #[test]
    fn stripped_module_parses_but_has_no_logic() {
        let mut rng = StdRng::seed_from_u64(4);
        let sample = corrupt(&golden(), CorruptionKind::NoFunctionalLogic, &mut rng);
        let module = svparse::parse_module(&sample.source).unwrap();
        assert!(!module.has_functional_logic());
    }

    #[test]
    fn every_kind_has_analysis_text() {
        for kind in CorruptionKind::all() {
            assert!(!kind.analysis().is_empty());
        }
    }

    #[test]
    fn corrupt_random_is_deterministic() {
        let a = corrupt_random(&golden(), 7);
        let b = corrupt_random(&golden(), 7);
        assert_eq!(a, b);
    }
}
