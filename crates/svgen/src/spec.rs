//! Design-specification synthesis.
//!
//! In the paper GPT-4 writes a natural-language specification ("Spec") for every
//! corpus module; the Spec is part of the model's prompt in every dataset.  Here the
//! specification is synthesised from the module interface plus the family's functional
//! description, which preserves the information content (ports, widths, behaviour)
//! without an LLM.

use svparse::{Module, PortDir};

/// Renders a specification for a module.
///
/// The format mirrors the paper's Fig. 1 "Spec" box: a `Ports:` section enumerating
/// every port with direction and width, and a `Function:` section describing intended
/// behaviour.
///
/// # Examples
///
/// ```
/// let module = svparse::parse_module(
///     "module m(input clk, input [3:0] d, output reg [3:0] q);\n  always @(posedge clk) q <= d;\nendmodule",
/// ).map_err(|e| e.to_string())?;
/// let spec = svgen::render_spec(&module, "A one-stage data register.");
/// assert!(spec.contains("Ports:"));
/// assert!(spec.contains("input [3:0] d"));
/// assert!(spec.contains("Function:"));
/// # Ok::<(), String>(())
/// ```
pub fn render_spec(module: &Module, function: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("Module: {}\n", module.name));
    out.push_str("Ports:\n");
    for port in &module.ports {
        let width = port
            .width
            .map(|r| format!(" [{}:{}]", r.msb, r.lsb))
            .unwrap_or_default();
        let role = describe_port_role(&port.name, port.dir);
        out.push_str(&format!(
            "  - {}{} {}: {}\n",
            port.dir, width, port.name, role
        ));
    }
    out.push_str("Function: ");
    out.push_str(function);
    if !function.ends_with('.') {
        out.push('.');
    }
    out.push('\n');
    let assertions: Vec<String> = module.assertions().map(|a| a.display_name()).collect();
    if !assertions.is_empty() {
        out.push_str(&format!(
            "Verification: the design carries {} concurrent assertion(s): {}.\n",
            assertions.len(),
            assertions.join(", ")
        ));
    }
    out
}

fn describe_port_role(name: &str, dir: PortDir) -> &'static str {
    match (name, dir) {
        ("clk" | "clock", _) => "clock",
        ("rst_n" | "reset_n" | "rstn", _) => "active-low asynchronous reset",
        ("rst" | "reset", _) => "reset",
        (_, PortDir::Input) => "data/control input",
        (_, PortDir::Output) => "observable output",
        (_, PortDir::Inout) => "bidirectional signal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{instantiate, Family, FamilyParams};

    #[test]
    fn spec_lists_every_port() {
        let inst = instantiate(Family::Fifo, FamilyParams::default(), 0);
        let module = svparse::parse_module(&inst.source).unwrap();
        let spec = render_spec(&module, &inst.function);
        for port in &module.ports {
            assert!(spec.contains(&port.name), "spec missing port {}", port.name);
        }
        assert!(spec.contains("Function:"));
        assert!(spec.contains("Verification:"));
    }

    #[test]
    fn clock_and_reset_are_recognised() {
        let inst = instantiate(Family::Counter, FamilyParams::default(), 0);
        let module = svparse::parse_module(&inst.source).unwrap();
        let spec = render_spec(&module, &inst.function);
        assert!(spec.contains("clk: clock"));
        assert!(spec.contains("rst_n: active-low asynchronous reset"));
    }

    #[test]
    fn trailing_period_is_normalised() {
        let module =
            svparse::parse_module("module m(input a, output y); assign y = a; endmodule").unwrap();
        let spec = render_spec(&module, "A wire");
        assert!(spec.contains("Function: A wire.\n"));
    }
}
