//! Corpus assembly.
//!
//! [`CorpusGenerator`] stands in for the 108,971-sample HuggingFace Verilog corpus the
//! paper augments: it produces a deterministic, seed-controlled stream of modules
//! spanning all design families and code-length bins, deliberately mixed with the
//! degraded samples (syntax errors, logic-free stubs, duplicates) that Stage 1 must
//! filter out.

use crate::corrupt::{corrupt_random, CorruptionKind};
use crate::families::{instantiate, Family, FamilyInstance, FamilyParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The five code-length bins of Table II, in paper order.
pub const LENGTH_BINS: [&str; 5] = [
    "(0, 50]",
    "(50, 100]",
    "(100, 150]",
    "(150, 200]",
    "(200, +inf)",
];

/// Returns the Table-II length bin for a line count.
pub fn length_bin(lines: usize) -> &'static str {
    match lines {
        0..=50 => LENGTH_BINS[0],
        51..=100 => LENGTH_BINS[1],
        101..=150 => LENGTH_BINS[2],
        151..=200 => LENGTH_BINS[3],
        _ => LENGTH_BINS[4],
    }
}

/// Index (0..5) of the Table-II length bin for a line count.
pub fn length_bin_index(lines: usize) -> usize {
    match lines {
        0..=50 => 0,
        51..=100 => 1,
        101..=150 => 2,
        151..=200 => 3,
        _ => 4,
    }
}

/// Where a raw corpus sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleOrigin {
    /// A healthy golden design.
    Golden,
    /// A deliberately degraded sample (Stage-1 reject / Verilog-PT material).
    Corrupted(CorruptionKind),
    /// A byte-for-byte duplicate of an earlier sample.
    Duplicate,
    /// A case mined by the `svfuzz` differential fuzzer and fed back as corpus
    /// material.
    Mined,
}

/// One raw corpus sample before Stage-1 filtering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawSample {
    /// Source text.
    pub source: String,
    /// Functional description used when synthesising the Spec.
    pub function: String,
    /// Family that produced the underlying golden design.
    pub family: Family,
    /// Provenance label (used only by tests; Stage 1 must rediscover the problems).
    pub origin: SampleOrigin,
}

impl RawSample {
    /// Wraps a fuzz-mined source as a corpus sample. `svfuzz` uses this to feed
    /// its shrunk findings back into the corpus stream; Stage 1 treats them like
    /// any other raw sample (healthy ones become designs, broken ones become
    /// Verilog-PT material with a failure analysis).
    pub fn mined(source: String, function: String, family: Family) -> Self {
        Self {
            source,
            function,
            family,
            origin: SampleOrigin::Mined,
        }
    }
}

/// Configuration of corpus generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of golden designs to generate.
    pub golden_designs: usize,
    /// Fraction of additional corrupted samples, relative to `golden_designs`.
    pub corrupted_fraction: f64,
    /// Fraction of additional duplicate samples, relative to `golden_designs`.
    pub duplicate_fraction: f64,
    /// Seed controlling parameter choices and corruption.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            golden_designs: 64,
            corrupted_fraction: 0.25,
            duplicate_fraction: 0.05,
            seed: 0xC0DE,
        }
    }
}

/// Deterministic corpus generator.
#[derive(Debug, Clone, Default)]
pub struct CorpusGenerator {
    config: CorpusConfig,
}

impl CorpusGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: CorpusConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Generates the golden design population, cycling through families and varying
    /// parameters so the emitted modules spread across the length bins.
    pub fn golden_designs(&self) -> Vec<FamilyInstance> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let families = Family::all();
        (0..self.config.golden_designs)
            .map(|i| {
                let family = families[i % families.len()];
                let params = vary_params(family, i, &mut rng);
                instantiate(family, params, i)
            })
            .collect()
    }

    /// Generates the full raw corpus: golden designs plus corrupted and duplicate
    /// samples, shuffled deterministically.
    pub fn generate(&self) -> Vec<RawSample> {
        let golden = self.golden_designs();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EED);
        let mut samples: Vec<RawSample> = golden
            .iter()
            .map(|g| RawSample {
                source: g.source.clone(),
                function: g.function.clone(),
                family: g.family,
                origin: SampleOrigin::Golden,
            })
            .collect();

        let corrupted_count =
            (self.config.golden_designs as f64 * self.config.corrupted_fraction).round() as usize;
        for i in 0..corrupted_count {
            let base = &golden[rng.gen_range(0..golden.len())];
            let corrupted = corrupt_random(&base.source, self.config.seed ^ (i as u64 + 1));
            samples.push(RawSample {
                source: corrupted.source,
                function: base.function.clone(),
                family: base.family,
                origin: SampleOrigin::Corrupted(corrupted.kind),
            });
        }

        let duplicate_count =
            (self.config.golden_designs as f64 * self.config.duplicate_fraction).round() as usize;
        for _ in 0..duplicate_count {
            let base = &golden[rng.gen_range(0..golden.len())];
            samples.push(RawSample {
                source: base.source.clone(),
                function: base.function.clone(),
                family: base.family,
                origin: SampleOrigin::Duplicate,
            });
        }

        // Deterministic interleave so corrupted samples are not all at the end.
        Self::interleave(&mut samples, self.config.seed);
        samples
    }

    /// Like [`CorpusGenerator::generate`], but with fuzz-mined samples folded into
    /// the same deterministic interleave, so downstream stages see them as ordinary
    /// corpus material rather than a trailing block.
    pub fn generate_with_mined(&self, mined: Vec<RawSample>) -> Vec<RawSample> {
        let mut samples = self.generate();
        samples.extend(mined);
        Self::interleave(&mut samples, self.config.seed);
        samples
    }

    fn interleave(samples: &mut [RawSample], seed: u64) {
        samples.sort_by_key(|s| {
            let mut hash = 0u64;
            for b in s.source.bytes() {
                hash = hash.wrapping_mul(31).wrapping_add(u64::from(b));
            }
            hash ^ seed
        });
    }
}

fn vary_params(family: Family, index: usize, rng: &mut StdRng) -> FamilyParams {
    let widths = [2u32, 3, 4, 4, 6, 8, 8, 12, 16];
    let width = widths[index % widths.len()];
    let depth = match family {
        Family::Pipeline => 2 + (index as u32 % 11),
        Family::RegisterFile => 2 + (index as u32 % 7),
        Family::Fifo => 2 + (index as u32 % 13),
        Family::ShiftRegister => 2 + (index as u32 % 14),
        Family::SequenceDetector => index as u32 % 5,
        Family::Arbiter => 2 + (index as u32 % 3),
        _ => 2 + (index as u32 % 6),
    };
    FamilyParams {
        width,
        depth,
        variant: rng.gen_range(0..4u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn length_bins_match_table2_boundaries() {
        assert_eq!(length_bin(1), "(0, 50]");
        assert_eq!(length_bin(50), "(0, 50]");
        assert_eq!(length_bin(51), "(50, 100]");
        assert_eq!(length_bin(100), "(50, 100]");
        assert_eq!(length_bin(150), "(100, 150]");
        assert_eq!(length_bin(200), "(150, 200]");
        assert_eq!(length_bin(201), "(200, +inf)");
        assert_eq!(length_bin_index(75), 1);
        assert_eq!(length_bin_index(999), 4);
    }

    #[test]
    fn golden_designs_all_compile() {
        let generator = CorpusGenerator::new(CorpusConfig {
            golden_designs: 32,
            ..CorpusConfig::default()
        });
        for design in generator.golden_designs() {
            assert!(
                svparse::compile_check(&design.source).is_ok(),
                "{} does not compile",
                design.module_name
            );
        }
    }

    #[test]
    fn corpus_is_deterministic_and_mixed() {
        let config = CorpusConfig {
            golden_designs: 24,
            ..CorpusConfig::default()
        };
        let a = CorpusGenerator::new(config).generate();
        let b = CorpusGenerator::new(config).generate();
        assert_eq!(a, b);
        assert!(a
            .iter()
            .any(|s| matches!(s.origin, SampleOrigin::Corrupted(_))));
        assert!(a
            .iter()
            .any(|s| matches!(s.origin, SampleOrigin::Duplicate)));
        assert!(a.len() > 24);
    }

    #[test]
    fn corpus_spans_multiple_length_bins() {
        let generator = CorpusGenerator::new(CorpusConfig {
            golden_designs: 64,
            ..CorpusConfig::default()
        });
        let bins: BTreeSet<usize> = generator
            .golden_designs()
            .iter()
            .map(|d| length_bin_index(d.source.lines().count()))
            .collect();
        assert!(
            bins.len() >= 2,
            "corpus should span multiple length bins, got {bins:?}"
        );
    }

    #[test]
    fn module_names_are_unique() {
        let generator = CorpusGenerator::new(CorpusConfig {
            golden_designs: 48,
            ..CorpusConfig::default()
        });
        let names: BTreeSet<String> = generator
            .golden_designs()
            .into_iter()
            .map(|d| d.module_name)
            .collect();
        assert_eq!(names.len(), 48);
    }

    #[test]
    fn mined_samples_are_interleaved_not_appended() {
        let generator = CorpusGenerator::new(CorpusConfig {
            golden_designs: 24,
            ..CorpusConfig::default()
        });
        let mined = vec![
            RawSample::mined(
                "module fuzz_case(input a, output y);\nassign y = !a;\nendmodule\n".to_string(),
                "fuzz-mined inverter".to_string(),
                Family::Counter,
            ),
            RawSample::mined(
                "module m(".to_string(),
                "fuzz-mined malformed input".to_string(),
                Family::Alu,
            ),
        ];
        let a = generator.generate_with_mined(mined.clone());
        let b = generator.generate_with_mined(mined.clone());
        assert_eq!(a, b, "mined interleave must be deterministic");
        assert_eq!(a.len(), generator.generate().len() + mined.len());
        let positions: Vec<usize> = a
            .iter()
            .enumerate()
            .filter(|(_, s)| s.origin == SampleOrigin::Mined)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 2);
        assert!(
            positions[0] < a.len() - 2,
            "mined samples should be interleaved, got positions {positions:?}"
        );
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let a = CorpusGenerator::new(CorpusConfig {
            golden_designs: 16,
            seed: 1,
            ..CorpusConfig::default()
        })
        .generate();
        let b = CorpusGenerator::new(CorpusConfig {
            golden_designs: 16,
            seed: 2,
            ..CorpusConfig::default()
        })
        .generate();
        assert_ne!(a, b);
    }
}
