//! # svsim — cycle-accurate RTL simulation with concurrent-assertion checking
//!
//! This crate is the reproduction's stand-in for the event-driven simulator the
//! AssertSolver paper uses to obtain assertion-failure logs.  It elaborates a
//! [`svparse::Module`] into a [`Design`], simulates it cycle-by-cycle against a
//! testbench stimulus, evaluates every concurrent assertion over the recorded trace
//! and renders tool-style logs.
//!
//! ## Quick example
//!
//! ```
//! use std::collections::BTreeMap;
//!
//! let module = svparse::parse_module(r#"
//! module counter(input clk, input rst_n, output reg [3:0] count);
//!   always @(posedge clk or negedge rst_n) begin
//!     if (!rst_n) count <= 4'd0;
//!     else count <= count + 4'd1;
//!   end
//!   property no_overflow;
//!     @(posedge clk) disable iff (!rst_n) count <= 4'd15;
//!   endproperty
//!   assert property (no_overflow);
//! endmodule
//! "#).map_err(|e| svsim::SimError::Elaboration(e.to_string()))?;
//!
//! let stimulus: Vec<svsim::InputVector> = (0..8)
//!     .map(|i| BTreeMap::from([("rst_n".to_string(), u64::from(i >= 1))]))
//!     .collect();
//! let outcome = svsim::simulate(&module, &stimulus)?;
//! assert!(outcome.passed());
//! # Ok::<(), svsim::SimError>(())
//! ```

pub mod elaborate;
pub mod eval;
pub mod log;
pub mod simulator;
pub mod sva;
pub mod value;

pub use elaborate::{Design, ElabError, ResolvedAssertion, SignalClass};
pub use eval::{eval_expr, eval_in_state, State};
pub use log::{failing_assertions_in_log, render_failure_line, render_log};
pub use simulator::{simulate, InputVector, SimError, SimOutcome, Simulator, Trace};
pub use sva::{check_assertion, check_assertions, AssertionFailure};
pub use value::Value;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Design>();
        assert_send_sync::<super::Trace>();
        assert_send_sync::<super::AssertionFailure>();
        assert_send_sync::<super::Value>();
        assert_send_sync::<super::SimError>();
    }
}
