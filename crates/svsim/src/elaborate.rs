//! Elaboration: turning a parsed [`Module`] into an executable [`Design`].
//!
//! Elaboration resolves signal widths, classifies processes into combinational and
//! clocked groups, identifies the clock and asynchronous reset, and collects the
//! properties/assertions that the SVA checker will evaluate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use svparse::{
    AssertTarget, AssertionItem, Item, Module, PortDir, PropertyDecl, Stmt, SymbolTable,
};

/// Error produced when a module cannot be elaborated into a simulatable design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElabError {
    message: String,
}

impl ElabError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.message)
    }
}

impl std::error::Error for ElabError {}

/// One resolved assertion: a property plus the name under which failures are reported.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedAssertion {
    /// Name used in failure logs (`label` if present, otherwise the property name).
    pub name: String,
    /// The property to check.
    pub property: PropertyDecl,
    /// Optional `$error` message attached to the assertion.
    pub message: Option<String>,
}

/// An elaborated, simulatable design.
#[derive(Debug, Clone)]
pub struct Design {
    /// The underlying module (canonical AST).
    pub module: Module,
    /// Symbol table with widths and kinds.
    pub symbols: SymbolTable,
    /// Names of the primary inputs, excluding the clock.
    pub inputs: Vec<String>,
    /// Names of the primary outputs.
    pub outputs: Vec<String>,
    /// The clock signal driving the clocked processes (and sampled by the SVAs).
    pub clock: Option<String>,
    /// The active-low asynchronous reset, when one is used.
    pub reset_n: Option<String>,
    /// Resolved assertions, in declaration order.
    pub assertions: Vec<ResolvedAssertion>,
    /// Widths of every signal the simulator needs to track.
    pub widths: BTreeMap<String, u32>,
}

impl Design {
    /// Elaborates a module.
    ///
    /// # Errors
    ///
    /// Returns an [`ElabError`] when the module references undeclared signals, uses
    /// more than one clock, or exceeds the 64-bit signal width supported by the
    /// simulator.
    pub fn elaborate(module: &Module) -> Result<Design, ElabError> {
        let report = svparse::sema::check_module(module);
        if let Some(err) = report.errors.first() {
            return Err(ElabError::new(format!("semantic error: {err}")));
        }
        let symbols = SymbolTable::build(module);

        let mut widths = BTreeMap::new();
        for info in symbols.signals() {
            if info.width > 64 {
                return Err(ElabError::new(format!(
                    "signal `{}` is {} bits wide; the simulator supports at most 64",
                    info.name, info.width
                )));
            }
            widths.insert(info.name.clone(), info.width);
        }

        // Identify the clock: the posedge signal of clocked always blocks, falling
        // back to the clock used by properties.
        let mut clock: Option<String> = None;
        let mut reset_n: Option<String> = None;
        for block in module.always_blocks() {
            if let Some(clk) = block.sensitivity.clock() {
                match &clock {
                    None => clock = Some(clk.signal.clone()),
                    Some(existing) if existing != &clk.signal => {
                        return Err(ElabError::new(format!(
                            "multiple clocks are not supported (`{existing}` and `{}`)",
                            clk.signal
                        )))
                    }
                    Some(_) => {}
                }
            }
            if let Some(rst) = block.sensitivity.async_reset() {
                reset_n.get_or_insert(rst.signal.clone());
            }
        }
        if clock.is_none() {
            if let Some(prop) = module.properties().next() {
                clock = Some(prop.clock.signal.clone());
            }
        }

        let inputs = module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Input)
            .filter(|p| Some(&p.name) != clock.as_ref())
            .map(|p| p.name.clone())
            .collect();
        let outputs = module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.name.clone())
            .collect();

        let assertions = resolve_assertions(module)?;

        Ok(Design {
            module: module.clone(),
            symbols,
            inputs,
            outputs,
            clock,
            reset_n,
            assertions,
            widths,
        })
    }

    /// Width of a signal (defaults to 1 for unknown names, which only happens for
    /// signals synthesised internally by the simulator).
    pub fn width(&self, name: &str) -> u32 {
        self.widths.get(name).copied().unwrap_or(1)
    }

    /// Returns `true` if the design has at least one concurrent assertion.
    pub fn has_assertions(&self) -> bool {
        !self.assertions.is_empty()
    }

    /// Names of registers driven by clocked always blocks.
    pub fn clocked_registers(&self) -> Vec<String> {
        let mut regs = Vec::new();
        for block in self.module.always_blocks() {
            if !block.sensitivity.is_combinational() {
                regs.extend(block.body.assigned_signals());
            }
        }
        regs.sort();
        regs.dedup();
        regs
    }

    /// Names of signals driven combinationally (continuous assigns and `always @(*)`).
    pub fn combinational_signals(&self) -> Vec<String> {
        let mut signals = Vec::new();
        for item in &self.module.items {
            match item {
                Item::Assign(a) => signals.extend(a.lhs.base_names()),
                Item::Always(b) if b.sensitivity.is_combinational() => {
                    signals.extend(b.body.assigned_signals())
                }
                _ => {}
            }
        }
        signals.sort();
        signals.dedup();
        signals
    }

    /// A conservative upper bound on how many cycles the deepest assertion looks ahead.
    pub fn max_property_horizon(&self) -> u32 {
        self.assertions
            .iter()
            .map(|a| a.property.body.horizon())
            .max()
            .unwrap_or(0)
    }
}

fn resolve_assertions(module: &Module) -> Result<Vec<ResolvedAssertion>, ElabError> {
    let mut out = Vec::new();
    for assertion in module.assertions() {
        let property = match &assertion.target {
            AssertTarget::Named(name) => module
                .property(name)
                .cloned()
                .ok_or_else(|| ElabError::new(format!("unknown property `{name}`")))?,
            AssertTarget::Inline(p) => (**p).clone(),
        };
        out.push(ResolvedAssertion {
            name: assertion_name(assertion),
            property,
            message: assertion.message.clone(),
        });
    }
    Ok(out)
}

fn assertion_name(assertion: &AssertionItem) -> String {
    assertion.display_name()
}

/// Returns `true` when the statement writes any signal through a blocking assignment —
/// used to sanity-check clocked blocks in tests.
pub fn uses_blocking_assignment(stmt: &Stmt) -> bool {
    let mut found = false;
    stmt.walk(&mut |s| {
        if matches!(s, Stmt::Blocking { .. }) {
            found = true;
        }
    });
    found
}

/// Classification of a signal from the simulator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalClass {
    /// Primary input driven by the testbench.
    Input,
    /// Register updated on the clock edge.
    ClockedReg,
    /// Combinationally driven signal.
    Combinational,
    /// Declared but never driven (held at zero).
    Undriven,
}

impl Design {
    /// Classifies a signal.
    pub fn classify(&self, name: &str) -> SignalClass {
        if self.inputs.iter().any(|i| i == name) {
            return SignalClass::Input;
        }
        if self.clocked_registers().iter().any(|r| r == name) {
            return SignalClass::ClockedReg;
        }
        if self.combinational_signals().iter().any(|c| c == name) {
            return SignalClass::Combinational;
        }
        SignalClass::Undriven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;

    const SRC: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high");
endmodule
"#;

    #[test]
    fn elaborates_clock_reset_and_io() {
        let design = Design::elaborate(&parse_module(SRC).unwrap()).unwrap();
        assert_eq!(design.clock.as_deref(), Some("clk"));
        assert_eq!(design.reset_n.as_deref(), Some("rst_n"));
        assert_eq!(
            design.inputs,
            vec!["rst_n".to_string(), "valid_in".to_string()]
        );
        assert_eq!(design.outputs, vec!["valid_out".to_string()]);
        assert_eq!(design.width("cnt"), 2);
        assert!(design.has_assertions());
        assert_eq!(design.assertions[0].name, "valid_out_check_assertion");
        assert_eq!(design.max_property_horizon(), 1);
    }

    #[test]
    fn classifies_signals() {
        let design = Design::elaborate(&parse_module(SRC).unwrap()).unwrap();
        assert_eq!(design.classify("valid_in"), SignalClass::Input);
        assert_eq!(design.classify("cnt"), SignalClass::ClockedReg);
        assert_eq!(design.classify("end_cnt"), SignalClass::Combinational);
    }

    #[test]
    fn rejects_undeclared_signals() {
        let src = "module m(input a, output b); assign b = ghost; endmodule";
        assert!(Design::elaborate(&parse_module(src).unwrap()).is_err());
    }

    #[test]
    fn rejects_multiple_clocks() {
        let src = r#"
module m(input clk1, input clk2, input a, output reg q1, output reg q2);
  always @(posedge clk1) q1 <= a;
  always @(posedge clk2) q2 <= a;
endmodule
"#;
        let err = Design::elaborate(&parse_module(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("multiple clocks"));
    }

    #[test]
    fn rejects_wide_signals() {
        let src = "module m(input [127:0] a, output [127:0] y); assign y = a; endmodule";
        assert!(Design::elaborate(&parse_module(src).unwrap()).is_err());
    }

    #[test]
    fn pure_combinational_design_has_no_clock() {
        let src = "module m(input a, input b, output y); assign y = a ^ b; endmodule";
        let design = Design::elaborate(&parse_module(src).unwrap()).unwrap();
        assert!(design.clock.is_none());
        assert!(!design.has_assertions());
        assert_eq!(design.clocked_registers().len(), 0);
    }
}
