//! Cycle-accurate simulation engine.
//!
//! The simulator advances one clock cycle per [`Simulator::step`] call:
//!
//! 1. testbench inputs for the new cycle are applied;
//! 2. combinational logic (continuous assigns and `always @(*)`) settles to a fixpoint;
//! 3. the resulting *pre-edge* state is recorded as the SVA sample for this cycle;
//! 4. clocked `always` blocks execute against the pre-edge state, their non-blocking
//!    updates are committed, and combinational logic settles again.
//!
//! This "preponed sampling" matches how concurrent assertions observe signals in event
//! driven simulators, so golden designs written in the paper's style pass their own
//! assertions and injected bugs fail them.

use crate::elaborate::Design;
use crate::eval::{eval_in_state, exec_stmt, read_state, State};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use svparse::{Item, Module};

/// One cycle's worth of primary-input values (signal name → integer value).
pub type InputVector = BTreeMap<String, u64>;

/// Maximum number of sweeps allowed for combinational settling before a loop is
/// reported.
const MAX_SETTLE_ITERATIONS: usize = 64;

/// Error produced while simulating.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// Combinational logic failed to reach a fixpoint (a combinational loop).
    CombinationalLoop {
        /// Module being simulated.
        module: String,
    },
    /// The design could not be elaborated.
    Elaboration(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { module } => {
                write!(f, "combinational loop detected in module `{module}`")
            }
            SimError::Elaboration(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<crate::elaborate::ElabError> for SimError {
    fn from(err: crate::elaborate::ElabError) -> Self {
        SimError::Elaboration(err.to_string())
    }
}

/// A recorded simulation trace: one sampled [`State`] per clock cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    samples: Vec<State>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no cycles have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sampled state at the given cycle.
    pub fn sample(&self, cycle: usize) -> Option<&State> {
        self.samples.get(cycle)
    }

    /// The value of a signal at a cycle (zero for unknown signals, `None` past the end).
    pub fn value(&self, name: &str, cycle: usize) -> Option<Value> {
        self.samples.get(cycle).map(|s| read_state(s, name))
    }

    /// The value of a signal `past` cycles before `cycle`, clamping at cycle 0.
    pub fn value_past(&self, name: &str, cycle: usize, past: u32) -> Value {
        let idx = cycle.saturating_sub(past as usize);
        self.samples
            .get(idx)
            .map(|s| read_state(s, name))
            .unwrap_or_else(|| Value::bit(false))
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: State) {
        self.samples.push(sample);
    }

    /// Iterates over the samples in cycle order.
    pub fn iter(&self) -> impl Iterator<Item = &State> {
        self.samples.iter()
    }
}

/// The interactive simulation engine.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    design: &'a Design,
    state: State,
    trace: Trace,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every signal initialised to zero, `initial` blocks
    /// executed, and combinational logic settled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if the design's combinational logic has
    /// no fixpoint.
    pub fn new(design: &'a Design) -> Result<Self, SimError> {
        let mut state: State = design
            .widths
            .iter()
            .map(|(name, width)| (name.clone(), Value::zero(*width)))
            .collect();

        // Execute initial blocks once (blocking semantics).
        let widths = design.widths.clone();
        let mut deferred = Vec::new();
        for item in &design.module.items {
            if let Item::Initial(block) = item {
                exec_stmt(&block.body, &mut state, &mut deferred, &widths);
            }
        }
        for (name, value) in deferred.drain(..) {
            state.insert(name, value);
        }

        let mut sim = Self {
            design,
            state,
            trace: Trace::new(),
        };
        sim.settle()?;
        Ok(sim)
    }

    /// The current (post-step) state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The trace of pre-edge samples recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Advances the simulation by one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if combinational logic fails to settle.
    pub fn step(&mut self, inputs: &InputVector) -> Result<(), SimError> {
        // 1. Apply testbench inputs.
        for (name, value) in inputs {
            let width = self.design.width(name);
            self.state.insert(name.clone(), Value::new(*value, width));
        }

        // 2. Settle combinational logic → pre-edge state.
        self.settle()?;

        // 3. Record the SVA sample for this cycle.
        self.trace.push(self.state.clone());

        // 4. Clock edge: run clocked blocks against the pre-edge state, commit
        //    non-blocking updates, settle again.
        let widths = self.design.widths.clone();
        let mut deferred: Vec<(String, Value)> = Vec::new();
        for block in self.design.module.always_blocks() {
            if block.sensitivity.is_combinational() {
                continue;
            }
            let mut shadow = self.state.clone();
            exec_stmt(&block.body, &mut shadow, &mut deferred, &widths);
        }
        for (name, value) in deferred {
            let width = self.design.width(&name);
            self.state.insert(name, value.resize(width));
        }
        self.settle()?;
        Ok(())
    }

    /// Runs the simulator over a full stimulus, returning the recorded trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalLoop`] if combinational logic fails to settle
    /// at any cycle.
    pub fn run(design: &'a Design, stimulus: &[InputVector]) -> Result<Trace, SimError> {
        let mut sim = Simulator::new(design)?;
        for inputs in stimulus {
            sim.step(inputs)?;
        }
        Ok(sim.into_trace())
    }

    fn settle(&mut self) -> Result<(), SimError> {
        let widths = self.design.widths.clone();
        for _ in 0..MAX_SETTLE_ITERATIONS {
            let before = self.state.clone();
            for item in &self.design.module.items {
                match item {
                    Item::Assign(assign) => {
                        let value = eval_in_state(&assign.rhs, &self.state);
                        let mut deferred = Vec::new();
                        crate::eval::apply_assignment(
                            &assign.lhs,
                            value,
                            &mut self.state,
                            crate::eval::AssignMode::Immediate,
                            &mut deferred,
                            &widths,
                        );
                    }
                    Item::Always(block) if block.sensitivity.is_combinational() => {
                        let mut deferred = Vec::new();
                        exec_stmt(&block.body, &mut self.state, &mut deferred, &widths);
                        for (name, value) in deferred {
                            self.state.insert(name, value);
                        }
                    }
                    _ => {}
                }
            }
            if self.state == before {
                return Ok(());
            }
        }
        Err(SimError::CombinationalLoop {
            module: self.design.module.name.clone(),
        })
    }
}

/// A self-contained simulation outcome: the trace, assertion failures and a textual
/// log in the format the repair model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The recorded trace of pre-edge samples.
    pub trace: Trace,
    /// All assertion failures detected over the trace.
    pub failures: Vec<crate::sva::AssertionFailure>,
    /// Tool-style textual log (see [`crate::log`]).
    pub log: String,
}

impl SimOutcome {
    /// Returns `true` if no assertion failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Elaborates, simulates and checks a module in one call.
///
/// # Errors
///
/// Returns a [`SimError`] if the module cannot be elaborated or simulated.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// let module = svparse::parse_module(
///     "module m(input clk, input a, output reg q);\n  always @(posedge clk) q <= a;\nendmodule",
/// ).map_err(|e| svsim::SimError::Elaboration(e.to_string()))?;
/// let stimulus: Vec<svsim::InputVector> = (0..4)
///     .map(|i| BTreeMap::from([("a".to_string(), u64::from(i % 2 == 0))]))
///     .collect();
/// let outcome = svsim::simulate(&module, &stimulus)?;
/// assert_eq!(outcome.trace.len(), 4);
/// # Ok::<(), svsim::SimError>(())
/// ```
pub fn simulate(module: &Module, stimulus: &[InputVector]) -> Result<SimOutcome, SimError> {
    let design = Design::elaborate(module)?;
    let trace = Simulator::run(&design, stimulus)?;
    let failures = crate::sva::check_assertions(&design, &trace);
    let log = crate::log::render_log(&design, &trace, &failures);
    Ok(SimOutcome {
        trace,
        failures,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;

    fn vecs(pairs: &[&[(&str, u64)]]) -> Vec<InputVector> {
        pairs
            .iter()
            .map(|cycle| {
                cycle
                    .iter()
                    .map(|(n, v)| (n.to_string(), *v))
                    .collect::<InputVector>()
            })
            .collect()
    }

    #[test]
    fn counter_counts() {
        let module = parse_module(
            r#"
module counter(input clk, input rst_n, input en, output reg [3:0] count);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 4'd0;
    else if (en) count <= count + 4'd1;
  end
endmodule
"#,
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stimulus = vecs(&[
            &[("rst_n", 0), ("en", 0)],
            &[("rst_n", 1), ("en", 1)],
            &[("rst_n", 1), ("en", 1)],
            &[("rst_n", 1), ("en", 0)],
            &[("rst_n", 1), ("en", 1)],
        ]);
        let trace = Simulator::run(&design, &stimulus).unwrap();
        // Pre-edge samples: count lags the enable by one cycle.
        let counts: Vec<u64> = (0..5)
            .map(|t| trace.value("count", t).unwrap().bits())
            .collect();
        assert_eq!(counts, vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn combinational_logic_settles_through_chain() {
        let module = parse_module(
            r#"
module chain(input a, output y);
  wire m1;
  wire m2;
  assign m1 = !a;
  assign m2 = !m1;
  assign y = !m2;
endmodule
"#,
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stimulus = vecs(&[&[("a", 1)], &[("a", 0)]]);
        let trace = Simulator::run(&design, &stimulus).unwrap();
        assert_eq!(trace.value("y", 0).unwrap().bits(), 0);
        assert_eq!(trace.value("y", 1).unwrap().bits(), 1);
    }

    #[test]
    fn combinational_loop_is_detected() {
        let module = parse_module(
            r#"
module settles(input a, output y);
  wire p;
  assign p = !a;
  assign y = p & a;
endmodule
"#,
        )
        .unwrap();
        let looped = parse_module(
            r#"
module loopy(input a, output y);
  assign y = !y;
endmodule
"#,
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        assert!(Simulator::run(&design, &vecs(&[&[("a", 1)]])).is_ok());
        let design = Design::elaborate(&looped).unwrap();
        let err = Simulator::run(&design, &vecs(&[&[("a", 1)]])).unwrap_err();
        assert!(matches!(err, SimError::CombinationalLoop { .. }));
    }

    #[test]
    fn initial_block_presets_register() {
        let module = parse_module(
            r#"
module preset(input clk, output reg [3:0] q);
  initial begin
    q = 4'd9;
  end
  always @(posedge clk) q <= q;
endmodule
"#,
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        let trace = Simulator::run(&design, &vecs(&[&[], &[]])).unwrap();
        assert_eq!(trace.value("q", 0).unwrap().bits(), 9);
        assert_eq!(trace.value("q", 1).unwrap().bits(), 9);
    }

    #[test]
    fn blocking_assignments_in_comb_block() {
        let module = parse_module(
            r#"
module comb(input [3:0] a, input [3:0] b, output reg [3:0] big);
  always @(*) begin
    if (a > b) big = a;
    else big = b;
  end
endmodule
"#,
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stimulus = vecs(&[&[("a", 3), ("b", 9)], &[("a", 12), ("b", 5)]]);
        let trace = Simulator::run(&design, &stimulus).unwrap();
        assert_eq!(trace.value("big", 0).unwrap().bits(), 9);
        assert_eq!(trace.value("big", 1).unwrap().bits(), 12);
    }

    #[test]
    fn trace_value_past_clamps_at_zero() {
        let mut trace = Trace::new();
        let mut s0 = State::new();
        s0.insert("x".into(), Value::new(1, 4));
        let mut s1 = State::new();
        s1.insert("x".into(), Value::new(2, 4));
        trace.push(s0);
        trace.push(s1);
        assert_eq!(trace.value_past("x", 1, 0).bits(), 2);
        assert_eq!(trace.value_past("x", 1, 1).bits(), 1);
        assert_eq!(trace.value_past("x", 1, 5).bits(), 1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn simulate_helper_produces_log() {
        let module = parse_module(
            "module m(input clk, input a, output reg q);\n  always @(posedge clk) q <= a;\nendmodule",
        )
        .unwrap();
        let stimulus = vecs(&[&[("a", 1)], &[("a", 0)]]);
        let outcome = simulate(&module, &stimulus).unwrap();
        assert!(outcome.passed());
        assert!(outcome.log.contains("module m"));
    }
}
