//! Concurrent SystemVerilog-assertion evaluation over recorded traces.
//!
//! The checker implements the temporal fragment used throughout the workspace:
//! boolean expressions, `|->` / `|=>` implications, `##N` delays, `not`, a
//! `disable iff` guard and the sampled-value functions `$past`, `$rose`, `$fell`
//! and `$stable`.

use crate::elaborate::{Design, ResolvedAssertion};
use crate::eval::eval_expr;
use crate::simulator::Trace;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use svparse::{Expr, PropExpr};

/// One assertion failure detected on a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssertionFailure {
    /// Name of the failing assertion (label or property name).
    pub assertion: String,
    /// Cycle (0-based) at which the failing attempt started.
    pub start_cycle: usize,
    /// Cycle at which the violation was observed.
    pub fail_cycle: usize,
    /// Optional `$error` message attached to the assertion.
    pub message: Option<String>,
}

impl fmt::Display for AssertionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed assertion {} (attempt started at cycle {}, violated at cycle {})",
            self.assertion, self.start_cycle, self.fail_cycle
        )
    }
}

/// The outcome of evaluating one property attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attempt {
    /// The attempt definitively holds (including vacuous passes).
    Holds,
    /// The attempt definitively fails at the given cycle.
    Fails(usize),
    /// The trace ended before the attempt could be decided.
    Pending,
}

/// Checks every assertion of the design against the trace.
///
/// Pending attempts at the end of the trace are not reported as failures, matching
/// simulator behaviour where in-flight assertion attempts are discarded at end of
/// simulation.
pub fn check_assertions(design: &Design, trace: &Trace) -> Vec<AssertionFailure> {
    let mut failures = Vec::new();
    for assertion in &design.assertions {
        failures.extend(check_assertion(assertion, trace));
    }
    failures
}

/// Checks a single assertion against the trace, one attempt per start cycle.
pub fn check_assertion(assertion: &ResolvedAssertion, trace: &Trace) -> Vec<AssertionFailure> {
    let mut failures = Vec::new();
    for start in 0..trace.len() {
        if let Some(guard) = &assertion.property.disable_iff {
            if eval_at(guard, trace, start).is_true() {
                continue;
            }
        }
        match eval_prop(
            &assertion.property.body,
            trace,
            start,
            &assertion.property.disable_iff,
        ) {
            Attempt::Fails(cycle) => failures.push(AssertionFailure {
                assertion: assertion.name.clone(),
                start_cycle: start,
                fail_cycle: cycle,
                message: assertion.message.clone(),
            }),
            Attempt::Holds | Attempt::Pending => {}
        }
    }
    failures
}

/// Evaluates a boolean expression at a trace cycle, supporting `$past`-style reads.
pub fn eval_at(expr: &Expr, trace: &Trace, cycle: usize) -> Value {
    eval_expr(expr, &|name, past| trace.value_past(name, cycle, past))
}

fn eval_prop(prop: &PropExpr, trace: &Trace, cycle: usize, guard: &Option<Expr>) -> Attempt {
    match eval_sequence(prop, trace, cycle, guard) {
        SeqResult::Pending => Attempt::Pending,
        SeqResult::Disabled => Attempt::Holds,
        SeqResult::Match { .. } => Attempt::Holds,
        SeqResult::NoMatch { at } => Attempt::Fails(at),
    }
}

/// Result of evaluating a sequence/property element starting at a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqResult {
    /// The element holds and its evaluation finished at `end_cycle`.
    Match { end_cycle: usize },
    /// The element definitively does not hold; `at` is the observation cycle.
    NoMatch { at: usize },
    /// The trace ended before the element could be decided.
    Pending,
    /// A `disable iff` guard fired during evaluation; the attempt is discarded.
    Disabled,
}

fn eval_sequence(prop: &PropExpr, trace: &Trace, cycle: usize, guard: &Option<Expr>) -> SeqResult {
    if cycle >= trace.len() {
        return SeqResult::Pending;
    }
    if let Some(g) = guard {
        if eval_at(g, trace, cycle).is_true() {
            return SeqResult::Disabled;
        }
    }
    match prop {
        PropExpr::Expr(e) => {
            if eval_at(e, trace, cycle).is_true() {
                SeqResult::Match { end_cycle: cycle }
            } else {
                SeqResult::NoMatch { at: cycle }
            }
        }
        PropExpr::Not(inner) => match eval_sequence(inner, trace, cycle, guard) {
            SeqResult::Match { end_cycle } => SeqResult::NoMatch { at: end_cycle },
            SeqResult::NoMatch { at } => SeqResult::Match { end_cycle: at },
            other => other,
        },
        PropExpr::Delay { lhs, cycles, rhs } => {
            let (start_of_rhs, lhs_end) = match lhs {
                Some(l) => match eval_sequence(l, trace, cycle, guard) {
                    SeqResult::Match { end_cycle } => (end_cycle + *cycles as usize, end_cycle),
                    other => return other,
                },
                None => (cycle + *cycles as usize, cycle),
            };
            let _ = lhs_end;
            eval_sequence(rhs, trace, start_of_rhs, guard)
        }
        PropExpr::Implication {
            antecedent,
            consequent,
            overlapping,
        } => match eval_sequence(antecedent, trace, cycle, guard) {
            SeqResult::NoMatch { .. } => SeqResult::Match { end_cycle: cycle },
            SeqResult::Pending => SeqResult::Pending,
            SeqResult::Disabled => SeqResult::Disabled,
            SeqResult::Match { end_cycle } => {
                let start = if *overlapping {
                    end_cycle
                } else {
                    end_cycle + 1
                };
                eval_sequence(consequent, trace, start, guard)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::Design;
    use crate::simulator::{InputVector, Simulator};
    use std::collections::BTreeMap;
    use svparse::parse_module;

    const GOLDEN: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    /// The paper's Fig. 1 bug: `else if (!end_cnt) valid_out <= 1;` instead of
    /// `else if (end_cnt)`.
    const BUGGY: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (!end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    fn stimulus(cycles: usize) -> Vec<InputVector> {
        (0..cycles)
            .map(|i| {
                BTreeMap::from([
                    ("rst_n".to_string(), u64::from(i >= 1)),
                    ("valid_in".to_string(), 1u64),
                ])
            })
            .collect()
    }

    #[test]
    fn golden_design_passes_assertion() {
        let module = parse_module(GOLDEN).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let trace = Simulator::run(&design, &stimulus(16)).unwrap();
        let failures = check_assertions(&design, &trace);
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
        // The antecedent must actually trigger, otherwise the pass is vacuous.
        let triggered = (0..trace.len()).any(|t| trace.value("end_cnt", t).unwrap().is_true());
        assert!(triggered, "stimulus never exercised the antecedent");
    }

    #[test]
    fn paper_fig1_bug_fails_assertion() {
        let module = parse_module(BUGGY).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let trace = Simulator::run(&design, &stimulus(16)).unwrap();
        let failures = check_assertions(&design, &trace);
        assert!(!failures.is_empty());
        assert_eq!(failures[0].assertion, "valid_out_check_assertion");
        assert_eq!(
            failures[0].message.as_deref(),
            Some("valid_out should be high when end_cnt high")
        );
        assert!(failures[0].fail_cycle > failures[0].start_cycle);
    }

    #[test]
    fn disable_iff_masks_reset_cycles() {
        let module = parse_module(BUGGY).unwrap();
        let design = Design::elaborate(&module).unwrap();
        // Keep reset asserted the whole time: the buggy design can never fail because
        // every attempt is disabled.
        let stim: Vec<InputVector> = (0..8)
            .map(|_| BTreeMap::from([("rst_n".to_string(), 0u64), ("valid_in".to_string(), 1u64)]))
            .collect();
        let trace = Simulator::run(&design, &stim).unwrap();
        assert!(check_assertions(&design, &trace).is_empty());
    }

    #[test]
    fn pending_attempt_at_end_of_trace_is_not_a_failure() {
        let module = parse_module(GOLDEN).unwrap();
        let design = Design::elaborate(&module).unwrap();
        // Stop the trace right when the antecedent fires so the ##1 consequent is
        // still pending.
        let mut stim = stimulus(16);
        let trace_full = Simulator::run(&design, &stim).unwrap();
        let first_trigger = (0..trace_full.len())
            .find(|t| trace_full.value("end_cnt", *t).unwrap().is_true())
            .expect("antecedent must trigger");
        stim.truncate(first_trigger + 1);
        let trace = Simulator::run(&design, &stim).unwrap();
        assert!(check_assertions(&design, &trace).is_empty());
    }

    #[test]
    fn nonoverlapping_implication_and_past() {
        let src = r#"
module pipe(input clk, input rst_n, input req, output reg ack, output reg [3:0] held);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) ack <= 0;
    else ack <= req;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) held <= 4'd0;
    else held <= held + {3'd0, req};
  end
  property req_ack;
    @(posedge clk) disable iff (!rst_n) req |=> ack;
  endproperty
  property ack_past;
    @(posedge clk) disable iff (!rst_n) ack |-> $past(req);
  endproperty
  assert property (req_ack);
  assert property (ack_past);
endmodule
"#;
        let module = parse_module(src).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stim: Vec<InputVector> = (0..12)
            .map(|i| {
                BTreeMap::from([
                    ("rst_n".to_string(), u64::from(i >= 1)),
                    ("req".to_string(), u64::from(i % 3 == 0)),
                ])
            })
            .collect();
        let trace = Simulator::run(&design, &stim).unwrap();
        let failures = check_assertions(&design, &trace);
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn rose_and_stable_properties() {
        let src = r#"
module edgecheck(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 0;
    else q <= d;
  end
  property rose_q;
    @(posedge clk) disable iff (!rst_n) $rose(d) |=> q;
  endproperty
  assert property (rose_q);
endmodule
"#;
        let module = parse_module(src).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stim: Vec<InputVector> = (0..10)
            .map(|i| {
                BTreeMap::from([
                    ("rst_n".to_string(), u64::from(i >= 1)),
                    ("d".to_string(), u64::from(i % 2 == 1)),
                ])
            })
            .collect();
        let trace = Simulator::run(&design, &stim).unwrap();
        assert!(check_assertions(&design, &trace).is_empty());
    }

    #[test]
    fn failing_immediate_boolean_property() {
        let src = r#"
module always_true(input clk, input a, output reg q);
  always @(posedge clk) q <= a;
  property never_high;
    @(posedge clk) q == 0;
  endproperty
  assert property (never_high);
endmodule
"#;
        let module = parse_module(src).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stim: Vec<InputVector> = (0..6)
            .map(|_| BTreeMap::from([("a".to_string(), 1u64)]))
            .collect();
        let trace = Simulator::run(&design, &stim).unwrap();
        let failures = check_assertions(&design, &trace);
        assert!(!failures.is_empty());
    }

    #[test]
    fn failure_display_contains_cycles() {
        let f = AssertionFailure {
            assertion: "p".into(),
            start_cycle: 3,
            fail_cycle: 4,
            message: None,
        };
        let text = f.to_string();
        assert!(text.contains("cycle 3"));
        assert!(text.contains("cycle 4"));
    }
}
