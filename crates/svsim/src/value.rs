//! Two-state bit-vector values.
//!
//! The simulator is two-state (no `x`/`z`): registers power up at zero, which is the
//! behaviour SymbiYosys-style bounded checks assume with `--reset-zero` style options.
//! Values are stored as `u64` with an explicit width; every operation masks its result
//! to the proper width so overflow semantics match Verilog's modular arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value together with its bit width (1 to 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Value {
    bits: u64,
    width: u32,
}

impl Value {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u32 = 64;

    /// Creates a value, masking `bits` to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Value::MAX_WIDTH`].
    pub fn new(bits: u64, width: u32) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "value width must be in 1..=64, got {width}"
        );
        Self {
            bits: bits & mask(width),
            width,
        }
    }

    /// A single-bit value from a boolean.
    pub fn bit(b: bool) -> Self {
        Self::new(u64::from(b), 1)
    }

    /// A zero value of the given width.
    pub fn zero(width: u32) -> Self {
        Self::new(0, width)
    }

    /// The raw bits (already masked to the width).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// `true` when any bit is set (Verilog truthiness).
    pub fn is_true(&self) -> bool {
        self.bits != 0
    }

    /// Reinterprets the value at a different width (truncating or zero-extending).
    pub fn resize(&self, width: u32) -> Value {
        Value::new(self.bits, width)
    }

    /// Extracts a single bit as a 1-bit value; out-of-range indices read as zero.
    pub fn extract_bit(&self, index: u32) -> Value {
        if index >= self.width {
            Value::bit(false)
        } else {
            Value::bit((self.bits >> index) & 1 == 1)
        }
    }

    /// Extracts the inclusive bit range `[msb:lsb]`.
    pub fn extract_range(&self, msb: u32, lsb: u32) -> Value {
        let (hi, lo) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
        let width = hi - lo + 1;
        Value::new(self.bits >> lo, width.min(Self::MAX_WIDTH))
    }

    /// Writes a single bit, returning the updated value; out-of-range writes are ignored.
    pub fn with_bit(&self, index: u32, bit: bool) -> Value {
        if index >= self.width {
            return *self;
        }
        let cleared = self.bits & !(1u64 << index);
        Value::new(cleared | (u64::from(bit) << index), self.width)
    }

    /// Writes the inclusive range `[msb:lsb]` from `value`, returning the updated value.
    pub fn with_range(&self, msb: u32, lsb: u32, value: u64) -> Value {
        let (hi, lo) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
        if lo >= self.width {
            return *self;
        }
        let hi = hi.min(self.width - 1);
        let field_width = hi - lo + 1;
        let field_mask = mask(field_width) << lo;
        let new_bits = (self.bits & !field_mask) | ((value & mask(field_width)) << lo);
        Value::new(new_bits, self.width)
    }

    /// Reduction AND of all bits.
    pub fn reduce_and(&self) -> Value {
        Value::bit(self.bits == mask(self.width))
    }

    /// Reduction OR of all bits.
    pub fn reduce_or(&self) -> Value {
        Value::bit(self.bits != 0)
    }

    /// Reduction XOR (parity) of all bits.
    pub fn reduce_xor(&self) -> Value {
        Value::bit(self.bits.count_ones() % 2 == 1)
    }

    /// Bitwise complement within the value's width.
    pub fn not(&self) -> Value {
        Value::new(!self.bits, self.width)
    }

    /// Two's-complement negation within the value's width.
    pub fn neg(&self) -> Value {
        Value::new(self.bits.wrapping_neg(), self.width)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

/// Mask with the low `width` bits set.
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Width-aware binary operations used by the expression evaluator.
pub mod ops {
    use super::{mask, Value};

    fn arith_width(a: Value, b: Value) -> u32 {
        a.width().max(b.width())
    }

    /// Modular addition at the wider operand width.
    pub fn add(a: Value, b: Value) -> Value {
        Value::new(a.bits().wrapping_add(b.bits()), arith_width(a, b))
    }

    /// Modular subtraction at the wider operand width.
    pub fn sub(a: Value, b: Value) -> Value {
        Value::new(a.bits().wrapping_sub(b.bits()), arith_width(a, b))
    }

    /// Modular multiplication at the wider operand width.
    pub fn mul(a: Value, b: Value) -> Value {
        Value::new(a.bits().wrapping_mul(b.bits()), arith_width(a, b))
    }

    /// Division; division by zero yields zero (the two-state stand-in for `x`).
    pub fn div(a: Value, b: Value) -> Value {
        let q = if b.bits() == 0 {
            0
        } else {
            a.bits() / b.bits()
        };
        Value::new(q, arith_width(a, b))
    }

    /// Remainder; modulo zero yields zero.
    pub fn rem(a: Value, b: Value) -> Value {
        let r = if b.bits() == 0 {
            0
        } else {
            a.bits() % b.bits()
        };
        Value::new(r, arith_width(a, b))
    }

    /// Logical shift left at the left operand's width.
    pub fn shl(a: Value, b: Value) -> Value {
        let shift = b.bits().min(64) as u32;
        let bits = if shift >= 64 { 0 } else { a.bits() << shift };
        Value::new(bits, a.width())
    }

    /// Logical shift right at the left operand's width.
    pub fn shr(a: Value, b: Value) -> Value {
        let shift = b.bits().min(64) as u32;
        let bits = if shift >= 64 { 0 } else { a.bits() >> shift };
        Value::new(bits, a.width())
    }

    /// Bitwise AND at the wider operand width.
    pub fn bit_and(a: Value, b: Value) -> Value {
        Value::new(a.bits() & b.bits(), arith_width(a, b))
    }

    /// Bitwise OR at the wider operand width.
    pub fn bit_or(a: Value, b: Value) -> Value {
        Value::new(a.bits() | b.bits(), arith_width(a, b))
    }

    /// Bitwise XOR at the wider operand width.
    pub fn bit_xor(a: Value, b: Value) -> Value {
        Value::new(a.bits() ^ b.bits(), arith_width(a, b))
    }

    /// Unsigned comparison operators returning 1-bit results.
    pub fn lt(a: Value, b: Value) -> Value {
        Value::bit(a.bits() < b.bits())
    }
    /// `<=`
    pub fn le(a: Value, b: Value) -> Value {
        Value::bit(a.bits() <= b.bits())
    }
    /// `>`
    pub fn gt(a: Value, b: Value) -> Value {
        Value::bit(a.bits() > b.bits())
    }
    /// `>=`
    pub fn ge(a: Value, b: Value) -> Value {
        Value::bit(a.bits() >= b.bits())
    }
    /// `==`
    pub fn eq(a: Value, b: Value) -> Value {
        Value::bit(a.bits() == b.bits())
    }
    /// `!=`
    pub fn ne(a: Value, b: Value) -> Value {
        Value::bit(a.bits() != b.bits())
    }
    /// `&&`
    pub fn logical_and(a: Value, b: Value) -> Value {
        Value::bit(a.is_true() && b.is_true())
    }
    /// `||`
    pub fn logical_or(a: Value, b: Value) -> Value {
        Value::bit(a.is_true() || b.is_true())
    }

    /// Concatenation `{a, b}` where `a` occupies the high bits.
    pub fn concat(a: Value, b: Value) -> Value {
        let width = (a.width() + b.width()).min(Value::MAX_WIDTH);
        let bits = (a.bits() << b.width().min(63)) | b.bits();
        Value::new(bits & mask(width), width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_on_construction() {
        let v = Value::new(0xFFFF, 4);
        assert_eq!(v.bits(), 0xF);
        assert_eq!(v.width(), 4);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = Value::new(1, 0);
    }

    #[test]
    fn truthiness() {
        assert!(Value::new(2, 4).is_true());
        assert!(!Value::zero(8).is_true());
    }

    #[test]
    fn bit_extraction_and_update() {
        let v = Value::new(0b1010, 4);
        assert!(v.extract_bit(1).is_true());
        assert!(!v.extract_bit(0).is_true());
        assert!(!v.extract_bit(9).is_true());
        assert_eq!(v.with_bit(0, true).bits(), 0b1011);
        assert_eq!(v.with_bit(9, true).bits(), 0b1010);
    }

    #[test]
    fn range_extraction_and_update() {
        let v = Value::new(0b1100_1010, 8);
        assert_eq!(v.extract_range(7, 4).bits(), 0b1100);
        assert_eq!(v.extract_range(3, 0).bits(), 0b1010);
        assert_eq!(v.with_range(3, 0, 0b0101).bits(), 0b1100_0101);
        assert_eq!(v.with_range(7, 4, 0xFF).bits(), 0b1111_1010);
    }

    #[test]
    fn reductions() {
        assert!(Value::new(0b1111, 4).reduce_and().is_true());
        assert!(!Value::new(0b1110, 4).reduce_and().is_true());
        assert!(Value::new(0b0100, 4).reduce_or().is_true());
        assert!(Value::new(0b0110, 4).reduce_xor().bits() == 0);
        assert!(Value::new(0b0111, 4).reduce_xor().is_true());
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let a = Value::new(0xF, 4);
        let b = Value::new(0x1, 4);
        assert_eq!(ops::add(a, b).bits(), 0);
        assert_eq!(ops::sub(Value::new(0, 4), b).bits(), 0xF);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let a = Value::new(9, 4);
        assert_eq!(ops::div(a, Value::zero(4)).bits(), 0);
        assert_eq!(ops::rem(a, Value::zero(4)).bits(), 0);
    }

    #[test]
    fn shifts_keep_lhs_width() {
        let a = Value::new(0b0011, 4);
        assert_eq!(ops::shl(a, Value::new(2, 4)).bits(), 0b1100);
        assert_eq!(ops::shl(a, Value::new(3, 4)).bits(), 0b1000);
        assert_eq!(ops::shr(a, Value::new(1, 4)).bits(), 0b0001);
        assert_eq!(ops::shl(a, Value::new(70, 8)).bits(), 0);
    }

    #[test]
    fn comparisons_are_one_bit() {
        let a = Value::new(3, 4);
        let b = Value::new(5, 4);
        assert!(ops::lt(a, b).is_true());
        assert!(ops::le(a, a).is_true());
        assert!(ops::ne(a, b).is_true());
        assert_eq!(ops::eq(a, b).width(), 1);
    }

    #[test]
    fn concat_orders_operands() {
        let hi = Value::new(0b10, 2);
        let lo = Value::new(0b01, 2);
        let joined = ops::concat(hi, lo);
        assert_eq!(joined.bits(), 0b1001);
        assert_eq!(joined.width(), 4);
    }

    #[test]
    fn complement_and_negation() {
        let v = Value::new(0b0101, 4);
        assert_eq!(v.not().bits(), 0b1010);
        assert_eq!(Value::new(1, 4).neg().bits(), 0xF);
    }

    #[test]
    fn display_format() {
        assert_eq!(Value::new(10, 4).to_string(), "4'd10");
    }
}
