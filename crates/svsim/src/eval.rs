//! Expression evaluation and procedural statement execution.

use crate::value::{ops, Value};
use std::collections::BTreeMap;
use svparse::{BinaryOp, Expr, LValue, Stmt, UnaryOp};

/// The simulator's view of all signal values at one instant.
pub type State = BTreeMap<String, Value>;

/// A reader callback: `(signal name, cycles in the past)` → value.
///
/// Plain design evaluation always asks for `past = 0`; the SVA checker supplies a
/// reader that indexes into the recorded trace so `$past`, `$rose`, `$fell` and
/// `$stable` work.
pub type Reader<'a> = dyn Fn(&str, u32) -> Value + 'a;

/// Evaluates an expression using the supplied reader.
///
/// Unknown constructs never panic: reads of undeclared signals are the reader's
/// responsibility (the simulator returns zero of width 1), and width rules follow the
/// usual Verilog conventions (arithmetic at the wider operand width, comparisons and
/// reductions produce single bits).
pub fn eval_expr(expr: &Expr, read: &Reader<'_>) -> Value {
    eval_shifted(expr, read, 0)
}

fn eval_shifted(expr: &Expr, read: &Reader<'_>, shift: u32) -> Value {
    match expr {
        Expr::Number(lit) => {
            let width = lit.width.unwrap_or(32).clamp(1, Value::MAX_WIDTH);
            Value::new(lit.value, width)
        }
        Expr::Ident(name) => read(name, shift),
        Expr::Unary(op, inner) => {
            let v = eval_shifted(inner, read, shift);
            match op {
                UnaryOp::LogicalNot => Value::bit(!v.is_true()),
                UnaryOp::BitNot => v.not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::RedAnd => v.reduce_and(),
                UnaryOp::RedOr => v.reduce_or(),
                UnaryOp::RedXor => v.reduce_xor(),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let a = eval_shifted(lhs, read, shift);
            let b = eval_shifted(rhs, read, shift);
            match op {
                BinaryOp::Add => ops::add(a, b),
                BinaryOp::Sub => ops::sub(a, b),
                BinaryOp::Mul => ops::mul(a, b),
                BinaryOp::Div => ops::div(a, b),
                BinaryOp::Mod => ops::rem(a, b),
                BinaryOp::Shl => ops::shl(a, b),
                BinaryOp::Shr => ops::shr(a, b),
                BinaryOp::Lt => ops::lt(a, b),
                BinaryOp::Le => ops::le(a, b),
                BinaryOp::Gt => ops::gt(a, b),
                BinaryOp::Ge => ops::ge(a, b),
                BinaryOp::Eq => ops::eq(a, b),
                BinaryOp::Ne => ops::ne(a, b),
                BinaryOp::BitAnd => ops::bit_and(a, b),
                BinaryOp::BitOr => ops::bit_or(a, b),
                BinaryOp::BitXor => ops::bit_xor(a, b),
                BinaryOp::LogicalAnd => ops::logical_and(a, b),
                BinaryOp::LogicalOr => ops::logical_or(a, b),
            }
        }
        Expr::Ternary(cond, a, b) => {
            if eval_shifted(cond, read, shift).is_true() {
                eval_shifted(a, read, shift)
            } else {
                eval_shifted(b, read, shift)
            }
        }
        Expr::Bit(name, index) => {
            let base = read(name, shift);
            let idx = eval_shifted(index, read, shift).bits() as u32;
            base.extract_bit(idx)
        }
        Expr::Part(name, range) => {
            let base = read(name, shift);
            base.extract_range(range.msb, range.lsb)
        }
        Expr::Concat(parts) => {
            let mut iter = parts.iter();
            let first = iter
                .next()
                .map(|p| eval_shifted(p, read, shift))
                .unwrap_or_else(|| Value::bit(false));
            iter.fold(first, |acc, part| {
                ops::concat(acc, eval_shifted(part, read, shift))
            })
        }
        Expr::Repeat(count, inner) => {
            let unit = eval_shifted(inner, read, shift);
            let mut acc = unit;
            for _ in 1..(*count).max(1) {
                acc = ops::concat(acc, unit);
            }
            acc
        }
        Expr::Past(inner, cycles) => eval_shifted(inner, read, shift + cycles),
        Expr::Rose(inner) => {
            let now = eval_shifted(inner, read, shift);
            let before = eval_shifted(inner, read, shift + 1);
            Value::bit(now.is_true() && !before.is_true())
        }
        Expr::Fell(inner) => {
            let now = eval_shifted(inner, read, shift);
            let before = eval_shifted(inner, read, shift + 1);
            Value::bit(!now.is_true() && before.is_true())
        }
        Expr::Stable(inner) => {
            let now = eval_shifted(inner, read, shift);
            let before = eval_shifted(inner, read, shift + 1);
            Value::bit(now.bits() == before.bits())
        }
    }
}

/// Evaluates an expression against a plain [`State`] (no `$past` support needed).
pub fn eval_in_state(expr: &Expr, state: &State) -> Value {
    eval_expr(expr, &|name, _| read_state(state, name))
}

/// Reads a signal from a state, defaulting to a 1-bit zero for unknown names.
pub fn read_state(state: &State, name: &str) -> Value {
    state
        .get(name)
        .copied()
        .unwrap_or_else(|| Value::bit(false))
}

/// How procedural assignments are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignMode {
    /// Blocking semantics: writes become visible to later statements immediately.
    Immediate,
    /// Non-blocking semantics: writes are deferred until the end of the time step.
    Deferred,
}

/// Executes a procedural statement.
///
/// Blocking assignments write into `state` immediately.  Non-blocking assignments are
/// appended to `deferred` (resolving bit/part selects against the *current* value, per
/// Verilog semantics) and must be applied by the caller after all clocked blocks ran.
pub fn exec_stmt(
    stmt: &Stmt,
    state: &mut State,
    deferred: &mut Vec<(String, Value)>,
    widths: &BTreeMap<String, u32>,
) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                exec_stmt(s, state, deferred, widths);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            if eval_in_state(cond, state).is_true() {
                exec_stmt(then_branch, state, deferred, widths);
            } else if let Some(e) = else_branch {
                exec_stmt(e, state, deferred, widths);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            let subject_value = eval_in_state(subject, state);
            for arm in arms {
                let matched = arm
                    .labels
                    .iter()
                    .any(|label| eval_in_state(label, state).bits() == subject_value.bits());
                if matched {
                    exec_stmt(&arm.body, state, deferred, widths);
                    return;
                }
            }
            if let Some(d) = default {
                exec_stmt(d, state, deferred, widths);
            }
        }
        Stmt::Blocking { lhs, rhs, .. } => {
            let value = eval_in_state(rhs, state);
            apply_assignment(lhs, value, state, AssignMode::Immediate, deferred, widths);
        }
        Stmt::NonBlocking { lhs, rhs, .. } => {
            let value = eval_in_state(rhs, state);
            apply_assignment(lhs, value, state, AssignMode::Deferred, deferred, widths);
        }
        Stmt::Null => {}
    }
}

/// Resolves an lvalue write into one or more whole-signal updates.
pub fn apply_assignment(
    lhs: &LValue,
    value: Value,
    state: &mut State,
    mode: AssignMode,
    deferred: &mut Vec<(String, Value)>,
    widths: &BTreeMap<String, u32>,
) {
    let updates = resolve_lvalue(lhs, value, state, widths);
    for (name, new_value) in updates {
        match mode {
            AssignMode::Immediate => {
                state.insert(name, new_value);
            }
            AssignMode::Deferred => deferred.push((name, new_value)),
        }
    }
}

fn resolve_lvalue(
    lhs: &LValue,
    value: Value,
    state: &State,
    widths: &BTreeMap<String, u32>,
) -> Vec<(String, Value)> {
    match lhs {
        LValue::Ident(name) => {
            let width = widths.get(name).copied().unwrap_or(value.width());
            vec![(name.clone(), value.resize(width))]
        }
        LValue::Bit(name, index) => {
            let width = widths.get(name).copied().unwrap_or(1);
            let current = state
                .get(name)
                .copied()
                .unwrap_or_else(|| Value::zero(width));
            let idx = eval_in_state(index, &state.clone()).bits() as u32;
            vec![(name.clone(), current.with_bit(idx, value.is_true()))]
        }
        LValue::Part(name, range) => {
            let width = widths.get(name).copied().unwrap_or(range.width());
            let current = state
                .get(name)
                .copied()
                .unwrap_or_else(|| Value::zero(width));
            vec![(
                name.clone(),
                current.with_range(range.msb, range.lsb, value.bits()),
            )]
        }
        LValue::Concat(parts) => {
            // Distribute bits from the MSB side, mirroring Verilog concat assignment.
            let total: u32 = parts
                .iter()
                .flat_map(|p| p.base_names())
                .map(|n| widths.get(&n).copied().unwrap_or(1))
                .sum();
            let mut out = Vec::new();
            let mut consumed = 0u32;
            for part in parts {
                let part_width: u32 = part
                    .base_names()
                    .iter()
                    .map(|n| widths.get(n).copied().unwrap_or(1))
                    .sum();
                let shift = total.saturating_sub(consumed + part_width);
                let slice = Value::new(value.bits() >> shift, part_width.max(1));
                out.extend(resolve_lvalue(part, slice, state, widths));
                consumed += part_width;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::Parser;

    fn expr(src: &str) -> Expr {
        Parser::new(src).unwrap().parse_expr().unwrap()
    }

    fn state_of(pairs: &[(&str, u64, u32)]) -> State {
        pairs
            .iter()
            .map(|(n, v, w)| (n.to_string(), Value::new(*v, *w)))
            .collect()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let state = state_of(&[("a", 5, 4), ("b", 3, 4)]);
        assert_eq!(eval_in_state(&expr("a + b"), &state).bits(), 8);
        assert_eq!(eval_in_state(&expr("a - b"), &state).bits(), 2);
        assert_eq!(eval_in_state(&expr("a * b"), &state).bits(), 15);
        assert!(eval_in_state(&expr("a > b"), &state).is_true());
        assert!(eval_in_state(&expr("a != b"), &state).is_true());
        assert!(!eval_in_state(&expr("a == b"), &state).is_true());
    }

    #[test]
    fn wrapping_at_declared_width() {
        let state = state_of(&[("a", 15, 4), ("b", 1, 4)]);
        assert_eq!(eval_in_state(&expr("a + b"), &state).bits(), 0);
    }

    #[test]
    fn logical_and_ternary() {
        let state = state_of(&[("en", 1, 1), ("x", 9, 4), ("y", 4, 4)]);
        assert_eq!(eval_in_state(&expr("en ? x : y"), &state).bits(), 9);
        assert_eq!(eval_in_state(&expr("!en ? x : y"), &state).bits(), 4);
        assert!(eval_in_state(&expr("en && x > y"), &state).is_true());
    }

    #[test]
    fn bit_part_concat() {
        let state = state_of(&[("d", 0b1100_1010, 8), ("i", 3, 3)]);
        assert!(eval_in_state(&expr("d[i]"), &state).is_true());
        assert_eq!(eval_in_state(&expr("d[7:4]"), &state).bits(), 0b1100);
        assert_eq!(
            eval_in_state(&expr("{d[3:0], d[7:4]}"), &state).bits(),
            0b1010_1100
        );
        assert_eq!(
            eval_in_state(&expr("{2{d[3:0]}}"), &state).bits(),
            0b1010_1010
        );
    }

    #[test]
    fn reductions_and_complement() {
        let state = state_of(&[("d", 0b1111, 4)]);
        assert!(eval_in_state(&expr("&d"), &state).is_true());
        assert!(eval_in_state(&expr("~d == 4'b0000"), &state).is_true());
    }

    #[test]
    fn past_rose_fell_stable_via_reader() {
        // Trace: cycle 0 → a=0, cycle 1 → a=1 (we query at "now"=cycle 1).
        let read = |name: &str, past: u32| -> Value {
            assert_eq!(name, "a");
            if past == 0 {
                Value::bit(true)
            } else {
                Value::bit(false)
            }
        };
        assert!(eval_expr(&expr("$rose(a)"), &read).is_true());
        assert!(!eval_expr(&expr("$fell(a)"), &read).is_true());
        assert!(!eval_expr(&expr("$stable(a)"), &read).is_true());
        assert!(!eval_expr(&expr("$past(a)"), &read).is_true());
        assert!(eval_expr(&expr("$past(a, 0)"), &read).is_true());
    }

    #[test]
    fn exec_if_else_and_nonblocking() {
        let module = svparse::parse_module(
            r#"
module m(input clk, input rst_n, input en, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule
"#,
        )
        .unwrap();
        let widths: BTreeMap<String, u32> = [
            ("q".to_string(), 4u32),
            ("en".to_string(), 1),
            ("rst_n".to_string(), 1),
        ]
        .into_iter()
        .collect();
        let block = module.always_blocks().next().unwrap();
        let mut state = state_of(&[("rst_n", 1, 1), ("en", 1, 1), ("q", 7, 4)]);
        let mut deferred = Vec::new();
        exec_stmt(&block.body, &mut state, &mut deferred, &widths);
        assert_eq!(deferred, vec![("q".to_string(), Value::new(8, 4))]);
        // Deferred writes must not be visible yet.
        assert_eq!(state.get("q").unwrap().bits(), 7);
    }

    #[test]
    fn exec_case_selects_matching_arm() {
        let module = svparse::parse_module(
            r#"
module m(input [1:0] sel, input a, input b, input c, output reg y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      default: y = c;
    endcase
  end
endmodule
"#,
        )
        .unwrap();
        let widths: BTreeMap<String, u32> = [("y".to_string(), 1u32)].into_iter().collect();
        let block = module.always_blocks().next().unwrap();
        let mut deferred = Vec::new();

        let mut state = state_of(&[("sel", 1, 2), ("a", 0, 1), ("b", 1, 1), ("c", 0, 1)]);
        exec_stmt(&block.body, &mut state, &mut deferred, &widths);
        assert!(state.get("y").unwrap().is_true());

        let mut state = state_of(&[("sel", 3, 2), ("a", 0, 1), ("b", 0, 1), ("c", 1, 1)]);
        exec_stmt(&block.body, &mut state, &mut deferred, &widths);
        assert!(state.get("y").unwrap().is_true());
    }

    #[test]
    fn bit_select_assignment_read_modify_write() {
        let widths: BTreeMap<String, u32> = [("flags".to_string(), 4u32)].into_iter().collect();
        let mut state = state_of(&[("flags", 0b0101, 4)]);
        let mut deferred = Vec::new();
        let lhs = LValue::Bit("flags".into(), Box::new(Expr::num(1)));
        apply_assignment(
            &lhs,
            Value::bit(true),
            &mut state,
            AssignMode::Immediate,
            &mut deferred,
            &widths,
        );
        assert_eq!(state.get("flags").unwrap().bits(), 0b0111);
    }

    #[test]
    fn concat_assignment_splits_bits() {
        let widths: BTreeMap<String, u32> = [("carry".to_string(), 1u32), ("sum".to_string(), 4)]
            .into_iter()
            .collect();
        let mut state = state_of(&[("carry", 0, 1), ("sum", 0, 4)]);
        let mut deferred = Vec::new();
        let lhs = LValue::Concat(vec![
            LValue::Ident("carry".into()),
            LValue::Ident("sum".into()),
        ]);
        apply_assignment(
            &lhs,
            Value::new(0b1_1010, 5),
            &mut state,
            AssignMode::Immediate,
            &mut deferred,
            &widths,
        );
        assert_eq!(state.get("carry").unwrap().bits(), 1);
        assert_eq!(state.get("sum").unwrap().bits(), 0b1010);
    }

    #[test]
    fn unknown_signal_reads_as_zero() {
        let state = State::new();
        assert_eq!(eval_in_state(&expr("ghost + 1"), &state).bits(), 1);
    }
}
