//! Tool-style simulation logs.
//!
//! The AssertSolver model consumes three inputs: the design specification, the buggy
//! SystemVerilog code, and *logs* reporting assertion failures.  This module renders
//! the failure information in the terse style real simulators use (and the paper's
//! Fig. 1 shows), so dataset entries look like what a verification engineer would
//! paste into the prompt.

use crate::elaborate::Design;
use crate::simulator::Trace;
use crate::sva::AssertionFailure;

/// Renders a complete simulation log for a trace and its assertion failures.
///
/// The log always contains a header naming the module and trace length; each failure
/// becomes one `ERROR:` line; a trailing summary counts failures per assertion.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// let module = svparse::parse_module(
///     "module m(input clk, input a, output reg q);\n  always @(posedge clk) q <= a;\nendmodule",
/// ).map_err(|e| svsim::SimError::Elaboration(e.to_string()))?;
/// let stimulus: Vec<svsim::InputVector> =
///     vec![BTreeMap::from([("a".to_string(), 1u64)]); 3];
/// let outcome = svsim::simulate(&module, &stimulus)?;
/// assert!(outcome.log.starts_with("# simulation of module m"));
/// # Ok::<(), svsim::SimError>(())
/// ```
pub fn render_log(design: &Design, trace: &Trace, failures: &[AssertionFailure]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# simulation of module {} for {} cycles\n",
        design.module.name,
        trace.len()
    ));
    if failures.is_empty() {
        out.push_str("# all assertions passed\n");
        return out;
    }
    for failure in failures {
        out.push_str(&render_failure_line(&design.module.name, failure));
        out.push('\n');
    }
    let mut by_assertion: Vec<(String, usize)> = Vec::new();
    for failure in failures {
        match by_assertion
            .iter_mut()
            .find(|(name, _)| name == &failure.assertion)
        {
            Some((_, count)) => *count += 1,
            None => by_assertion.push((failure.assertion.clone(), 1)),
        }
    }
    for (name, count) in &by_assertion {
        out.push_str(&format!(
            "# assertion {}.{} failed {} time(s)\n",
            design.module.name, name, count
        ));
    }
    out.push_str(&format!(
        "# {} assertion failure(s) detected\n",
        failures.len()
    ));
    out
}

/// Renders a single failure in the `ERROR:` style used by event-driven simulators.
pub fn render_failure_line(module_name: &str, failure: &AssertionFailure) -> String {
    let message = failure
        .message
        .as_deref()
        .map(|m| format!(" - \"{m}\""))
        .unwrap_or_default();
    format!(
        "ERROR: [cycle {}] failed assertion {}.{}{}",
        failure.fail_cycle, module_name, failure.assertion, message
    )
}

/// Extracts the names of failing assertions from a rendered log.
///
/// This is the inverse operation the repair model performs when it parses the `Logs`
/// section of its prompt.
pub fn failing_assertions_in_log(log: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in log.lines() {
        if let Some(rest) = line.strip_prefix("ERROR: ") {
            if let Some(idx) = rest.find("failed assertion ") {
                let tail = &rest[idx + "failed assertion ".len()..];
                let token = tail.split_whitespace().next().unwrap_or("");
                let name = token.split('.').next_back().unwrap_or(token);
                let name = name.trim_end_matches(|c: char| !c.is_alphanumeric() && c != '_');
                if !name.is_empty() && !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::Design;
    use crate::simulator::{InputVector, Simulator};
    use std::collections::BTreeMap;
    use svparse::parse_module;

    const BUGGY: &str = r#"
module toggle(input clk, input rst_n, input en, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 0;
    else if (en) q <= q;
  end
  property toggles;
    @(posedge clk) disable iff (!rst_n) en |=> q != $past(q);
  endproperty
  toggle_check: assert property (toggles) else $error("q must toggle when en");
endmodule
"#;

    fn run_buggy() -> (Design, crate::simulator::Trace, Vec<AssertionFailure>) {
        let module = parse_module(BUGGY).unwrap();
        let design = Design::elaborate(&module).unwrap();
        let stim: Vec<InputVector> = (0..8)
            .map(|i| {
                BTreeMap::from([
                    ("rst_n".to_string(), u64::from(i >= 1)),
                    ("en".to_string(), 1u64),
                ])
            })
            .collect();
        let trace = Simulator::run(&design, &stim).unwrap();
        let failures = crate::sva::check_assertions(&design, &trace);
        (design, trace, failures)
    }

    #[test]
    fn log_contains_error_lines_and_summary() {
        let (design, trace, failures) = run_buggy();
        assert!(!failures.is_empty());
        let log = render_log(&design, &trace, &failures);
        assert!(log.contains("ERROR: [cycle"));
        assert!(log.contains("failed assertion toggle.toggle_check"));
        assert!(log.contains("\"q must toggle when en\""));
        assert!(log.contains("assertion failure(s) detected"));
    }

    #[test]
    fn passing_log_says_all_passed() {
        let module = parse_module(
            "module m(input clk, input a, output reg q);\n  always @(posedge clk) q <= a;\nendmodule",
        )
        .unwrap();
        let design = Design::elaborate(&module).unwrap();
        let trace = Simulator::run(&design, &vec![InputVector::new(); 3]).unwrap();
        let log = render_log(&design, &trace, &[]);
        assert!(log.contains("all assertions passed"));
    }

    #[test]
    fn failing_assertion_names_round_trip_through_log() {
        let (design, trace, failures) = run_buggy();
        let log = render_log(&design, &trace, &failures);
        let names = failing_assertions_in_log(&log);
        assert_eq!(names, vec!["toggle_check".to_string()]);
    }

    #[test]
    fn failure_line_without_message() {
        let failure = AssertionFailure {
            assertion: "p_check".into(),
            start_cycle: 1,
            fail_cycle: 2,
            message: None,
        };
        let line = render_failure_line("m", &failure);
        assert_eq!(line, "ERROR: [cycle 2] failed assertion m.p_check");
    }
}
