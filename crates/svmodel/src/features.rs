//! Case inputs and per-line feature extraction.
//!
//! The repair policy is a linear softmax over hand-crafted program features.  The
//! features deliberately mirror what the paper's model must learn implicitly from its
//! prompt: which signals the failing assertion observes, how far a line is from that
//! observation point in the fan-in cone, whether the line is a conditional, and how
//! "surprising" the line looks to the pretrained language model.

use crate::lm::NgramLm;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use svdata::SvaBugEntry;
use svparse::DependencyGraph;
use svsim::failing_assertions_in_log;

/// Number of features describing a candidate line.
pub const LINE_FEATURES: usize = 13;

/// What the model is allowed to see at inference time: Spec, buggy code and logs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseInput {
    /// Design specification text.
    pub spec: String,
    /// Buggy SystemVerilog source (canonical form).
    pub buggy_source: String,
    /// Simulation log with the assertion failures.
    pub logs: String,
}

impl CaseInput {
    /// Builds the model input from a dataset entry, dropping everything the model must
    /// not see (golden source, golden fix, bug profile).
    pub fn from_entry(entry: &SvaBugEntry) -> Self {
        Self {
            spec: entry.spec.clone(),
            buggy_source: entry.buggy_source.clone(),
            logs: entry.logs.clone(),
        }
    }

    /// Names of the failing assertions parsed out of the logs.
    pub fn failing_assertions(&self) -> Vec<String> {
        failing_assertions_in_log(&self.logs)
    }
}

/// One candidate buggy line with its feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineCandidate {
    /// 1-based line number in the buggy source.
    pub line_number: u32,
    /// Trimmed line text.
    pub text: String,
    /// Feature vector of length [`LINE_FEATURES`].
    pub features: Vec<f64>,
}

/// Returns `true` for lines that can plausibly carry an injected bug (assignments,
/// conditional headers, case subjects/labels).
pub fn is_candidate_line(trimmed: &str) -> bool {
    if trimmed.is_empty()
        || trimmed.starts_with("module")
        || trimmed.starts_with("input")
        || trimmed.starts_with("output")
        || trimmed.starts_with("inout")
        || trimmed.starts_with("wire")
        || trimmed.starts_with("reg ")
        || trimmed.starts_with("reg[")
        || trimmed.starts_with("integer")
        || trimmed.starts_with("parameter")
        || trimmed.starts_with("localparam")
        || trimmed.starts_with("property")
        || trimmed.starts_with("endproperty")
        || trimmed.starts_with("endmodule")
        || trimmed.starts_with("endcase")
        || trimmed.starts_with(");")
        || trimmed.contains("assert property")
        || trimmed == "begin"
        || trimmed == "end"
        || trimmed == "else begin"
        || trimmed.starts_with("always") && !trimmed.contains('=')
        || trimmed.starts_with("initial")
    {
        return false;
    }
    trimmed.contains("<=")
        || trimmed.contains("= ")
        || trimmed.starts_with("if (")
        || trimmed.starts_with("else if (")
        || trimmed.starts_with("case (")
}

/// Extracts every candidate line of a case together with its features.
///
/// The `lm` parameter supplies the surprisal feature; pass an untrained model to make
/// that feature neutral (this is exactly the difference between the base model and the
/// pretrained model).
pub fn line_candidates(case: &CaseInput, lm: &NgramLm) -> Vec<LineCandidate> {
    let module = svparse::parse_module(&case.buggy_source).ok();
    let failing = case.failing_assertions();

    let mut assertion_signals: BTreeSet<String> = BTreeSet::new();
    let mut cone: BTreeSet<String> = BTreeSet::new();
    let mut graph = None;
    if let Some(m) = &module {
        for name in &failing {
            for s in svmutate::signals_of_assertion(m, name) {
                assertion_signals.insert(s);
            }
        }
        if assertion_signals.is_empty() {
            for a in m.assertions() {
                for s in svmutate::signals_of_assertion(m, &a.display_name()) {
                    assertion_signals.insert(s);
                }
            }
        }
        let g = DependencyGraph::build(m);
        for s in &assertion_signals {
            cone.insert(s.clone());
            cone.extend(g.cone_of_influence(s));
        }
        graph = Some(g);
    }

    let total_lines = case.buggy_source.lines().count().max(1);
    let mut candidates = Vec::new();
    for (idx, raw) in case.buggy_source.lines().enumerate() {
        let trimmed = raw.trim();
        if !is_candidate_line(trimmed) {
            continue;
        }
        let line_number = (idx + 1) as u32;
        let tokens = crate::lm::tokenize(trimmed);
        let idents: BTreeSet<String> = tokens
            .iter()
            .filter(|t| {
                t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            })
            .cloned()
            .collect();
        let assertion_mentions = idents.intersection(&assertion_signals).count();
        let cone_mentions = idents.intersection(&cone).count();

        // Cone proximity of the signal this line assigns (if any).
        let assigned = assigned_signal(trimmed);
        let proximity = match (&graph, &assigned) {
            (Some(g), Some(sig)) => {
                let mut best: Option<u32> = None;
                for obs in &assertion_signals {
                    let d = if obs == sig {
                        Some(0)
                    } else {
                        g.distance(obs, sig)
                    };
                    if let Some(d) = d {
                        best = Some(best.map_or(d, |b| b.min(d)));
                    }
                }
                best.map_or(0.0, |d| 1.0 / (1.0 + d as f64))
            }
            _ => 0.0,
        };

        let is_conditional = trimmed.starts_with("if (")
            || trimmed.starts_with("else if (")
            || trimmed.starts_with("case (");
        let features = vec![
            1.0,
            f64::from(assertion_mentions > 0),
            proximity,
            f64::from(is_conditional),
            f64::from(trimmed.contains("<=")),
            (lm.surprisal(trimmed) / 5.0).min(2.0),
            f64::from(trimmed.contains('!')),
            f64::from(trimmed.contains("'d") || trimmed.contains("'b") || trimmed.contains("'h")),
            f64::from(trimmed.contains("rst")),
            (assertion_mentions as f64 / 3.0).min(1.0),
            line_number as f64 / total_lines as f64,
            (tokens.len() as f64 / 20.0).min(1.5),
            f64::from(cone_mentions > 0),
        ];
        debug_assert_eq!(features.len(), LINE_FEATURES);
        candidates.push(LineCandidate {
            line_number,
            text: trimmed.to_string(),
            features,
        });
    }
    candidates
}

/// The signal assigned on a line, textually (`lhs <= rhs;` or `lhs = rhs;`).
pub fn assigned_signal(line: &str) -> Option<String> {
    let lhs = if let Some(pos) = line.find("<=") {
        &line[..pos]
    } else if let Some(pos) = line.find('=') {
        // Skip comparisons: `==`, `!=`, `>=`, `<=` handled above.
        if line.as_bytes().get(pos + 1) == Some(&b'=') || pos == 0 {
            return None;
        }
        if pos >= 1 && matches!(line.as_bytes()[pos - 1], b'!' | b'<' | b'>') {
            return None;
        }
        &line[..pos]
    } else {
        return None;
    };
    let name: String = lhs
        .rsplit(|c: char| !(c.is_alphanumeric() || c == '_' || c == '[' || c == ']'))
        .find(|segment| !segment.trim().is_empty())
        .unwrap_or("")
        .trim()
        .trim_end_matches(|c: char| c == '[' || c == ']' || c.is_numeric())
        .to_string();
    // Strip any index suffix like `flags[2]`.
    let base = name.split('[').next().unwrap_or("").to_string();
    if base.is_empty() {
        None
    } else {
        Some(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svdata::{run_pipeline, PipelineConfig};

    fn sample_case() -> (CaseInput, u32) {
        let out = run_pipeline(&PipelineConfig::tiny(3));
        let entry = out
            .datasets
            .sva_bug
            .first()
            .expect("pipeline produced cases")
            .clone();
        (CaseInput::from_entry(&entry), entry.bug_line_number)
    }

    #[test]
    fn candidate_lines_include_the_bug_line() {
        let (case, bug_line) = sample_case();
        let lm = NgramLm::new();
        let candidates = line_candidates(&case, &lm);
        assert!(!candidates.is_empty());
        assert!(
            candidates.iter().any(|c| c.line_number == bug_line),
            "bug line {bug_line} missing from candidates: {:?}",
            candidates.iter().map(|c| c.line_number).collect::<Vec<_>>()
        );
        for c in &candidates {
            assert_eq!(c.features.len(), LINE_FEATURES);
            assert!(c.features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn structural_lines_are_not_candidates() {
        assert!(!is_candidate_line("module foo("));
        assert!(!is_candidate_line("endmodule"));
        assert!(!is_candidate_line("begin"));
        assert!(!is_candidate_line("property p;"));
        assert!(!is_candidate_line(
            "valid_out_check_assertion: assert property (p);"
        ));
        assert!(is_candidate_line("assign y = a & b;"));
        assert!(is_candidate_line("if (!rst_n) q <= 0;"));
        assert!(is_candidate_line("case (sel)"));
        assert!(is_candidate_line("2'd0: y = a;"));
    }

    #[test]
    fn assigned_signal_extraction() {
        assert_eq!(
            assigned_signal("if (!rst_n) cnt <= 2'd0;"),
            Some("cnt".into())
        );
        assert_eq!(assigned_signal("assign y = a & b;"), Some("y".into()));
        assert_eq!(assigned_signal("flags[2] <= 1;"), Some("flags".into()));
        assert_eq!(assigned_signal("a == b"), None);
        assert_eq!(assigned_signal("case (sel)"), None);
    }

    #[test]
    fn failing_assertions_parsed_from_logs() {
        let (case, _) = sample_case();
        assert!(!case.failing_assertions().is_empty());
    }
}
