//! Fix-candidate generation.
//!
//! Given a suspected buggy line, the model proposes concrete replacement lines by
//! exploring the inverse of the bug-injection space: operator swaps, negation toggles,
//! constant perturbations and identifier substitutions.  A second policy then ranks
//! the candidates.

use crate::features::CaseInput;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Number of features describing a fix candidate.
pub const FIX_FEATURES: usize = 10;

/// The kind of edit a fix candidate applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FixEdit {
    /// Add or remove a logical negation.
    ToggleNegation,
    /// Swap a binary operator for a confusable one.
    OpSwap,
    /// Adjust a numeric constant.
    ValueTweak,
    /// Replace one identifier with another declared signal.
    VarSwap,
}

impl FixEdit {
    /// All edit kinds, in a stable order.
    pub fn all() -> [FixEdit; 4] {
        [
            FixEdit::ToggleNegation,
            FixEdit::OpSwap,
            FixEdit::ValueTweak,
            FixEdit::VarSwap,
        ]
    }
}

/// One candidate replacement line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixCandidate {
    /// Full replacement line text (trimmed, same shape as the original line).
    pub text: String,
    /// The edit applied.
    pub edit: FixEdit,
    /// Feature vector of length [`FIX_FEATURES`].
    pub features: Vec<f64>,
}

const OP_SWAPS: &[(&str, &str)] = &[
    (" && ", " || "),
    (" || ", " && "),
    (" & ", " | "),
    (" | ", " & "),
    (" & ", " ^ "),
    (" ^ ", " & "),
    (" == ", " != "),
    (" != ", " == "),
    (" + ", " - "),
    (" - ", " + "),
    (" < ", " > "),
    (" > ", " < "),
    (" << ", " >> "),
    (" >> ", " << "),
];

/// Generates candidate fixes for a line.
///
/// `declared_signals` is the pool used for identifier substitutions (typically every
/// declared name of the module); `assertion_signals` steers the feature extraction.
pub fn fix_candidates(
    line: &str,
    declared_signals: &[String],
    assertion_signals: &[String],
    lm: &crate::lm::NgramLm,
) -> Vec<FixCandidate> {
    let original = line.trim();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(original.to_string());
    let mut out: Vec<(String, FixEdit)> = Vec::new();

    // 1. Negation toggles on identifiers (condition flips are the most common bug).
    for ident in identifiers_in(original) {
        let negated = format!("!{ident}");
        if original.contains(&negated) {
            out.push((
                original.replacen(&negated, &ident, 1),
                FixEdit::ToggleNegation,
            ));
        } else {
            // Only toggle inside a conditional context to avoid nonsense like
            // `assign !y = a`.
            if let Some(cond_start) = original.find('(') {
                let (head, tail) = original.split_at(cond_start);
                if tail.contains(&ident) && (head.contains("if") || head.contains("case")) {
                    out.push((
                        format!("{head}{}", tail.replacen(&ident, &negated, 1)),
                        FixEdit::ToggleNegation,
                    ));
                }
            }
        }
    }

    // 2. Operator swaps.
    for (from, to) in OP_SWAPS {
        if original.contains(from) {
            out.push((original.replacen(from, to, 1), FixEdit::OpSwap));
            // If the operator occurs twice, also swap the second occurrence.
            if original.matches(from).count() > 1 {
                let first = original.find(from).expect("operator present");
                let rest_swapped = format!(
                    "{}{}",
                    &original[..first + from.len()],
                    original[first + from.len()..].replacen(from, to, 1)
                );
                out.push((rest_swapped, FixEdit::OpSwap));
            }
        }
    }

    // 3. Constant perturbations.
    for token in crate::lm::tokenize(original) {
        if let Some((width, value)) = parse_sized_literal(&token) {
            let max = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut replacements: Vec<u64> = vec![
                value.wrapping_add(1) & max,
                value.wrapping_sub(1) & max,
                0,
                max,
            ];
            for bit in 0..width.min(16) {
                replacements.push((value ^ (1 << bit)) & max);
            }
            for new_value in replacements {
                if new_value == value {
                    continue;
                }
                let new_token = rewrite_literal(&token, new_value);
                out.push((
                    original.replacen(token.as_str(), &new_token, 1),
                    FixEdit::ValueTweak,
                ));
            }
        } else if let Ok(value) = token.parse::<u64>() {
            for new_value in [value.wrapping_add(1), value.saturating_sub(1), 0, 1] {
                if new_value != value {
                    out.push((
                        original.replacen(token.as_str(), &new_value.to_string(), 1),
                        FixEdit::ValueTweak,
                    ));
                }
            }
        }
    }

    // 4. Identifier substitutions.
    for ident in identifiers_in(original) {
        for replacement in declared_signals {
            if replacement == &ident || !declared_signals.contains(&ident) {
                continue;
            }
            out.push((
                replace_identifier_once(original, &ident, replacement),
                FixEdit::VarSwap,
            ));
        }
    }

    let original_surprisal = lm.surprisal(original);
    out.into_iter()
        .filter(|(text, _)| text != original && seen.insert(text.clone()))
        .map(|(text, edit)| {
            let features = fix_features(
                &text,
                original,
                edit,
                assertion_signals,
                lm,
                original_surprisal,
            );
            FixCandidate {
                text,
                edit,
                features,
            }
        })
        .collect()
}

/// Feature vector of a fix candidate.
fn fix_features(
    text: &str,
    original: &str,
    edit: FixEdit,
    assertion_signals: &[String],
    lm: &crate::lm::NgramLm,
    original_surprisal: f64,
) -> Vec<f64> {
    let introduces_assertion_signal = assertion_signals.iter().any(|s| {
        let count_new = text.matches(s.as_str()).count();
        let count_old = original.matches(s.as_str()).count();
        count_new > count_old
    });
    let surprisal_delta = (original_surprisal - lm.surprisal(text)).clamp(-3.0, 3.0);
    vec![
        1.0,
        f64::from(edit == FixEdit::ToggleNegation),
        f64::from(edit == FixEdit::OpSwap),
        f64::from(edit == FixEdit::ValueTweak),
        f64::from(edit == FixEdit::VarSwap),
        f64::from(introduces_assertion_signal),
        surprisal_delta / 3.0,
        f64::from(text.len().abs_diff(original.len()) <= 1),
        f64::from(text.contains('!') != original.contains('!')),
        f64::from(original.starts_with("if (") || original.starts_with("else if (")),
    ]
}

fn identifiers_in(line: &str) -> Vec<String> {
    let mut out: Vec<String> = crate::lm::tokenize(line)
        .into_iter()
        .filter(|t| {
            t.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && ![
                    "if", "else", "case", "assign", "begin", "end", "default", "posedge",
                    "negedge", "or", "always",
                ]
                .contains(&t.as_str())
        })
        .collect();
    out.dedup();
    out
}

fn replace_identifier_once(line: &str, ident: &str, replacement: &str) -> String {
    // Replace only whole-token occurrences so `in` does not match inside `valid_in`.
    let mut result = String::new();
    let mut replaced = false;
    let mut token = String::new();
    for c in line.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            token.push(c);
        } else {
            if !token.is_empty() {
                if !replaced && token == ident {
                    result.push_str(replacement);
                    replaced = true;
                } else {
                    result.push_str(&token);
                }
                token.clear();
            }
            result.push(c);
        }
    }
    result.trim_end().to_string()
}

fn parse_sized_literal(token: &str) -> Option<(u32, u64)> {
    let idx = token.find('\'')?;
    let width: u32 = token[..idx].parse().ok()?;
    let rest = &token[idx + 1..];
    let (radix, digits) = match rest.chars().next()? {
        'b' | 'B' => (2, &rest[1..]),
        'h' | 'H' => (16, &rest[1..]),
        'o' | 'O' => (8, &rest[1..]),
        'd' | 'D' => (10, &rest[1..]),
        _ => return None,
    };
    let value = u64::from_str_radix(digits, radix).ok()?;
    Some((width, value))
}

fn rewrite_literal(token: &str, new_value: u64) -> String {
    let idx = token.find('\'').expect("sized literal has a quote");
    let width = &token[..idx];
    let base = token.as_bytes()[idx + 1] as char;
    match base.to_ascii_lowercase() {
        'b' => format!("{width}'b{new_value:b}"),
        'h' => format!("{width}'h{new_value:x}"),
        'o' => format!("{width}'o{new_value:o}"),
        _ => format!("{width}'d{new_value}"),
    }
}

/// Generates fix candidates directly from a [`CaseInput`] and a chosen line.
pub fn fix_candidates_for_case(
    case: &CaseInput,
    line_text: &str,
    lm: &crate::lm::NgramLm,
) -> Vec<FixCandidate> {
    let declared = svparse::parse_module(&case.buggy_source)
        .map(|m| m.declared_names())
        .unwrap_or_default();
    let failing = case.failing_assertions();
    let assertion_signals = svparse::parse_module(&case.buggy_source)
        .map(|m| {
            failing
                .iter()
                .flat_map(|name| svmutate::signals_of_assertion(&m, name))
                .collect::<Vec<String>>()
        })
        .unwrap_or_default();
    fix_candidates(line_text, &declared, &assertion_signals, lm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::NgramLm;

    fn candidates(line: &str, declared: &[&str]) -> Vec<FixCandidate> {
        let declared: Vec<String> = declared.iter().map(|s| s.to_string()).collect();
        fix_candidates(line, &declared, &["valid_out".into()], &NgramLm::new())
    }

    #[test]
    fn negation_toggle_inverts_the_paper_bug() {
        let fixes = candidates(
            "else if (!end_cnt) valid_out <= 1;",
            &["end_cnt", "valid_out", "cnt"],
        );
        assert!(
            fixes
                .iter()
                .any(|f| f.text == "else if (end_cnt) valid_out <= 1;"),
            "negation-toggle fix missing: {:?}",
            fixes.iter().map(|f| &f.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn op_swap_covers_and_or() {
        let fixes = candidates("assign y = a & b;", &["a", "b", "y"]);
        assert!(fixes.iter().any(|f| f.text == "assign y = a | b;"));
        assert!(fixes.iter().any(|f| f.text == "assign y = a ^ b;"));
    }

    #[test]
    fn value_tweaks_cover_off_by_one_and_bitflips() {
        let fixes = candidates("if (cnt == 2'd3) done <= 1;", &["cnt", "done"]);
        assert!(fixes.iter().any(|f| f.text.contains("2'd2")));
        assert!(fixes.iter().any(|f| f.text.contains("2'd1")));
        assert!(fixes.iter().any(|f| f.edit == FixEdit::ValueTweak));
    }

    #[test]
    fn var_swap_is_whole_token() {
        let fixes = candidates("assign out = in;", &["in", "out", "valid_in"]);
        assert!(fixes.iter().any(|f| f.text == "assign out = valid_in;"));
        // `in` inside `valid_in` must not be replaced when swapping other tokens.
        assert!(!fixes.iter().any(|f| f.text.contains("valid_valid")));
    }

    #[test]
    fn candidates_are_distinct_and_not_the_original() {
        let fixes = candidates(
            "else if (end_cnt && valid_in) valid_out <= 1;",
            &["end_cnt", "valid_in", "valid_out"],
        );
        let mut texts: Vec<&String> = fixes.iter().map(|f| &f.text).collect();
        let before = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), before);
        assert!(!fixes
            .iter()
            .any(|f| f.text == "else if (end_cnt && valid_in) valid_out <= 1;"));
        for f in &fixes {
            assert_eq!(f.features.len(), FIX_FEATURES);
        }
    }

    #[test]
    fn sized_literal_parsing() {
        assert_eq!(parse_sized_literal("4'b1010"), Some((4, 10)));
        assert_eq!(parse_sized_literal("8'hff"), Some((8, 255)));
        assert_eq!(parse_sized_literal("2'd3"), Some((2, 3)));
        assert_eq!(parse_sized_literal("abc"), None);
        assert_eq!(rewrite_literal("4'b1010", 5), "4'b101");
    }
}
