//! Baseline repair engines standing in for the commercial and open-source LLMs the
//! paper compares against.
//!
//! The paper's comparison set (Claude-3.5, GPT-4, o1-preview, Deepseek-Coder-6.7b,
//! CodeLlama-7b, Llama-3.1-8b) cannot be called from this environment, so each is
//! replaced by a rule-based engine of increasing sophistication.  The mapping is a
//! documented substitution (see DESIGN.md): what matters for the reproduction is the
//! *relative ordering* — untuned open models near zero, strong general models in the
//! middle, iterative reasoning on top, and the domain-tuned AssertSolver above all.

use crate::features::{line_candidates, CaseInput};
use crate::fixgen::{fix_candidates_for_case, FixEdit};
use crate::lm::NgramLm;
use crate::policy::Policy;
use crate::solver::{RepairModel, Response};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The baseline tiers, ordered from weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Uniform random line and fix choice — surrogate for Deepseek-Coder-6.7b (base).
    RandomGuess,
    /// Random choice restricted to assignment lines — surrogate for CodeLlama-7b.
    AssignmentGuess,
    /// Picks lines mentioning a failing-assertion signal — surrogate for Llama-3.1-8b.
    KeywordMatch,
    /// Hand-tuned heuristic scoring (assertion signals + conditionals) — surrogate for
    /// GPT-4.
    GeneralHeuristic,
    /// Adds cone-of-influence tracing and fix-type priors — surrogate for Claude-3.5.
    ConeAnalyst,
    /// Cone tracing plus an internal multi-candidate self-check pass — surrogate for
    /// o1-preview.
    IterativeReasoner,
}

impl BaselineKind {
    /// All baselines from weakest to strongest.
    pub fn all() -> [BaselineKind; 6] {
        [
            BaselineKind::RandomGuess,
            BaselineKind::AssignmentGuess,
            BaselineKind::KeywordMatch,
            BaselineKind::GeneralHeuristic,
            BaselineKind::ConeAnalyst,
            BaselineKind::IterativeReasoner,
        ]
    }

    /// The paper model this baseline stands in for.
    pub fn surrogate_for(&self) -> &'static str {
        match self {
            BaselineKind::RandomGuess => "Deepseek-Coder-6.7b",
            BaselineKind::AssignmentGuess => "CodeLlama-7b",
            BaselineKind::KeywordMatch => "Llama-3.1-8b",
            BaselineKind::GeneralHeuristic => "GPT-4",
            BaselineKind::ConeAnalyst => "Claude-3.5",
            BaselineKind::IterativeReasoner => "o1-preview",
        }
    }

    /// Display name used in regenerated tables (marks the surrogate status).
    pub fn display_name(&self) -> String {
        format!("{} (surrogate)", self.surrogate_for())
    }

    /// Relative serving cost of this tier (see [`RepairModel::cost`]): strictly
    /// increasing from random guessing to o1-style iterative reasoning, so a
    /// ladder built from [`all_baselines`] escalates weakest-and-cheapest first.
    pub fn cost(&self) -> u32 {
        match self {
            BaselineKind::RandomGuess => 1,
            BaselineKind::AssignmentGuess => 2,
            BaselineKind::KeywordMatch => 4,
            BaselineKind::GeneralHeuristic => 12,
            BaselineKind::ConeAnalyst => 30,
            BaselineKind::IterativeReasoner => 55,
        }
    }
}

/// A baseline repair engine.
#[derive(Debug, Clone)]
pub struct BaselineModel {
    kind: BaselineKind,
    name: String,
    line_policy: Policy,
    fix_policy: Policy,
    lm: NgramLm,
}

impl BaselineModel {
    /// Creates the baseline of the given tier.
    pub fn new(kind: BaselineKind) -> Self {
        let (line_policy, fix_policy) = hand_tuned_policies(kind);
        Self {
            kind,
            name: kind.display_name(),
            line_policy,
            fix_policy,
            lm: NgramLm::new(),
        }
    }

    /// The tier of this baseline.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }
}

/// Hand-tuned policy weights per tier.  Indices follow
/// [`crate::features::line_candidates`] and [`crate::fixgen::fix_candidates`].
fn hand_tuned_policies(kind: BaselineKind) -> (Policy, Policy) {
    use BaselineKind::*;
    let line = match kind {
        RandomGuess => vec![0.0; crate::features::LINE_FEATURES],
        AssignmentGuess => {
            let mut w = vec![0.0; crate::features::LINE_FEATURES];
            w[4] = 0.8; // prefers non-blocking assignments
            w
        }
        KeywordMatch => {
            let mut w = vec![0.0; crate::features::LINE_FEATURES];
            w[1] = 2.0; // mentions a failing-assertion signal
            w
        }
        GeneralHeuristic => {
            let mut w = vec![0.0; crate::features::LINE_FEATURES];
            w[1] = 2.5;
            w[3] = 1.0; // conditional lines
            w[2] = 1.5; // cone proximity
            w
        }
        ConeAnalyst => {
            let mut w = vec![0.0; crate::features::LINE_FEATURES];
            w[1] = 3.0;
            w[2] = 3.0;
            w[3] = 1.2;
            w[12] = 1.5; // any cone signal mentioned
            w
        }
        IterativeReasoner => {
            let mut w = vec![0.0; crate::features::LINE_FEATURES];
            w[1] = 3.5;
            w[2] = 3.5;
            w[3] = 1.5;
            w[12] = 2.0;
            w[6] = 0.5; // negations are suspicious
            w
        }
    };
    let fix = match kind {
        RandomGuess | AssignmentGuess => vec![0.0; crate::fixgen::FIX_FEATURES],
        KeywordMatch => {
            let mut w = vec![0.0; crate::fixgen::FIX_FEATURES];
            w[1] = 0.8; // negation toggles
            w[2] = 0.4; // operator swaps
            w
        }
        GeneralHeuristic => {
            let mut w = vec![0.0; crate::fixgen::FIX_FEATURES];
            w[1] = 1.5;
            w[2] = 1.0;
            w[3] = 0.6;
            w[5] = 0.8; // introduces an assertion signal
            w
        }
        ConeAnalyst => {
            let mut w = vec![0.0; crate::fixgen::FIX_FEATURES];
            w[1] = 2.0;
            w[2] = 1.4;
            w[3] = 1.0;
            w[4] = 0.6;
            w[5] = 1.2;
            w[9] = 0.8; // conditional context
            w
        }
        IterativeReasoner => {
            let mut w = vec![0.0; crate::fixgen::FIX_FEATURES];
            w[1] = 2.4;
            w[2] = 1.8;
            w[3] = 1.2;
            w[4] = 0.8;
            w[5] = 1.6;
            w[9] = 1.0;
            w
        }
    };
    (from_weights(line), from_weights(fix))
}

fn from_weights(weights: Vec<f64>) -> Policy {
    // Policy has no public constructor from weights; emulate it via SFT steps on a
    // basis: instead we rebuild by zeroing and nudging each weight with a synthetic
    // one-hot example.  A dedicated constructor keeps this honest.
    Policy::from_weights(weights)
}

impl RepairModel for BaselineModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn cost(&self) -> u32 {
        self.kind.cost()
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        let lines = line_candidates(case, &self.lm);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..samples)
            .map(|_| self.propose(case, &lines, temperature, &mut rng))
            .collect()
    }
}

impl BaselineModel {
    fn propose(
        &self,
        case: &CaseInput,
        lines: &[crate::features::LineCandidate],
        temperature: f64,
        rng: &mut StdRng,
    ) -> Response {
        if lines.is_empty() {
            return Response {
                bug_line_number: 0,
                buggy_line: String::new(),
                fixed_line: String::new(),
                cot: None,
            };
        }
        // Weak tiers sample at a much higher effective temperature (they are not
        // confident); the iterative reasoner runs an internal best-of-3 pass.
        let effective_temperature = match self.kind {
            BaselineKind::RandomGuess | BaselineKind::AssignmentGuess => temperature.max(3.0),
            BaselineKind::KeywordMatch => temperature.max(1.0),
            _ => temperature,
        };
        let line_features: Vec<Vec<f64>> = lines.iter().map(|c| c.features.clone()).collect();
        let candidates_to_try = if self.kind == BaselineKind::IterativeReasoner {
            3
        } else {
            1
        };
        let mut best: Option<(f64, Response)> = None;
        for _ in 0..candidates_to_try {
            let line_idx = self
                .line_policy
                .sample(&line_features, effective_temperature, rng);
            let line = &lines[line_idx];
            let fixes = fix_candidates_for_case(case, &line.text, &self.lm);
            let (fixed_line, fix_score) = if fixes.is_empty() {
                (line.text.clone(), 0.0)
            } else {
                let fix_features: Vec<Vec<f64>> =
                    fixes.iter().map(|f| f.features.clone()).collect();
                let idx = if matches!(
                    self.kind,
                    BaselineKind::RandomGuess | BaselineKind::AssignmentGuess
                ) {
                    rng_choice(fixes.len(), rng)
                } else {
                    self.fix_policy
                        .sample(&fix_features, effective_temperature, rng)
                };
                (
                    fixes[idx].text.clone(),
                    self.fix_policy.score(&fixes[idx].features),
                )
            };
            // Self-check score: line score plus fix score, with a bonus when the edit
            // type matches what the line shape suggests (flipping conditions on
            // conditional lines, value tweaks on comparisons against constants).
            let mut score = self.line_policy.score(&line.features) + fix_score;
            if (line.text.starts_with("if (") || line.text.starts_with("else if ("))
                && fixed_line.matches('!').count() != line.text.matches('!').count()
            {
                score += 0.5;
            }
            let response = Response {
                bug_line_number: line.line_number,
                buggy_line: line.text.clone(),
                fixed_line,
                cot: Some(format!(
                    "Heuristic analysis of the failing assertion points at line {}.",
                    line.line_number
                )),
            };
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, response));
            }
        }
        best.expect("at least one candidate generated").1
    }
}

fn rng_choice(len: usize, rng: &mut StdRng) -> usize {
    *(0..len).collect::<Vec<usize>>().choose(rng).unwrap_or(&0)
}

/// Convenience: instantiates every baseline tier.
pub fn all_baselines() -> Vec<BaselineModel> {
    BaselineKind::all()
        .into_iter()
        .map(BaselineModel::new)
        .collect()
}

/// Marker edit-kind helper re-exported for the benches (maps fix edits to Table-I
/// bug kinds when reporting ablations).
pub fn edit_matches_kind(edit: FixEdit, kind: svmutate::BugKind) -> bool {
    matches!(
        (edit, kind),
        (
            FixEdit::ToggleNegation | FixEdit::OpSwap,
            svmutate::BugKind::Op
        ) | (FixEdit::ValueTweak, svmutate::BugKind::Value)
            | (FixEdit::VarSwap, svmutate::BugKind::Var)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use svdata::{run_pipeline, PipelineConfig};

    /// Pass@5-style textual accuracy: a case counts when any of five samples names the
    /// right line and the right fix.  (The real evaluation harness in the `assertsolver`
    /// crate additionally accepts semantically correct fixes via the bounded checker.)
    fn eval_accuracy(model: &dyn RepairModel, entries: &[svdata::SvaBugEntry]) -> (f64, f64) {
        let mut full = 0usize;
        let mut line_only = 0usize;
        for (i, e) in entries.iter().enumerate() {
            let case = CaseInput::from_entry(e);
            let responses = model.solve(&case, 5, 0.2, 100 + i as u64);
            if responses.iter().any(|r| {
                r.bug_line_number == e.bug_line_number && r.fixed_line == e.fixed_line.trim()
            }) {
                full += 1;
            }
            if responses
                .iter()
                .any(|r| r.bug_line_number == e.bug_line_number)
            {
                line_only += 1;
            }
        }
        let n = entries.len().max(1) as f64;
        (full as f64 / n, line_only as f64 / n)
    }

    #[test]
    fn stronger_baselines_do_better() {
        let out = run_pipeline(&PipelineConfig::tiny(23));
        let entries = out.datasets.sva_bug;
        assert!(entries.len() >= 6);
        let (weak_full, _) =
            eval_accuracy(&BaselineModel::new(BaselineKind::RandomGuess), &entries);
        let (strong_full, strong_line) = eval_accuracy(
            &BaselineModel::new(BaselineKind::IterativeReasoner),
            &entries,
        );
        assert!(
            strong_full >= weak_full,
            "iterative reasoner ({strong_full}) should not be worse than random ({weak_full})"
        );
        assert!(
            strong_line > 0.3,
            "the strongest baseline should localise a fair share of bug lines, got {strong_line}"
        );
    }

    #[test]
    fn baselines_have_distinct_names_and_mapping() {
        let models = all_baselines();
        assert_eq!(models.len(), 6);
        let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert_eq!(
            BaselineKind::IterativeReasoner.surrogate_for(),
            "o1-preview"
        );
        assert!(BaselineKind::GeneralHeuristic
            .display_name()
            .contains("surrogate"));
    }

    #[test]
    fn baseline_costs_escalate_strictly_with_tier() {
        let costs: Vec<u32> = BaselineKind::all().iter().map(BaselineKind::cost).collect();
        assert!(
            costs.windows(2).all(|pair| pair[0] < pair[1]),
            "tier order must be a strict cost ladder, got {costs:?}"
        );
        // The trait surfaces the same number, and every annotated tier is
        // cheaper than an un-annotated model's default.
        let model = BaselineModel::new(BaselineKind::ConeAnalyst);
        assert_eq!(model.cost(), BaselineKind::ConeAnalyst.cost());
        assert!(costs.iter().all(|&cost| cost < 100));
    }

    #[test]
    fn baseline_output_is_deterministic_per_seed() {
        let out = run_pipeline(&PipelineConfig::tiny(29));
        let entry = &out.datasets.sva_bug[0];
        let case = CaseInput::from_entry(entry);
        let model = BaselineModel::new(BaselineKind::ConeAnalyst);
        assert_eq!(model.solve(&case, 5, 0.2, 3), model.solve(&case, 5, 0.2, 3));
    }

    #[test]
    fn edit_kind_mapping() {
        assert!(edit_matches_kind(
            FixEdit::ValueTweak,
            svmutate::BugKind::Value
        ));
        assert!(edit_matches_kind(FixEdit::VarSwap, svmutate::BugKind::Var));
        assert!(!edit_matches_kind(FixEdit::VarSwap, svmutate::BugKind::Op));
    }
}
