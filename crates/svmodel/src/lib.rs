//! # svmodel — the AssertSolver surrogate model, its training stages and baselines
//!
//! The paper fine-tunes Deepseek-Coder-6.7b with PT → SFT → DPO on eight A800 GPUs.
//! This crate reproduces the *training dynamics* of that recipe at laptop scale with a
//! trainable statistical policy: a Verilog bigram language model (continual
//! pretraining), a linear softmax line-localisation policy and fix-ranking policy
//! (supervised fine-tuning by SGD), and pairwise preference updates on error responses
//! to challenging cases (DPO).  Inference takes the same three inputs as the paper's
//! model — Spec, buggy SystemVerilog and logs — and returns the buggy line, a fix and
//! a chain of thought, sampled `n` times at a configurable temperature for pass@k
//! evaluation.  Rule-based baseline engines stand in for the commercial LLMs the paper
//! compares against.
//!
//! ## Quick example
//!
//! ```
//! use svmodel::{AssertSolverModel, CaseInput, RepairModel};
//! use svdata::{run_pipeline, PipelineConfig};
//!
//! let data = run_pipeline(&PipelineConfig::tiny(1));
//! let entry = &data.datasets.sva_bug[0];
//! let model = AssertSolverModel::base(0);
//! let responses = model.solve(&CaseInput::from_entry(entry), 3, 0.2, 7);
//! assert_eq!(responses.len(), 3);
//! ```

pub mod baselines;
pub mod features;
pub mod fixgen;
pub mod lm;
pub mod policy;
pub mod solver;

pub use baselines::{all_baselines, BaselineKind, BaselineModel};
pub use features::{line_candidates, CaseInput, LineCandidate, LINE_FEATURES};
pub use fixgen::{fix_candidates, fix_candidates_for_case, FixCandidate, FixEdit, FIX_FEATURES};
pub use lm::{tokenize, NgramLm};
pub use policy::Policy;
pub use solver::{AssertSolverModel, PreferencePair, RepairModel, Response, TrainingStage};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::AssertSolverModel>();
        assert_send_sync::<super::BaselineModel>();
        assert_send_sync::<super::Response>();
        assert_send_sync::<super::NgramLm>();
    }
}
