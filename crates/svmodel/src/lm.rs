//! Verilog tokenizer and interpolated bigram language model.
//!
//! The language model is the reproduction's continual-pretraining stage: it is trained
//! on the *Verilog-PT* text (specifications, code, failure analyses) and provides
//! per-line surprisal features to the repair policy, standing in for the next-token
//! knowledge a pretrained transformer would contribute.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Splits Verilog/spec text into word and operator tokens.
///
/// Identifiers, numbers and multi-character operators each become one token;
/// whitespace is discarded.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let flush = |current: &mut String, tokens: &mut Vec<String>| {
        if !current.is_empty() {
            tokens.push(std::mem::take(current));
        }
    };
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' || c == '\'' {
            current.push(c);
            i += 1;
            continue;
        }
        flush(&mut current, &mut tokens);
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Greedy two/three-character operators.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let three: String = chars[i..(i + 3).min(chars.len())].iter().collect();
        if ["|->", "|=>", "<<<", ">>>", "==="].contains(&three.as_str()) {
            tokens.push(three);
            i += 3;
        } else if ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "##"].contains(&two.as_str()) {
            tokens.push(two);
            i += 2;
        } else {
            tokens.push(c.to_string());
            i += 1;
        }
    }
    flush(&mut current, &mut tokens);
    tokens
}

/// An interpolated bigram language model with add-k smoothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NgramLm {
    unigrams: BTreeMap<String, u64>,
    bigrams: BTreeMap<(String, String), u64>,
    total_tokens: u64,
}

impl NgramLm {
    /// Creates an empty (untrained) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` once some text has been ingested.
    pub fn is_trained(&self) -> bool {
        self.total_tokens > 0
    }

    /// Number of distinct tokens seen.
    pub fn vocab_size(&self) -> usize {
        self.unigrams.len()
    }

    /// Ingests one text into the counts.
    pub fn train_text(&mut self, text: &str) {
        let tokens = tokenize(text);
        for window in tokens.windows(2) {
            *self
                .bigrams
                .entry((window[0].clone(), window[1].clone()))
                .or_insert(0) += 1;
        }
        for token in tokens {
            *self.unigrams.entry(token).or_insert(0) += 1;
            self.total_tokens += 1;
        }
    }

    /// Ingests a batch of texts.
    pub fn train<'a>(&mut self, texts: impl IntoIterator<Item = &'a str>) {
        for text in texts {
            self.train_text(text);
        }
    }

    /// Interpolated probability of `next` following `prev`.
    pub fn probability(&self, prev: &str, next: &str) -> f64 {
        let k = 0.05;
        let vocab = self.vocab_size().max(1) as f64;
        let unigram_count = *self.unigrams.get(next).unwrap_or(&0) as f64;
        let unigram = (unigram_count + k) / (self.total_tokens as f64 + k * vocab);
        let prev_count = *self.unigrams.get(prev).unwrap_or(&0) as f64;
        let bigram_count = *self
            .bigrams
            .get(&(prev.to_string(), next.to_string()))
            .unwrap_or(&0) as f64;
        let bigram = (bigram_count + k) / (prev_count + k * vocab);
        0.7 * bigram + 0.3 * unigram
    }

    /// Mean negative log-probability per token of a line (its surprisal).
    ///
    /// Untrained models return a constant so the feature is uninformative rather than
    /// misleading.
    pub fn surprisal(&self, line: &str) -> f64 {
        if !self.is_trained() {
            return 1.0;
        }
        let tokens = tokenize(line);
        if tokens.len() < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for window in tokens.windows(2) {
            total += -self.probability(&window[0], &window[1]).ln();
            count += 1;
        }
        total / count.max(1) as f64
    }

    /// Perplexity of a text under the model.
    pub fn perplexity(&self, text: &str) -> f64 {
        self.surprisal(text).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_operators_and_words() {
        let tokens = tokenize("if (!rst_n) cnt <= cnt + 2'd1;");
        assert!(tokens.contains(&"rst_n".to_string()));
        assert!(tokens.contains(&"<=".to_string()));
        assert!(tokens.contains(&"2'd1".to_string()));
        assert!(tokens.contains(&"!".to_string()));
        let sva = tokenize("end_cnt |-> ##1 valid_out == 1");
        assert!(sva.contains(&"|->".to_string()));
        assert!(sva.contains(&"##".to_string()));
        assert!(sva.contains(&"==".to_string()));
    }

    #[test]
    fn trained_model_prefers_seen_patterns() {
        let mut lm = NgramLm::new();
        for _ in 0..20 {
            lm.train_text(
                "always @(posedge clk or negedge rst_n) begin if (!rst_n) q <= 0; else q <= d; end",
            );
        }
        assert!(lm.is_trained());
        let familiar = lm.surprisal("if (!rst_n) q <= 0;");
        let weird = lm.surprisal("zz9 %% qq7 ^^ @@");
        assert!(familiar < weird, "familiar={familiar} weird={weird}");
    }

    #[test]
    fn untrained_model_is_neutral() {
        let lm = NgramLm::new();
        assert_eq!(lm.surprisal("anything at all"), 1.0);
        assert!(!lm.is_trained());
    }

    #[test]
    fn perplexity_is_exp_of_surprisal() {
        let mut lm = NgramLm::new();
        lm.train_text("assign y = a & b;");
        let s = lm.surprisal("assign y = a & b;");
        assert!((lm.perplexity("assign y = a & b;") - s.exp()).abs() < 1e-9);
    }

    #[test]
    fn probabilities_are_normalised_enough() {
        let mut lm = NgramLm::new();
        lm.train_text("a b a b a b a c");
        let p_ab = lm.probability("a", "b");
        let p_ac = lm.probability("a", "c");
        assert!(p_ab > p_ac);
        assert!(p_ab <= 1.0 && p_ac > 0.0);
    }
}
