//! The AssertSolver surrogate model and its training stages.
//!
//! [`AssertSolverModel`] packages the pretrained language model, the line-localisation
//! policy and the fix-ranking policy behind the same three-input interface the paper's
//! LLM exposes (Spec, buggy SV, logs → buggy line, fix, CoT), and implements the three
//! training stages: continual pretraining on *Verilog-PT*, supervised fine-tuning on
//! *SVA-Bug*/*Verilog-Bug*, and DPO on error responses to challenging cases.

use crate::features::{line_candidates, CaseInput, LineCandidate};
use crate::fixgen::{fix_candidates_for_case, FixCandidate};
use crate::lm::NgramLm;
use crate::policy::Policy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use svdata::{SvaBugEntry, VerilogBugEntry, VerilogPtEntry};

/// One model answer: the suspected buggy line, the proposed fix and an optional
/// explanation, mirroring the JSON schema the paper prompts for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// 1-based line number of the suspected buggy line.
    pub bug_line_number: u32,
    /// The text of the suspected buggy line.
    pub buggy_line: String,
    /// The proposed replacement line.
    pub fixed_line: String,
    /// Optional chain-of-thought explanation.
    pub cot: Option<String>,
}

impl Response {
    /// Serialises the response as the JSON object the inference interface returns.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("response serialises")
    }
}

/// Anything that can answer an assertion-failure case.
pub trait RepairModel {
    /// Display name used in tables.
    fn name(&self) -> &str;

    /// Stable identity for persistent-cache headers (`svserve::persist`): two
    /// models that can produce different responses must return different
    /// identities, or a warm start could replay one model's cached responses as
    /// the other's.  Defaults to the display name, which suffices for stateless
    /// or hand-tuned models; models with trained or seeded internal state must
    /// fold a content fingerprint in (as [`AssertSolverModel`] does).
    fn identity(&self) -> String {
        self.name().to_string()
    }

    /// Relative cost of one [`RepairModel::solve`] invocation, in abstract units.
    ///
    /// Routing ladders (`svserve::route`) order their rungs cheapest-first by
    /// this number, so it only needs to be *ordinally* correct — "the SFT
    /// checkpoint is pricier than the base model, o1-style iterative reasoning
    /// is the most expensive baseline".  Defaults to 100 so un-annotated models
    /// sort after every annotated one (and are tried last by an escalation
    /// ladder).  [`AssertSolverModel`] maps its [`TrainingStage`] onto this
    /// scale; `BaselineModel` maps its tier.
    fn cost(&self) -> u32 {
        100
    }

    /// Generates `samples` candidate solutions for a case at the given temperature.
    fn solve(&self, case: &CaseInput, samples: usize, temperature: f64, seed: u64)
        -> Vec<Response>;
}

/// Training progress of the surrogate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrainingStage {
    /// Untrained base model (random behaviour, like Deepseek-Coder-6.7b on this task).
    Base,
    /// After continual pretraining on Verilog-PT.
    Pretrained,
    /// After supervised fine-tuning.
    Sft,
    /// After DPO on challenging cases (the full AssertSolver).
    Dpo,
}

impl TrainingStage {
    /// Short human-readable label ("base", "pt", "sft", "dpo") used in ladder
    /// tables and routing metrics.
    pub fn label(&self) -> &'static str {
        match self {
            TrainingStage::Base => "base",
            TrainingStage::Pretrained => "pt",
            TrainingStage::Sft => "sft",
            TrainingStage::Dpo => "dpo",
        }
    }

    /// Relative serving cost of a checkpoint at this stage (see
    /// [`RepairModel::cost`]): later stages are strictly pricier, so a
    /// base → SFT → DPO ladder escalates in training order.
    pub fn cost(&self) -> u32 {
        match self {
            TrainingStage::Base => 10,
            TrainingStage::Pretrained => 20,
            TrainingStage::Sft => 45,
            TrainingStage::Dpo => 60,
        }
    }
}

/// A preference pair harvested from a challenging case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferencePair {
    /// Features of the correct (chosen) candidate.
    pub chosen: Vec<f64>,
    /// Features of the incorrect (rejected) candidate the model actually produced.
    pub rejected: Vec<f64>,
    /// Margin of the frozen reference (SFT) policy on this pair.
    pub reference_margin: f64,
    /// `true` when the pair belongs to the line policy, `false` for the fix policy.
    pub is_line_pair: bool,
}

/// The trainable surrogate of the paper's AssertSolver model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssertSolverModel {
    lm: NgramLm,
    line_policy: Policy,
    fix_policy: Policy,
    stage: TrainingStage,
    display_name: String,
}

impl AssertSolverModel {
    /// Creates the untrained base model (noisy random policies, empty language model).
    pub fn base(seed: u64) -> Self {
        Self {
            lm: NgramLm::new(),
            line_policy: Policy::noisy(crate::features::LINE_FEATURES, seed),
            fix_policy: Policy::noisy(crate::fixgen::FIX_FEATURES, seed ^ 0xF1),
            stage: TrainingStage::Base,
            display_name: "Base model".to_string(),
        }
    }

    /// Current training stage.
    pub fn stage(&self) -> TrainingStage {
        self.stage
    }

    /// Overrides the display name (used when labelling table rows).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.display_name = name.into();
        self
    }

    /// Read access to the language model (exposed for diagnostics and benches).
    pub fn language_model(&self) -> &NgramLm {
        &self.lm
    }

    /// Stage 1: continual pretraining on the Verilog-PT dataset.
    pub fn pretrain(&mut self, entries: &[VerilogPtEntry]) {
        for entry in entries {
            self.lm.train_text(&entry.text());
        }
        if self.stage == TrainingStage::Base {
            self.stage = TrainingStage::Pretrained;
            self.display_name = "PT model".to_string();
        }
    }

    /// Stage 2: supervised fine-tuning on SVA-Bug plus the auxiliary Verilog-Bug task.
    pub fn sft(
        &mut self,
        sva_bug: &[SvaBugEntry],
        verilog_bug: &[VerilogBugEntry],
        epochs: usize,
        learning_rate: f64,
        seed: u64,
    ) {
        // Reset the noisy base weights: fine-tuning starts from the pretrained state.
        self.line_policy = Policy::zeros(crate::features::LINE_FEATURES);
        self.fix_policy = Policy::zeros(crate::fixgen::FIX_FEATURES);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples: Vec<(CaseInput, u32, String, String)> = sva_bug
            .iter()
            .map(|e| {
                (
                    CaseInput::from_entry(e),
                    e.bug_line_number,
                    e.buggy_line.clone(),
                    e.fixed_line.clone(),
                )
            })
            .collect();
        examples.extend(verilog_bug.iter().map(|e| {
            (
                CaseInput {
                    spec: e.spec.clone(),
                    buggy_source: e.buggy_source.clone(),
                    logs: String::new(),
                },
                e.bug_line_number,
                e.buggy_line.clone(),
                e.fixed_line.clone(),
            )
        }));

        for _ in 0..epochs {
            examples.shuffle(&mut rng);
            for (case, bug_line, buggy_line, fixed_line) in &examples {
                let lines = line_candidates(case, &self.lm);
                if let Some(correct) = lines.iter().position(|c| c.line_number == *bug_line) {
                    let features: Vec<Vec<f64>> =
                        lines.iter().map(|c| c.features.clone()).collect();
                    self.line_policy.sft_step(&features, correct, learning_rate);
                }
                let fixes = fix_candidates_for_case(case, buggy_line, &self.lm);
                if let Some(correct) = fixes.iter().position(|f| f.text == fixed_line.trim()) {
                    let features: Vec<Vec<f64>> =
                        fixes.iter().map(|f| f.features.clone()).collect();
                    self.fix_policy.sft_step(&features, correct, learning_rate);
                }
            }
        }
        self.stage = TrainingStage::Sft;
        self.display_name = "SFT model".to_string();
    }

    /// Samples the model on every training case and harvests preference pairs from the
    /// challenging ones (cases with at least one incorrect response among `samples`).
    pub fn collect_challenging(
        &self,
        entries: &[SvaBugEntry],
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<PreferencePair> {
        let mut pairs = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            let case = CaseInput::from_entry(entry);
            let lines = line_candidates(&case, &self.lm);
            let Some(correct_line) = lines
                .iter()
                .find(|c| c.line_number == entry.bug_line_number)
            else {
                continue;
            };
            let fixes = fix_candidates_for_case(&case, &entry.buggy_line, &self.lm);
            let correct_fix = fixes.iter().find(|f| f.text == entry.fixed_line.trim());

            let responses = self.solve(&case, samples, temperature, seed ^ (i as u64));
            for response in responses {
                let line_correct = response.bug_line_number == entry.bug_line_number;
                let fix_correct = response.fixed_line == entry.fixed_line.trim();
                if line_correct && fix_correct {
                    continue;
                }
                if !line_correct {
                    if let Some(rejected) = lines
                        .iter()
                        .find(|c| c.line_number == response.bug_line_number)
                    {
                        pairs.push(PreferencePair {
                            chosen: correct_line.features.clone(),
                            rejected: rejected.features.clone(),
                            reference_margin: self.line_policy.score(&correct_line.features)
                                - self.line_policy.score(&rejected.features),
                            is_line_pair: true,
                        });
                    }
                } else if let (Some(correct_fix), Some(rejected)) = (
                    correct_fix,
                    fixes.iter().find(|f| f.text == response.fixed_line),
                ) {
                    pairs.push(PreferencePair {
                        chosen: correct_fix.features.clone(),
                        rejected: rejected.features.clone(),
                        reference_margin: self.fix_policy.score(&correct_fix.features)
                            - self.fix_policy.score(&rejected.features),
                        is_line_pair: false,
                    });
                }
            }
        }
        pairs
    }

    /// Stage 3: DPO on the harvested preference pairs (β = 0.1 in the paper).
    pub fn dpo(&mut self, pairs: &[PreferencePair], beta: f64, learning_rate: f64) {
        for pair in pairs {
            if pair.is_line_pair {
                self.line_policy.dpo_step(
                    &pair.chosen,
                    &pair.rejected,
                    pair.reference_margin,
                    beta,
                    learning_rate,
                );
            } else {
                self.fix_policy.dpo_step(
                    &pair.chosen,
                    &pair.rejected,
                    pair.reference_margin,
                    beta,
                    learning_rate,
                );
            }
        }
        self.stage = TrainingStage::Dpo;
        self.display_name = "AssertSolver".to_string();
    }

    fn propose(
        &self,
        case: &CaseInput,
        lines: &[LineCandidate],
        temperature: f64,
        rng: &mut StdRng,
    ) -> Response {
        if lines.is_empty() {
            return Response {
                bug_line_number: 0,
                buggy_line: String::new(),
                fixed_line: String::new(),
                cot: None,
            };
        }
        let line_features: Vec<Vec<f64>> = lines.iter().map(|c| c.features.clone()).collect();
        let line_idx = self.line_policy.sample(&line_features, temperature, rng);
        let line = &lines[line_idx];
        let fixes: Vec<FixCandidate> = fix_candidates_for_case(case, &line.text, &self.lm);
        let fixed_line = if fixes.is_empty() {
            line.text.clone()
        } else {
            let fix_features: Vec<Vec<f64>> = fixes.iter().map(|f| f.features.clone()).collect();
            let fix_idx = self.fix_policy.sample(&fix_features, temperature, rng);
            fixes[fix_idx].text.clone()
        };
        let cot = if self.stage >= TrainingStage::Sft {
            let failing = case.failing_assertions().join(", ");
            Some(format!(
                "The log reports the failing assertion(s) [{failing}]. Tracing the signals they observe back through the design, line {} (`{}`) drives the observed behaviour and contradicts the specification; replacing it with `{}` makes the assertion hold.",
                line.line_number, line.text, fixed_line
            ))
        } else {
            None
        };
        Response {
            bug_line_number: line.line_number,
            buggy_line: line.text.clone(),
            fixed_line,
            cot,
        }
    }
}

impl RepairModel for AssertSolverModel {
    fn name(&self) -> &str {
        &self.display_name
    }

    /// Display name plus a content hash of the full serialized model, so two
    /// same-stage models with different weights (e.g. `base(3)` vs `base(11)`,
    /// or SFT runs with different hyperparameters) never share a cache identity.
    fn identity(&self) -> String {
        let serialized = serde_json::to_string(self).expect("model serialises");
        // FNV-1a/64 over the serialized weights; stable across processes because
        // every field renders deterministically (BTreeMaps, shortest-float).
        // Local copy of the hash: svserve's shared helper lives downstream of
        // this crate in the dependency graph.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in serialized.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        format!("{} [{hash:016x}]", self.display_name)
    }

    /// Cost tracks the training stage: every stage makes the checkpoint
    /// strictly pricier to serve, so a multi-stage ladder escalates in
    /// training order (see [`TrainingStage::cost`]).
    fn cost(&self) -> u32 {
        self.stage.cost()
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        let lines = line_candidates(case, &self.lm);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..samples)
            .map(|_| self.propose(case, &lines, temperature, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svdata::{run_pipeline, split_by_module, PipelineConfig};

    fn pipeline_entries() -> (
        Vec<SvaBugEntry>,
        Vec<SvaBugEntry>,
        Vec<VerilogPtEntry>,
        Vec<VerilogBugEntry>,
    ) {
        // A step up from `tiny`: the accuracy assertions below compare models on the
        // eval split, and `tiny`'s one-or-two-case eval set makes them coin flips.
        let out = run_pipeline(&PipelineConfig {
            corpus: svgen::CorpusConfig {
                golden_designs: 20,
                ..svgen::CorpusConfig::default()
            },
            bugs_per_design: 4,
            ..PipelineConfig::tiny(17)
        });
        let split = split_by_module(out.datasets.sva_bug.clone(), 0.75, 1);
        (
            split.train,
            split.eval,
            out.datasets.verilog_pt,
            out.datasets.verilog_bug,
        )
    }

    fn textual_accuracy(model: &dyn RepairModel, entries: &[SvaBugEntry]) -> f64 {
        if entries.is_empty() {
            return 0.0;
        }
        let correct = entries
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                let case = CaseInput::from_entry(e);
                let response = &model.solve(&case, 1, 0.05, 42 + *i as u64)[0];
                response.bug_line_number == e.bug_line_number
                    && response.fixed_line == e.fixed_line.trim()
            })
            .count();
        correct as f64 / entries.len() as f64
    }

    #[test]
    fn training_improves_over_base_model() {
        let (train, eval, pt, vbug) = pipeline_entries();
        assert!(!train.is_empty() && !eval.is_empty());

        let base = AssertSolverModel::base(1);
        let base_accuracy = textual_accuracy(&base, &eval);

        let mut trained = AssertSolverModel::base(1);
        trained.pretrain(&pt);
        trained.sft(&train, &vbug, 6, 0.4, 7);
        let sft_accuracy = textual_accuracy(&trained, &eval);

        assert!(
            sft_accuracy > base_accuracy,
            "SFT accuracy {sft_accuracy} not better than base {base_accuracy}"
        );
        assert!(sft_accuracy > 0.3, "SFT accuracy too low: {sft_accuracy}");
        assert_eq!(trained.stage(), TrainingStage::Sft);
    }

    #[test]
    fn dpo_stage_runs_and_keeps_or_improves_accuracy() {
        let (train, eval, pt, vbug) = pipeline_entries();
        let mut model = AssertSolverModel::base(2);
        model.pretrain(&pt);
        model.sft(&train, &vbug, 6, 0.4, 3);
        let sft_accuracy = textual_accuracy(&model, &eval);
        let pairs = model.collect_challenging(&train, 8, 0.5, 11);
        model.dpo(&pairs, 0.1, 0.05);
        assert_eq!(model.stage(), TrainingStage::Dpo);
        assert_eq!(model.name(), "AssertSolver");
        let dpo_accuracy = textual_accuracy(&model, &eval);
        assert!(
            dpo_accuracy + 0.34 >= sft_accuracy,
            "DPO collapsed accuracy: sft={sft_accuracy} dpo={dpo_accuracy}"
        );
    }

    #[test]
    fn training_stage_costs_follow_training_order() {
        let stages = [
            TrainingStage::Base,
            TrainingStage::Pretrained,
            TrainingStage::Sft,
            TrainingStage::Dpo,
        ];
        let costs: Vec<u32> = stages.iter().map(TrainingStage::cost).collect();
        assert!(
            costs.windows(2).all(|pair| pair[0] < pair[1]),
            "later stages must be strictly pricier, got {costs:?}"
        );
        assert_eq!(TrainingStage::Dpo.label(), "dpo");
        let model = AssertSolverModel::base(1);
        assert_eq!(model.cost(), TrainingStage::Base.cost());
        assert!(
            model.cost() < 100,
            "annotated models beat the trait default"
        );
    }

    #[test]
    fn responses_are_json_and_deterministic_per_seed() {
        let (train, _, _, _) = pipeline_entries();
        let entry = &train[0];
        let case = CaseInput::from_entry(entry);
        let model = AssertSolverModel::base(5);
        let a = model.solve(&case, 3, 0.2, 9);
        let b = model.solve(&case, 3, 0.2, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let json = a[0].to_json();
        assert!(json.contains("bug_line_number"));
        assert!(json.contains("fixed_line"));
    }

    #[test]
    fn sft_model_emits_cot_base_does_not() {
        let (train, _, pt, vbug) = pipeline_entries();
        let entry = &train[0];
        let case = CaseInput::from_entry(entry);
        let base = AssertSolverModel::base(3);
        assert!(base.solve(&case, 1, 0.2, 1)[0].cot.is_none());
        let mut trained = AssertSolverModel::base(3);
        trained.pretrain(&pt);
        trained.sft(&train, &vbug, 2, 0.4, 3);
        let cot = trained.solve(&case, 1, 0.2, 1)[0].cot.clone();
        assert!(cot.is_some());
        assert!(cot.unwrap().contains("failing assertion"));
    }

    #[test]
    fn challenging_cases_yield_preference_pairs_for_imperfect_models() {
        let (train, _, _, _) = pipeline_entries();
        // The base model is very inaccurate, so nearly every case is challenging.
        let base = AssertSolverModel::base(9);
        let pairs = base.collect_challenging(&train, 4, 0.8, 5);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().any(|p| p.is_line_pair));
    }
}
