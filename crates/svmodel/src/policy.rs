//! Linear softmax policy with SFT (cross-entropy SGD) and DPO-style preference
//! updates.
//!
//! The AssertSolver training recipe is PT → SFT → DPO.  In this reproduction the
//! "model" is a pair of linear softmax policies (line localisation and fix ranking)
//! over program features; SFT is plain stochastic gradient descent on the
//! cross-entropy of the correct choice, and DPO is the pairwise preference update
//! obtained by differentiating the DPO loss for a linear policy (the log-ratio against
//! the frozen reference policy reduces to a score difference).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A linear softmax scorer over fixed-length feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    weights: Vec<f64>,
}

impl Policy {
    /// Creates a policy with all-zero weights (a uniform sampler).
    pub fn zeros(features: usize) -> Self {
        Self {
            weights: vec![0.0; features],
        }
    }

    /// Creates a policy with small deterministic pseudo-random weights, used for the
    /// untrained base model so its behaviour is noisy but reproducible.
    pub fn noisy(features: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 0.2 - 0.1
        };
        Self {
            weights: (0..features).map(|_| next()).collect(),
        }
    }

    /// Creates a policy from an explicit weight vector (used by the hand-tuned
    /// baseline surrogates).
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights }
    }

    /// The current weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of features the policy expects.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when the policy has no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Raw score of one feature vector.
    pub fn score(&self, features: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(features.iter())
            .map(|(w, f)| w * f)
            .sum()
    }

    /// Softmax distribution over candidates at the given temperature.
    ///
    /// Temperatures close to zero approach greedy argmax selection; the evaluation
    /// uses 0.2 as in the paper.
    pub fn distribution(&self, candidates: &[Vec<f64>], temperature: f64) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let t = temperature.max(1e-3);
        let scores: Vec<f64> = candidates.iter().map(|c| self.score(c) / t).collect();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Samples a candidate index from the softmax distribution.
    pub fn sample(&self, candidates: &[Vec<f64>], temperature: f64, rng: &mut StdRng) -> usize {
        let dist = self.distribution(candidates, temperature);
        let roll: f64 = rng.gen();
        let mut cumulative = 0.0;
        for (i, p) in dist.iter().enumerate() {
            cumulative += p;
            if roll <= cumulative {
                return i;
            }
        }
        dist.len().saturating_sub(1)
    }

    /// Index of the highest-scoring candidate.
    pub fn argmax(&self, candidates: &[Vec<f64>]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let s = self.score(c);
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        best
    }

    /// One SFT step: cross-entropy gradient pushing probability mass onto the correct
    /// candidate.
    pub fn sft_step(&mut self, candidates: &[Vec<f64>], correct: usize, learning_rate: f64) {
        if candidates.is_empty() || correct >= candidates.len() {
            return;
        }
        let probabilities = self.distribution(candidates, 1.0);
        for (i, candidate) in candidates.iter().enumerate() {
            let indicator = f64::from(i == correct);
            let gradient = indicator - probabilities[i];
            for (w, f) in self.weights.iter_mut().zip(candidate.iter()) {
                *w += learning_rate * gradient * f;
            }
        }
    }

    /// One DPO step on a (chosen, rejected) feature pair.
    ///
    /// For a linear policy the DPO objective reduces to a logistic loss on
    /// `beta * (margin - reference_margin)`; `reference_margin` is the margin of the
    /// frozen SFT policy on the same pair.
    pub fn dpo_step(
        &mut self,
        chosen: &[f64],
        rejected: &[f64],
        reference_margin: f64,
        beta: f64,
        learning_rate: f64,
    ) {
        let margin = self.score(chosen) - self.score(rejected);
        let z = beta * (margin - reference_margin);
        let sigma = 1.0 / (1.0 + z.exp());
        for ((w, c), r) in self
            .weights
            .iter_mut()
            .zip(chosen.iter())
            .zip(rejected.iter())
        {
            *w += learning_rate * beta * sigma * (c - r);
        }
    }

    /// Accuracy of greedy selection over a labelled set (used by training diagnostics).
    pub fn accuracy(&self, examples: &[(Vec<Vec<f64>>, usize)]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|(candidates, label)| self.argmax(candidates) == *label)
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_examples() -> Vec<(Vec<Vec<f64>>, usize)> {
        // Candidate feature = [bias, signal]; the correct candidate always has
        // signal = 1.
        let mut out = Vec::new();
        for i in 0..32 {
            let correct = i % 3;
            let candidates: Vec<Vec<f64>> =
                (0..3).map(|j| vec![1.0, f64::from(j == correct)]).collect();
            out.push((candidates, correct));
        }
        out
    }

    #[test]
    fn sft_learns_a_separable_problem() {
        let mut policy = Policy::zeros(2);
        let examples = toy_examples();
        assert!(policy.accuracy(&examples) < 0.7);
        for _ in 0..50 {
            for (candidates, correct) in &examples {
                policy.sft_step(candidates, *correct, 0.5);
            }
        }
        assert_eq!(policy.accuracy(&examples), 1.0);
    }

    #[test]
    fn dpo_increases_margin_towards_chosen() {
        let mut policy = Policy::zeros(2);
        let chosen = vec![1.0, 1.0];
        let rejected = vec![1.0, 0.0];
        let before = policy.score(&chosen) - policy.score(&rejected);
        for _ in 0..20 {
            policy.dpo_step(&chosen, &rejected, 0.0, 0.1, 0.5);
        }
        let after = policy.score(&chosen) - policy.score(&rejected);
        assert!(after > before);
    }

    #[test]
    fn distribution_sums_to_one_and_respects_temperature() {
        let policy = Policy::noisy(3, 7);
        let candidates = vec![
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.5, 0.5],
        ];
        let dist = policy.distribution(&candidates, 0.2);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Lower temperature concentrates mass on the argmax.
        let sharp = policy.distribution(&candidates, 0.05);
        let smooth = policy.distribution(&candidates, 5.0);
        let max_sharp = sharp.iter().cloned().fold(0.0, f64::max);
        let max_smooth = smooth.iter().cloned().fold(0.0, f64::max);
        assert!(max_sharp >= max_smooth);
    }

    #[test]
    fn sampling_is_reproducible_per_seed() {
        let policy = Policy::noisy(2, 3);
        let candidates = vec![vec![1.0, 0.2], vec![1.0, 0.9], vec![1.0, 0.5]];
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10)
                .map(|_| policy.sample(&candidates, 0.5, &mut rng))
                .collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10)
                .map(|_| policy.sample(&candidates, 0.5, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_policies_differ_by_seed_but_are_deterministic() {
        assert_eq!(Policy::noisy(4, 1), Policy::noisy(4, 1));
        assert_ne!(Policy::noisy(4, 1), Policy::noisy(4, 2));
    }

    #[test]
    fn empty_candidates_are_handled() {
        let policy = Policy::zeros(2);
        assert!(policy.distribution(&[], 1.0).is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.sample(&[], 1.0, &mut rng), 0);
    }
}
