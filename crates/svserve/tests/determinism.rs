//! Service-level determinism over real pipeline cases: the same seed must yield
//! byte-identical response sets no matter how many workers serve the load.

use std::sync::atomic::{AtomicUsize, Ordering};
use svmodel::{AssertSolverModel, CaseInput, RepairModel, Response};
use svserve::{serve_scoped, RepairRequest, ServiceConfig};

/// Wraps a model and counts invocations, to prove cache hits bypass the model.
struct Counting<M> {
    inner: M,
    calls: AtomicUsize,
}

impl<M: RepairModel> RepairModel for Counting<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.solve(case, samples, temperature, seed)
    }
}

fn workload() -> Vec<RepairRequest> {
    let out = svdata::run_pipeline(&svdata::PipelineConfig::tiny(23));
    assert!(!out.datasets.sva_bug.is_empty());
    // Repeat the dataset so the workload exceeds the case count and exercises reuse.
    (0..24)
        .map(|i| {
            let entry = &out.datasets.sva_bug[i % out.datasets.sva_bug.len()];
            RepairRequest::new(CaseInput::from_entry(entry), 4, 0.3)
        })
        .collect()
}

fn run(
    requests: Vec<RepairRequest>,
    workers: usize,
    seed: u64,
) -> (Vec<std::sync::Arc<Vec<Response>>>, usize) {
    let model = Counting {
        inner: AssertSolverModel::base(5),
        calls: AtomicUsize::new(0),
    };
    let responses = serve_scoped(
        &model,
        ServiceConfig::default()
            .with_workers(workers)
            .with_seed(seed),
        |service| {
            service
                .solve_all(requests)
                .into_iter()
                .map(|outcome| outcome.responses)
                .collect()
        },
    );
    (responses, model.calls.load(Ordering::SeqCst))
}

#[test]
fn same_seed_identical_results_at_one_and_four_workers() {
    let requests = workload();
    let (one, _) = run(requests.clone(), 1, 0xDEED);
    let (four, _) = run(requests.clone(), 4, 0xDEED);
    assert_eq!(one, four, "worker count changed service results");

    // Byte-level check, since "identical" must hold for serialized output too.
    let bytes_one: Vec<String> = one
        .iter()
        .flat_map(|r| r.iter())
        .map(Response::to_json)
        .collect();
    let bytes_four: Vec<String> = four
        .iter()
        .flat_map(|r| r.iter())
        .map(Response::to_json)
        .collect();
    assert_eq!(bytes_one, bytes_four);

    // A different service seed must actually change something (the per-case seeds
    // derive from it), otherwise the knob is dead.
    let (other_seed, _) = run(requests, 4, 0xBEEF);
    assert_ne!(one, other_seed, "service seed had no effect");
}

#[test]
fn duplicate_cases_hit_the_cache_not_the_model() {
    let requests = workload();
    let distinct = requests
        .iter()
        .map(|r| r.key())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(
        distinct < requests.len(),
        "workload must contain duplicates"
    );
    let (_, calls) = run(requests, 4, 1);
    assert_eq!(
        calls, distinct,
        "each distinct case must be solved exactly once; duplicates served from cache"
    );
}
