//! End-to-end determinism of the async session runtime: `evaluate_model` and
//! `evaluate_ladder` now drive every case as a waker-scheduled session on the
//! `svserve` session engine, and the results must be byte-identical at any
//! driver count (1/2/4/8), with warm or cold caches (in-memory and on-disk).
//!
//! Driver scheduling only changes *when* a session runs; everything a session
//! produces is a pure function of request content (content-derived sampler
//! seeds, content-hash shard placement, pure verdicts).  These tests pin that
//! contract.

use assertsolver::{evaluate_ladder, evaluate_model, EvalConfig, LadderEvaluation};
use std::sync::Arc;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, BaselineKind, BaselineModel, RepairModel};

fn corpus(limit: usize) -> Vec<SvaBugEntry> {
    // A small mixed corpus: machine-generated pipeline cases plus human-crafted
    // ones, truncated to keep the driver-count sweep fast.
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(limit);
    assert!(!entries.is_empty());
    entries
}

fn config(drivers: usize) -> EvalConfig {
    EvalConfig {
        workers: 2,
        verify_workers: 2,
        drivers,
        ..EvalConfig::quick(37)
    }
}

#[test]
fn evaluation_is_byte_identical_at_1_2_4_8_drivers() {
    let entries = corpus(6);
    let model = AssertSolverModel::base(9);
    let baseline = evaluate_model(&model, &entries, &config(1));
    let baseline_json = serde_json::to_string(&baseline).expect("evaluation serialises");
    // drivers = 0 resolves through the ASSERTSOLVER_DRIVERS environment
    // override (CI's async matrix runs this suite at 1 and 4), so each matrix
    // leg exercises a different auto-resolved driver count here.
    let auto = evaluate_model(&model, &entries, &config(0));
    assert_eq!(
        baseline, auto,
        "auto driver resolution changed the evaluation"
    );
    for drivers in [2usize, 4, 8] {
        let run = evaluate_model(&model, &entries, &config(drivers));
        assert_eq!(
            baseline, run,
            "driver count {drivers} changed the evaluation"
        );
        assert_eq!(
            baseline_json,
            serde_json::to_string(&run).expect("evaluation serialises"),
            "driver count {drivers} changed the serialized evaluation"
        );
        assert_eq!(baseline.passk(), run.passk());
        assert_eq!(baseline.histogram(8), run.histogram(8));
    }
}

fn ladder_models() -> Vec<Arc<dyn RepairModel + Send + Sync>> {
    [
        BaselineKind::RandomGuess,
        BaselineKind::KeywordMatch,
        BaselineKind::IterativeReasoner,
    ]
    .into_iter()
    .map(|kind| Arc::new(BaselineModel::new(kind)) as Arc<dyn RepairModel + Send + Sync>)
    .collect()
}

fn ladder_eval(config: &EvalConfig, entries: &[SvaBugEntry]) -> LadderEvaluation {
    evaluate_ladder(&ladder_models(), entries, config).evaluation
}

#[test]
fn ladder_evaluation_is_byte_identical_across_driver_counts() {
    let entries = corpus(4);
    let baseline = ladder_eval(&config(1), &entries);
    let baseline_json = serde_json::to_string(&baseline).expect("ladder serialises");
    for drivers in [4usize, 8] {
        let run = ladder_eval(&config(drivers), &entries);
        assert_eq!(
            baseline_json,
            serde_json::to_string(&run).expect("ladder serialises"),
            "driver count {drivers} changed the ladder evaluation"
        );
    }
}

#[test]
fn warm_disk_caches_replay_identically_at_any_driver_count() {
    let dir = std::env::temp_dir().join(format!(
        "assertsolver-async-determinism-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = corpus(4);
    let model = AssertSolverModel::base(9);
    let with_dir = |drivers: usize| EvalConfig {
        cache_dir: Some(dir.display().to_string()),
        ..config(drivers)
    };

    // Cold run at 1 driver populates the response + verdict snapshots.
    let cold = evaluate_model(&model, &entries, &with_dir(1));
    // Warm runs at other driver counts preload from disk: byte-identical.
    for drivers in [2usize, 8] {
        let warm = evaluate_model(&model, &entries, &with_dir(drivers));
        assert_eq!(
            cold, warm,
            "warm start at {drivers} drivers changed the evaluation"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
