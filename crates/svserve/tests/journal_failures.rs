//! Journal behaviour on the failure paths: every way a session can die must
//! journal **exactly one** terminal event and leave the sink fully drainable.
//!
//! The contracts under test:
//!
//! * a **timed-out** session journals one `Terminal { TimedOut }` — emitted by
//!   the owner span after the join, because the future itself is dropped by
//!   the deadline and can never report;
//! * a **cancelled** session journals one `Terminal { Aborted } `, whether the
//!   owner calls `finish` with the joined outcome or merely drops the span;
//! * a **shed** session journals one `Terminal { Shed }` from inside the
//!   future, and the owner's later `finish` with the completed outcome does
//!   not double-journal (first terminal wins);
//! * a **panicking judge** is absorbed into a failed verdict: the session
//!   still journals one `Terminal { Completed }`, the panic surfaces as a
//!   volatile `Panic` diagnostic, and nothing stays buffered after a drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use svmodel::{CaseInput, RepairModel, Response};
use svserve::{
    verdict_key, JournalEvent, JournalMode, JournalRecord, JournalSink, JournalSpec, RepairRequest,
    RepairService, ServiceConfig, SessionConfig, SessionEnd, SessionEngine, SessionOutcome,
    SessionSpan, SubmitError, VerifyConfig, VerifyPool, VerifyRequest, TERMINAL_SEQ,
};

struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

struct GatedModel {
    gate: Arc<Gate>,
    calls: AtomicUsize,
}

impl RepairModel for GatedModel {
    fn name(&self) -> &str {
        "gated"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.gate.wait_open();
        self.calls.fetch_add(1, Ordering::SeqCst);
        (0..samples)
            .map(|i| Response {
                bug_line_number: 1 + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("fix seed {seed} sample {i}"),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        2,
        0.2,
    )
}

fn gated_service(gate: &Arc<Gate>, config: ServiceConfig) -> RepairService<GatedModel> {
    RepairService::start(
        Arc::new(GatedModel {
            gate: Arc::clone(gate),
            calls: AtomicUsize::new(0),
        }),
        config,
    )
}

fn wait_until(deadline: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    predicate()
}

/// The terminal records of `session`, in drain order.
fn terminals(records: &[JournalRecord], session: u64) -> Vec<SessionEnd> {
    records
        .iter()
        .filter(|r| r.session == session && r.seq == TERMINAL_SEQ)
        .map(|r| match &r.event {
            JournalEvent::Terminal { outcome } => *outcome,
            other => panic!("terminal seq carries non-terminal event {other:?}"),
        })
        .collect()
}

/// Asserts the sink is empty after a drain: no stranded buffer slots.
fn assert_fully_drained(sink: &Arc<JournalSink>) {
    let counters = sink.counters();
    assert_eq!(counters.buffered, 0, "drain must leave nothing buffered");
    assert!(
        sink.drain_sorted().is_empty(),
        "a second drain must find no stranded records"
    );
}

#[test]
fn timed_out_sessions_journal_exactly_one_terminal() {
    let sink = JournalSink::shared(JournalSpec::default());
    let tracer = sink.handle();
    let gate = Gate::new();
    let service = gated_service(&gate, ServiceConfig::default().with_workers(1));
    let engine = SessionEngine::new(
        SessionConfig::default()
            .with_drivers(2)
            .with_deadline(Duration::from_millis(40)),
    );

    let spans: Vec<SessionSpan> = (0..3)
        .map(|tag| SessionSpan::new(&tracer, 100 + tag as u64))
        .collect();
    let sessions: Vec<_> = (0..3)
        .map(|tag| {
            let service = &service;
            let handle = spans[tag].handle();
            async move {
                let ticket = service
                    .submit_async(request(tag))
                    .expect("pool open")
                    .await
                    .expect("pool open");
                let outcome = ticket.await;
                // Dropped by the deadline before this point: the phase below
                // must never be journaled for a timed-out session.
                handle.timing("samples", outcome.responses.len() as u64);
                outcome.responses.len()
            }
        })
        .collect();
    let outcomes = engine.run_all(sessions);
    assert!(outcomes.iter().all(|o| *o == SessionOutcome::TimedOut));
    for (span, outcome) in spans.iter().zip(&outcomes) {
        span.finish(outcome);
    }
    // Finishing twice must not double-journal.
    for (span, outcome) in spans.iter().zip(&outcomes) {
        span.finish(outcome);
    }
    drop(spans); // drop after finish must not add an Aborted terminal

    let records = sink.drain_sorted();
    for tag in 0..3u64 {
        assert_eq!(
            terminals(&records, 100 + tag),
            vec![SessionEnd::TimedOut],
            "session {tag} must journal exactly one TimedOut terminal"
        );
    }
    assert_eq!(
        records.len(),
        3,
        "timed-out sessions journal nothing but their terminals"
    );
    assert_fully_drained(&sink);

    gate.open();
    assert!(wait_until(Duration::from_secs(10), || {
        service.metrics().in_flight_sessions == 0
    }));
    service.shutdown();
}

#[test]
fn cancelled_sessions_journal_exactly_one_aborted_terminal() {
    let sink = JournalSink::shared(JournalSpec::default());
    let tracer = sink.handle();
    let gate = Gate::new();
    let service = gated_service(&gate, ServiceConfig::default().with_workers(1));
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(2));

    let spans: Vec<SessionSpan> = (0..2)
        .map(|tag| SessionSpan::new(&tracer, 200 + tag as u64))
        .collect();
    let started = Arc::new(AtomicUsize::new(0));
    engine.runtime().scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|tag| {
                let service = &service;
                let started = Arc::clone(&started);
                engine.spawn_session(scope, async move {
                    started.fetch_add(1, Ordering::SeqCst);
                    let ticket = service
                        .submit_async(request(tag))
                        .expect("pool open")
                        .await
                        .expect("pool open");
                    ticket.await.responses.len()
                })
            })
            .collect();
        assert!(wait_until(Duration::from_secs(10), || {
            started.load(Ordering::SeqCst) == 2
        }));
        for handle in &handles {
            handle.cancel();
        }
        // Owner 0 finishes with the joined outcome; owner 1 just drops its
        // span — both paths must journal exactly one Aborted terminal.
        for (tag, handle) in handles.into_iter().enumerate() {
            let outcome = handle.join();
            assert_eq!(outcome, SessionOutcome::Aborted);
            if tag == 0 {
                spans[0].finish(&outcome);
            }
        }
        gate.open();
    });
    drop(spans);

    let records = sink.drain_sorted();
    for tag in 0..2u64 {
        assert_eq!(
            terminals(&records, 200 + tag),
            vec![SessionEnd::Aborted],
            "session {tag} must journal exactly one Aborted terminal"
        );
    }
    assert_fully_drained(&sink);

    assert!(wait_until(Duration::from_secs(10), || {
        service.metrics().in_flight_sessions == 0
    }));
    service.shutdown();
}

#[test]
fn shed_sessions_journal_one_shed_terminal_that_wins_over_finish() {
    let sink = JournalSink::shared(JournalSpec::default());
    let tracer = sink.handle();
    let gate = Gate::new();
    let service = gated_service(
        &gate,
        ServiceConfig::default()
            .with_workers(2)
            .with_max_in_flight(4),
    );
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(4));

    let spans: Vec<SessionSpan> = (0..10)
        .map(|tag| SessionSpan::new(&tracer, 300 + tag as u64))
        .collect();
    let sessions: Vec<_> = (0..10)
        .map(|tag| {
            let service = &service;
            let handle = spans[tag].handle();
            async move {
                match service.submit_async(request(tag)) {
                    Ok(submit) => {
                        let ticket = submit.await.expect("pool open");
                        ticket.await;
                        "served"
                    }
                    Err(SubmitError::Busy) => {
                        handle.shed();
                        "shed"
                    }
                    Err(SubmitError::Closed) => panic!("pool must be open"),
                }
            }
        })
        .collect();
    let outcomes = std::thread::scope(|s| {
        s.spawn(|| {
            assert!(wait_until(Duration::from_secs(10), || {
                let m = service.metrics();
                m.in_flight_sessions == 4 && m.shed_busy == 6
            }));
            gate.open();
        });
        engine.run_all(sessions)
    });
    // Every future completed (with "served" or "shed"); the owner finish must
    // not overwrite an in-future Shed terminal.
    for (span, outcome) in spans.iter().zip(&outcomes) {
        span.finish(outcome);
    }
    drop(spans);

    let records = sink.drain_sorted();
    let mut served = 0usize;
    let mut shed = 0usize;
    for tag in 0..10u64 {
        let ends = terminals(&records, 300 + tag);
        assert_eq!(
            ends.len(),
            1,
            "session {tag} must journal exactly one terminal"
        );
        match ends[0] {
            SessionEnd::Shed => shed += 1,
            SessionEnd::Completed => served += 1,
            other => panic!("unexpected terminal {other:?} for session {tag}"),
        }
    }
    assert_eq!(shed, 6, "every shed session journals Shed");
    assert_eq!(served, 4, "every admitted session journals Completed");
    assert_fully_drained(&sink);
    service.shutdown();
}

#[test]
fn judge_panic_journals_a_diagnostic_and_a_single_completed_terminal() {
    // Full mode so the volatile Panic diagnostic is serialized, not only
    // counted.
    let sink = JournalSink::shared(JournalSpec::default().with_mode(JournalMode::Full));
    let tracer = sink.handle();
    let verifier: VerifyPool<String> = VerifyPool::start(
        Arc::new(|case: &String, response: &Response| {
            if response.fixed_line.contains("boom") {
                panic!("judge blew up");
            }
            response.fixed_line.contains(case.as_str())
        }),
        VerifyConfig {
            workers: 1,
            ..VerifyConfig::default()
        }
        .with_tracer(tracer.clone()),
    );

    let make = |tag: &str, line: &str| {
        let case = format!("case {tag}");
        let response = Response {
            bug_line_number: 1,
            buggy_line: "assign y = 0;".to_string(),
            fixed_line: line.to_string(),
            cot: None,
        };
        let key = verdict_key(&[case.as_bytes()], &response, b"journal-failures");
        VerifyRequest::new(Arc::new(case), response, key)
    };

    let span = SessionSpan::new(&tracer, 400);
    let good = verifier
        .submit(make("good", "fix case good"))
        .expect("pool open");
    let bad = verifier.submit(make("bad", "boom")).expect("pool open");
    assert!(good.wait().verdict, "healthy judge path still verdicts");
    assert!(
        !bad.wait().verdict,
        "absorbed panic serves a failed verdict"
    );
    span.finish(&SessionOutcome::Completed(()));
    drop(span);

    assert_eq!(verifier.metrics().verdict_panics, 1);
    let records = sink.drain_sorted();
    assert_eq!(
        terminals(&records, 400),
        vec![SessionEnd::Completed],
        "the session survives the judge panic with one Completed terminal"
    );
    let panics = records
        .iter()
        .filter(|r| matches!(&r.event, JournalEvent::Panic { pool } if pool == "verify"))
        .count();
    assert_eq!(panics, 1, "the absorbed panic surfaces as one diagnostic");
    assert_fully_drained(&sink);
    verifier.shutdown();
}
