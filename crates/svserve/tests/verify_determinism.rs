//! End-to-end determinism of the two-pool evaluation: `evaluate_model` must produce
//! a byte-identical `ModelEvaluation` — per-case verdicts, pass@k, histograms — at
//! any verify worker count, and whether the verdict cache is cold or pre-warmed.

use assertsolver::{evaluate_model, evaluate_model_with, EvalConfig, EvalVerifier};
use svdata::SvaBugEntry;
use svmodel::AssertSolverModel;

fn corpus() -> Vec<SvaBugEntry> {
    // A small mixed corpus: machine-generated pipeline cases plus human-crafted
    // ones, truncated to keep the four-way evaluation sweep fast.
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(23));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(6);
    assert!(!entries.is_empty());
    entries
}

fn config(verify_workers: usize) -> EvalConfig {
    EvalConfig {
        workers: 2,
        verify_workers,
        ..EvalConfig::quick(11)
    }
}

#[test]
fn evaluation_is_byte_identical_at_1_2_4_8_verify_workers() {
    let entries = corpus();
    let model = AssertSolverModel::base(7);
    let baseline = evaluate_model(&model, &entries, &config(1));
    let baseline_json = serde_json::to_string(&baseline).expect("evaluation serialises");
    // The full evaluation must match byte for byte: per-case verdict counts,
    // aggregate pass@k, and the Fig.-3 histogram.
    for verify_workers in [2usize, 4, 8] {
        let run = evaluate_model(&model, &entries, &config(verify_workers));
        assert_eq!(
            baseline, run,
            "verify worker count {verify_workers} changed the evaluation"
        );
        assert_eq!(
            baseline_json,
            serde_json::to_string(&run).expect("evaluation serialises"),
            "verify worker count {verify_workers} changed the serialized evaluation"
        );
        assert_eq!(baseline.passk(), run.passk());
        assert_eq!(baseline.histogram(8), run.histogram(8));
    }
}

#[test]
fn auto_verify_workers_honour_env_without_changing_results() {
    // `verify_workers == 0` defers to `VerifyConfig::default()`, which reads
    // `ASSERTSOLVER_VERIFY_WORKERS` — the path CI's verify-pool matrix exercises by
    // running this suite with the variable set to 1 and to 4.  Whatever the
    // environment resolves to, results must match an explicitly pinned run.
    let resolved = svserve::env_verify_workers();
    let auto = EvalConfig {
        workers: 2,
        verify_workers: 0,
        ..EvalConfig::quick(11)
    };
    assert_eq!(auto.verify_config().workers, resolved.unwrap_or(4));

    let entries = corpus();
    let model = AssertSolverModel::base(7);
    let from_env = evaluate_model(&model, &entries, &auto);
    let pinned = evaluate_model(&model, &entries, &config(1));
    assert_eq!(
        from_env, pinned,
        "env-resolved verify worker count ({resolved:?}) changed the evaluation"
    );
}

#[test]
fn evaluation_is_byte_identical_with_prewarmed_verdict_cache() {
    let entries = corpus();
    let model = AssertSolverModel::base(7);
    let config = config(4);

    // Cold: a fresh verifier per run (this is what `evaluate_model` does).
    let cold = evaluate_model(&model, &entries, &config);

    // Warm: one verifier reused, so the second run replays cached verdicts.
    let verifier = EvalVerifier::start(&config);
    let first = evaluate_model_with(&model, &entries, &config, &verifier);
    let first_metrics = verifier.metrics();
    let second = evaluate_model_with(&model, &entries, &config, &verifier);
    let final_metrics = verifier.shutdown();

    assert_eq!(
        cold, first,
        "persistent verifier changed cold-cache results"
    );
    assert_eq!(first, second, "pre-warmed verdict cache changed results");
    assert_eq!(
        serde_json::to_string(&cold).expect("serialises"),
        serde_json::to_string(&second).expect("serialises"),
    );
    assert_eq!(
        final_metrics.cache_misses, first_metrics.cache_misses,
        "the warm pass must not recompute any verdict"
    );
    assert!(
        final_metrics.cache_hits > first_metrics.cache_hits,
        "the warm pass must be served from the verdict cache"
    );
}
