//! Pool-level persistence: warm starts through `RepairService` and `VerifyPool`,
//! and every corruption/mismatch mode degrading to a cold start.
//!
//! The unit tests in `svserve::persist` cover the codec; these tests cover the
//! wiring — load-at-start, flush-on-shutdown, warm-hit attribution in the metrics,
//! and byte-identical results across a process-like cold/warm boundary (two pools
//! sharing nothing but the snapshot file).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use svmodel::{CaseInput, RepairModel, Response};
use svserve::persist::{save_verdict_snapshot, SNAPSHOT_FORMAT_VERSION};
use svserve::{
    verdict_key, PersistSpec, RepairRequest, RepairService, ResponseJudge, ServiceConfig,
    VerifyConfig, VerifyPool, VerifyRequest,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("svserve-persist-pool-{}-{tag}", std::process::id()))
}

/// Deterministic model that counts invocations, so tests can prove warm starts
/// never reach it.
struct CountingModel {
    calls: AtomicUsize,
}

impl CountingModel {
    fn new() -> Self {
        Self {
            calls: AtomicUsize::new(0),
        }
    }
}

impl RepairModel for CountingModel {
    fn name(&self) -> &str {
        "counting"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        (0..samples)
            .map(|i| Response {
                bug_line_number: (case.spec.len() as u32) + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("seed-{seed}-sample-{i}"),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        4,
        0.2,
    )
}

#[test]
fn repair_service_warm_starts_from_its_own_snapshot() {
    let dir = temp_dir("repair-warm");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("responses.json"), b"seed-bytes", "counting");
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_persist(spec.clone());

    // Cold service: every request reaches the model; shutdown flushes.
    let cold_model = Arc::new(CountingModel::new());
    let cold_service = RepairService::start(Arc::clone(&cold_model), config.clone());
    let cold_outcomes = cold_service.solve_all((0..12).map(request).collect());
    let cold_metrics = cold_service.shutdown();
    assert_eq!(cold_model.calls.load(Ordering::SeqCst), 12);
    assert_eq!(cold_metrics.snapshot_loaded_entries, 0);
    assert_eq!(cold_metrics.snapshot_saves, 1);
    assert_eq!(cold_metrics.snapshot_saved_entries, 12);
    assert!(spec.path.exists(), "shutdown must write the snapshot");

    // Warm service sharing only the file: zero model calls, warm hits attributed.
    let warm_model = Arc::new(CountingModel::new());
    let warm_service = RepairService::start(Arc::clone(&warm_model), config);
    let warm_outcomes = warm_service.solve_all((0..12).map(request).collect());
    let warm_metrics = warm_service.metrics();
    assert_eq!(
        warm_model.calls.load(Ordering::SeqCst),
        0,
        "a fully warm cache must never invoke the model"
    );
    assert_eq!(warm_metrics.snapshot_loaded_entries, 12);
    assert_eq!(warm_metrics.warm_hits, 12);
    assert!(warm_metrics.warm_hit_rate > 0.99);
    let cold_responses: Vec<_> = cold_outcomes.iter().map(|o| &o.responses).collect();
    let warm_responses: Vec<_> = warm_outcomes.iter().map(|o| &o.responses).collect();
    assert_eq!(
        cold_responses, warm_responses,
        "warm responses must be byte-identical to cold ones"
    );
    assert!(warm_outcomes.iter().all(|o| o.from_cache));
    drop(warm_service);

    // Explicit flush is available mid-flight too.
    let service = RepairService::start(Arc::new(CountingModel::new()), ServiceConfig::default());
    assert_eq!(
        service.flush().unwrap(),
        0,
        "no persist configured => Ok(0)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_response_snapshots_cold_start_without_error() {
    let dir = temp_dir("repair-mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("responses.json"), b"fp-a", "counting");
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_persist(spec.clone());
    RepairService::start(Arc::new(CountingModel::new()), config.clone())
        .solve_all((0..4).map(request).collect());

    let expect_cold = |persist: PersistSpec, expected_rejects: u64| {
        let model = Arc::new(CountingModel::new());
        let service = RepairService::start(
            Arc::clone(&model),
            ServiceConfig::default().with_persist(persist),
        );
        let outcomes = service.solve_all((0..4).map(request).collect());
        assert_eq!(outcomes.len(), 4);
        let metrics = service.metrics();
        assert_eq!(metrics.snapshot_loaded_entries, 0);
        assert_eq!(metrics.snapshot_rejects, expected_rejects);
        assert_eq!(
            model.calls.load(Ordering::SeqCst),
            4,
            "cold start must re-invoke the model"
        );
    };

    // Fingerprint mismatch (e.g. a different evaluation seed).
    expect_cold(PersistSpec::new(spec.path.clone(), b"fp-b", "counting"), 1);
    // Model mismatch.
    expect_cold(PersistSpec::new(spec.path.clone(), b"fp-a", "other"), 1);
    // Corruption.
    std::fs::write(&spec.path, "]]] definitely not a snapshot").unwrap();
    expect_cold(spec.clone(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_different_service_seed_rejects_the_response_snapshot() {
    // Responses depend on the sampler seed, which the service folds into the
    // snapshot fingerprint itself — the caller cannot accidentally warm-load
    // responses sampled under another seed by reusing one PersistSpec.
    let dir = temp_dir("seed-mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("responses.json"), b"", "counting");
    let write = ServiceConfig::default()
        .with_seed(1)
        .with_persist(spec.clone());
    RepairService::start(Arc::new(CountingModel::new()), write)
        .solve_all((0..4).map(request).collect());

    let model = Arc::new(CountingModel::new());
    let reread = ServiceConfig::default().with_seed(2).with_persist(spec);
    let service = RepairService::start(Arc::clone(&model), reread);
    service.solve_all((0..4).map(request).collect());
    let metrics = service.metrics();
    assert_eq!(metrics.snapshot_loaded_entries, 0);
    assert_eq!(metrics.snapshot_rejects, 1);
    assert_eq!(
        model.calls.load(Ordering::SeqCst),
        4,
        "a changed seed must cold-start, not replay stale responses"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_idle_pool_never_overwrites_a_valuable_snapshot() {
    // A reconfigured run whose preload is rejected, and which then computes
    // nothing, must leave the previous snapshot on disk — not replace it with an
    // empty file under the new header.
    let dir = temp_dir("no-empty-overwrite");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("verdicts.json"), b"cfg-v1", "-");
    let judge = Arc::new(LenJudge {
        calls: AtomicUsize::new(0),
    });
    let pool = VerifyPool::start(
        Arc::<LenJudge>::clone(&judge),
        VerifyConfig::default().with_persist(spec.clone()),
    );
    pool.judge_all(verify_workload());
    pool.shutdown();
    let valuable = std::fs::read(&spec.path).unwrap();

    // Reconfigured pool: rejected preload, zero work, shutdown.
    let reconfigured = PersistSpec::new(spec.path.clone(), b"cfg-v2", "-");
    let idle: VerifyPool<String> = VerifyPool::start(
        Arc::new(|_: &String, _: &Response| true),
        VerifyConfig::default().with_persist(reconfigured),
    );
    assert_eq!(idle.metrics().snapshot_rejects, 1);
    assert_eq!(
        idle.flush().unwrap(),
        0,
        "an empty cache must not be written"
    );
    idle.shutdown();
    assert_eq!(
        std::fs::read(&spec.path).unwrap(),
        valuable,
        "the cfg-v1 snapshot must survive an idle cfg-v2 pool"
    );

    // And the original configuration still warm-starts from it.
    let pool = VerifyPool::start(
        Arc::new(|_: &String, _: &Response| true),
        VerifyConfig::default().with_persist(spec),
    );
    assert_eq!(pool.metrics().snapshot_loaded_entries, 16);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Judge that counts invocations; verdict is a pure content function.
struct LenJudge {
    calls: AtomicUsize,
}

impl ResponseJudge<String> for LenJudge {
    fn verdict(&self, case: &String, response: &Response) -> bool {
        self.calls.fetch_add(1, Ordering::SeqCst);
        response.fixed_line.len() > case.len()
    }
}

fn verify_request(case: &str, fixed_line: &str) -> VerifyRequest<String> {
    let response = Response {
        bug_line_number: 1,
        buggy_line: "buggy".into(),
        fixed_line: fixed_line.into(),
        cot: None,
    };
    let key = verdict_key(&[case.as_bytes()], &response, b"cfg");
    VerifyRequest::new(Arc::new(case.to_string()), response, key)
}

fn verify_workload() -> Vec<VerifyRequest<String>> {
    (0..16)
        .map(|i| verify_request(&format!("case {}", i % 5), &format!("fix number {i}")))
        .collect()
}

#[test]
fn verify_pool_warm_starts_from_its_own_snapshot() {
    let dir = temp_dir("verify-warm");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("verdicts.json"), b"cfg", "-");
    let config = VerifyConfig::default()
        .with_workers(2)
        .with_persist(spec.clone());

    let cold_judge = Arc::new(LenJudge {
        calls: AtomicUsize::new(0),
    });
    let pool = VerifyPool::start(Arc::<LenJudge>::clone(&cold_judge), config.clone());
    let cold: Vec<bool> = pool
        .judge_all(verify_workload())
        .into_iter()
        .map(|o| o.verdict)
        .collect();
    let cold_metrics = pool.shutdown();
    assert_eq!(cold_judge.calls.load(Ordering::SeqCst), 16);
    assert_eq!(cold_metrics.snapshot_saves, 1);
    assert_eq!(cold_metrics.snapshot_saved_entries, 16);

    // Fresh pool, same file, different worker count: zero judge calls, identical
    // verdicts, warm hits attributed.
    let warm_judge = Arc::new(LenJudge {
        calls: AtomicUsize::new(0),
    });
    let pool = VerifyPool::start(Arc::<LenJudge>::clone(&warm_judge), config.with_workers(4));
    let warm: Vec<bool> = pool
        .judge_all(verify_workload())
        .into_iter()
        .map(|o| o.verdict)
        .collect();
    let warm_metrics = pool.metrics();
    pool.shutdown();
    assert_eq!(warm_judge.calls.load(Ordering::SeqCst), 0);
    assert_eq!(cold, warm, "verdicts must survive the snapshot round trip");
    assert_eq!(warm_metrics.snapshot_loaded_entries, 16);
    assert_eq!(warm_metrics.warm_hits, 16);
    assert!(warm_metrics.warm_hit_rate > 0.99);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_pool_rejects_stale_snapshots_and_truncated_files() {
    let dir = temp_dir("verify-mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("verdicts.json"), b"cfg", "-");

    // A snapshot written under a *future* format version must be rejected.
    let entries = verify_workload()
        .into_iter()
        .map(|r| (r.key, true))
        .collect::<Vec<_>>();
    save_verdict_snapshot(&spec, entries).unwrap();
    let text = std::fs::read_to_string(&spec.path).unwrap();
    let bumped = text.replace(
        &format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}"),
        &format!("\"format_version\":{}", SNAPSHOT_FORMAT_VERSION + 1),
    );
    assert_ne!(bumped, text);
    std::fs::write(&spec.path, bumped).unwrap();

    let judge = Arc::new(LenJudge {
        calls: AtomicUsize::new(0),
    });
    let pool = VerifyPool::start(
        Arc::<LenJudge>::clone(&judge),
        VerifyConfig::default()
            .with_workers(1)
            .with_persist(spec.clone()),
    );
    let outcomes = pool.judge_all(verify_workload());
    let metrics = pool.metrics();
    assert_eq!(outcomes.len(), 16);
    assert_eq!(metrics.snapshot_loaded_entries, 0);
    assert_eq!(metrics.snapshot_rejects, 1);
    assert_eq!(
        judge.calls.load(Ordering::SeqCst),
        16,
        "cold start re-judges"
    );
    pool.shutdown();

    // Truncate the (now rewritten, valid) snapshot mid-file: reject, cold start.
    let full = std::fs::read_to_string(&spec.path).unwrap();
    std::fs::write(&spec.path, &full[..full.len() / 3]).unwrap();
    let pool: VerifyPool<String> = VerifyPool::start(
        Arc::new(|_: &String, _: &Response| true),
        VerifyConfig::default().with_workers(1).with_persist(spec),
    );
    let metrics = pool.metrics();
    assert_eq!(metrics.snapshot_loaded_entries, 0);
    assert_eq!(metrics.snapshot_rejects, 1);
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_entries_are_compacted_after_k_idle_runs() {
    let dir = temp_dir("compaction");
    let _ = std::fs::remove_dir_all(&dir);
    // K = 1: an entry survives one idle run and is dropped by the flush of the
    // second consecutive run that never touches it.
    let spec = PersistSpec::new(dir.join("responses.json"), b"seed", "counting").with_compaction(1);
    let config = ServiceConfig::default()
        .with_workers(2)
        .with_persist(spec.clone());

    // Run 1 (cold → generation 1): computes and persists all 8 entries.
    let service = RepairService::start(Arc::new(CountingModel::new()), config.clone());
    service.solve_all((0..8).map(request).collect());
    service.shutdown();

    // Run 2 (generation 2): touches only 0..4.  The idle half is 1 generation
    // behind — within the window, so it must survive this flush.
    let service = RepairService::start(Arc::new(CountingModel::new()), config.clone());
    service.solve_all((0..4).map(request).collect());
    let metrics = service.shutdown();
    assert_eq!(metrics.snapshot_loaded_entries, 8);
    assert_eq!(metrics.snapshot_compacted_entries, 0);
    assert_eq!(metrics.snapshot_saved_entries, 8);

    // Run 3 (generation 3): touches only 0..4 again.  The idle half is now 2
    // generations behind (> K = 1) and must be compacted away.
    let service = RepairService::start(Arc::new(CountingModel::new()), config.clone());
    service.solve_all((0..4).map(request).collect());
    let metrics = service.shutdown();
    assert_eq!(metrics.snapshot_compacted_entries, 4);
    assert_eq!(metrics.snapshot_saved_entries, 4);

    // Run 4: the full workload again — the compacted half really is gone from
    // the file (those 4 cases reach the model), the touched half is still warm.
    let model = Arc::new(CountingModel::new());
    let service = RepairService::start(Arc::clone(&model), config);
    service.solve_all((0..8).map(request).collect());
    let metrics = service.metrics();
    assert_eq!(metrics.snapshot_loaded_entries, 4);
    assert_eq!(metrics.warm_hits, 4);
    assert_eq!(
        model.calls.load(Ordering::SeqCst),
        4,
        "compacted entries must be recomputed, surviving ones replayed"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_files_are_byte_stable_across_save_load_save() {
    let dir = temp_dir("byte-stable");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = PersistSpec::new(dir.join("responses.json"), b"seed", "counting");
    let config = ServiceConfig::default().with_persist(spec.clone());

    // Cold run at 4 workers writes the generation-1 snapshot.
    RepairService::start(
        Arc::new(CountingModel::new()),
        config.clone().with_workers(4),
    )
    .solve_all((0..10).map(request).collect());
    let cold_4 = std::fs::read(&spec.path).unwrap();

    // A cold run at 1 worker (different sharding, different insertion order)
    // writes byte-identical generation-1 bytes.
    std::fs::remove_file(&spec.path).unwrap();
    RepairService::start(
        Arc::new(CountingModel::new()),
        config.clone().with_workers(1),
    )
    .solve_all((0..10).map(request).collect());
    let cold_1 = std::fs::read(&spec.path).unwrap();
    assert_eq!(
        cold_4, cold_1,
        "cold snapshot bytes must be independent of worker count and insertion order"
    );

    // Warm runs advance the generation counter (1 → 2), but are themselves
    // byte-stable at any worker count: re-warm from the same generation-1 file
    // with different pool shapes and compare.
    RepairService::start(
        Arc::new(CountingModel::new()),
        config.clone().with_workers(1),
    )
    .solve_all((0..10).map(request).collect());
    let warm_1 = std::fs::read(&spec.path).unwrap();
    assert_ne!(warm_1, cold_1, "a warm flush advances the generation");
    std::fs::write(&spec.path, &cold_1).unwrap();
    RepairService::start(Arc::new(CountingModel::new()), config.with_workers(4))
        .solve_all((0..10).map(request).collect());
    let warm_4 = std::fs::read(&spec.path).unwrap();
    assert_eq!(
        warm_1, warm_4,
        "warm snapshot bytes must be independent of worker count too"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
