//! Session lifecycle edge cases: cancellation, deadline timeout, and
//! deterministic admission shedding.
//!
//! The contracts under test:
//!
//! * a **dropped or expired session** releases its queue slot and admission
//!   budget — the pool's in-flight gauge returns to zero and later submissions
//!   are served normally;
//! * a ticket fulfilled after its session is gone **never strands a waker** —
//!   the stored waker wakes a dead task, which the runtime no-ops;
//! * pool counters stay **consistent** (`completed == submitted`, gauge zero)
//!   through every exit path;
//! * admission control sheds with a **deterministic** `SubmitError::Busy`: with
//!   the pool gated (nothing can complete), exactly `max_in_flight` submissions
//!   are admitted and the rest are shed, regardless of arrival interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use svmodel::{CaseInput, RepairModel, Response};
use svserve::{
    RepairRequest, RepairService, ServiceConfig, SessionConfig, SessionEngine, SessionOutcome,
    SubmitError,
};

/// A gate the test opens to let the model produce answers; while closed, every
/// worker blocks inside `solve`, so nothing completes and in-flight counts are
/// exact.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

struct GatedModel {
    gate: Arc<Gate>,
    calls: AtomicUsize,
}

impl RepairModel for GatedModel {
    fn name(&self) -> &str {
        "gated"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.gate.wait_open();
        self.calls.fetch_add(1, Ordering::SeqCst);
        (0..samples)
            .map(|i| Response {
                bug_line_number: 1 + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("fix seed {seed} sample {i}"),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        2,
        0.2,
    )
}

fn gated_service(gate: &Arc<Gate>, config: ServiceConfig) -> RepairService<GatedModel> {
    RepairService::start(
        Arc::new(GatedModel {
            gate: Arc::clone(gate),
            calls: AtomicUsize::new(0),
        }),
        config,
    )
}

/// Polls the pool until `predicate` holds or the deadline passes.
fn wait_until(deadline: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    predicate()
}

#[test]
fn expired_sessions_release_slots_and_leave_counters_consistent() {
    let gate = Gate::new();
    let service = gated_service(&gate, ServiceConfig::default().with_workers(1));
    let engine = SessionEngine::new(
        SessionConfig::default()
            .with_drivers(2)
            .with_deadline(Duration::from_millis(40)),
    );

    // Three sessions await a gated pool: all must time out, none may hold a
    // driver thread while waiting.
    let sessions: Vec<_> = (0..3)
        .map(|tag| {
            let service = &service;
            async move {
                let ticket = service
                    .submit_async(request(tag))
                    .expect("pool open")
                    .await
                    .expect("pool open");
                ticket.await.responses.len()
            }
        })
        .collect();
    let outcomes = engine.run_all(sessions);
    assert!(outcomes.iter().all(|o| *o == SessionOutcome::TimedOut));
    let session_metrics = engine.metrics();
    assert_eq!(session_metrics.timed_out, 3);
    assert_eq!(
        session_metrics.in_flight_sessions, 0,
        "expired sessions must release the engine gauge"
    );

    // The jobs themselves still drain once the gate opens: fulfilling tickets
    // whose sessions are gone must not strand a waker or wedge the pool.
    gate.open();
    assert!(
        wait_until(Duration::from_secs(10), || {
            service.metrics().in_flight_sessions == 0
        }),
        "pool must drain after the gate opens"
    );
    let metrics = service.metrics();
    assert_eq!(metrics.submitted, 3);
    assert_eq!(metrics.completed, 3, "every queued job still completes");

    // And the pool still serves new, live sessions.
    let late = engine.run_all(vec![async {
        service
            .submit_async(request(99))
            .expect("pool open")
            .await
            .expect("pool open")
            .await
            .responses
            .len()
    }]);
    assert_eq!(late[0], SessionOutcome::Completed(2));
    service.shutdown();
}

#[test]
fn cancelled_sessions_release_admission_and_never_strand_wakers() {
    let gate = Gate::new();
    // Capacity-1 single worker: one job blocks in the model, one sits in the
    // queue, and the third session parks inside its submit future.
    let config = ServiceConfig {
        shard_capacity: 1,
        ..ServiceConfig::default()
    };
    let service_narrow = gated_service(&gate, config.with_workers(1).with_max_in_flight(3));
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(2));

    let started = Arc::new(AtomicUsize::new(0));
    engine.runtime().scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|tag| {
                let service = &service_narrow;
                let started = Arc::clone(&started);
                engine.spawn_session(scope, async move {
                    started.fetch_add(1, Ordering::SeqCst);
                    let ticket = service
                        .submit_async(request(tag))
                        .expect("pool open")
                        .await
                        .expect("pool open");
                    ticket.await.responses.len()
                })
            })
            .collect();
        // Wait until all three sessions have submitted: worker holds one job,
        // the queue holds one, and one submit future is parked on the shard.
        assert!(
            wait_until(Duration::from_secs(10), || {
                started.load(Ordering::SeqCst) == 3
                    && service_narrow.metrics().in_flight_sessions == 3
            }),
            "all three sessions must be in flight"
        );

        // Cancel them all mid-await: dropped submit futures must roll their
        // admission slots back immediately (the enqueued jobs release theirs
        // when the worker completes them).
        for handle in &handles {
            handle.cancel();
        }
        for handle in handles {
            assert_eq!(handle.join(), SessionOutcome::Aborted);
        }
        assert!(
            wait_until(Duration::from_secs(5), || {
                service_narrow.metrics().in_flight_sessions <= 2
            }),
            "the never-enqueued submission must release its slot on cancel"
        );

        // Open the gate: the two enqueued jobs complete into dropped tickets —
        // no stranded wakers, counters consistent.
        gate.open();
        assert!(
            wait_until(Duration::from_secs(10), || {
                service_narrow.metrics().in_flight_sessions == 0
            }),
            "pool must drain after cancellation"
        );
    });
    let metrics = service_narrow.metrics();
    assert_eq!(metrics.completed, metrics.submitted);
    assert_eq!(metrics.in_flight_sessions, 0);
    assert_eq!(engine.metrics().aborted, 3);

    // The pool still serves fresh work after all that (admission recovered).
    let outcome = service_narrow.submit(request(7)).expect("pool open").wait();
    assert_eq!(outcome.responses.len(), 2);
    service_narrow.shutdown();
}

#[test]
fn admission_sheds_exactly_the_overflow_deterministically() {
    let gate = Gate::new();
    let service = gated_service(
        &gate,
        ServiceConfig::default()
            .with_workers(2)
            .with_max_in_flight(4),
    );
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(4));

    // Gate closed: nothing completes, so exactly 4 of 10 submissions can be
    // admitted — regardless of how the sessions interleave.
    let sessions: Vec<_> = (0..10)
        .map(|tag| {
            let service = &service;
            async move {
                match service.submit_async(request(tag)) {
                    Ok(submit) => {
                        let ticket = submit.await.expect("pool open");
                        ticket.await;
                        "served"
                    }
                    Err(SubmitError::Busy) => "shed",
                    Err(SubmitError::Closed) => panic!("pool must be open"),
                }
            }
        })
        .collect();
    assert_eq!(service.metrics().shed_busy, 0);
    // Open the gate only after every submission attempt has resolved (4
    // admitted and parked in the pool, 6 shed), so no late session can sneak
    // into a slot freed by an early completion.
    let outcomes = std::thread::scope(|s| {
        s.spawn(|| {
            assert!(
                wait_until(Duration::from_secs(10), || {
                    let m = service.metrics();
                    m.in_flight_sessions == 4 && m.shed_busy == 6
                }),
                "all ten submission attempts must resolve while gated"
            );
            gate.open();
        });
        engine.run_all(sessions)
    });
    let served = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Completed("served"))
        .count();
    let shed = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Completed("shed"))
        .count();
    assert_eq!(served, 4, "exactly max_in_flight sessions are admitted");
    assert_eq!(shed, 6, "every overflow submission sheds deterministically");

    let metrics = service.metrics();
    assert_eq!(metrics.shed_busy, 6);
    assert_eq!(metrics.submitted, 4);
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.in_flight_sessions, 0);
    assert_eq!(metrics.peak_in_flight_sessions, 4);
    assert!(metrics.render().contains("shed busy"));

    // With the gate open and the pool drained, admission has recovered.
    let outcome = service
        .submit(request(77))
        .expect("slots free again")
        .wait();
    assert_eq!(outcome.responses.len(), 2);
    service.shutdown();
}
