//! Wire-protocol determinism and degradation: a fleet of shards behind the
//! versioned frame protocol answers **byte-identically** to direct local
//! submission, and every failure mode — version skew, fingerprint mismatch,
//! admission shed, killed server — degrades to a counted error, never a
//! client panic or hang.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use svmodel::{CaseInput, RepairModel, Response};
use svserve::persist::PersistSpec;
use svserve::{
    read_frame, write_frame, Frame, JournalEvent, JournalMode, JournalSink, JournalSpec,
    LoopbackTransport, RepairRequest, RepairService, ServiceConfig, ShardFleet, ShardServer,
    Transport, UnixTransport, WireError, MIN_WIRE_FORMAT_VERSION, WIRE_FORMAT_VERSION,
};

/// Deterministic model: responses are a pure function of `(case, samples, seed)`,
/// so two services built alike answer identically — the invariant the fleet
/// relies on.
struct EchoModel;

impl RepairModel for EchoModel {
    fn name(&self) -> &str {
        "echo"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        (0..samples)
            .map(|i| Response {
                bug_line_number: (case.spec.len() as u32) + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("seed-{seed}-sample-{i}"),
                cot: None,
            })
            .collect()
    }
}

/// Counts invocations, proving warm starts never reach the model.
struct CountingModel {
    calls: AtomicUsize,
}

impl RepairModel for CountingModel {
    fn name(&self) -> &str {
        "counting"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        EchoModel.solve(case, samples, temperature, seed)
    }
}

/// Blocks every `solve` until the test opens the gate, making in-flight
/// occupancy exact for the admission-shed test.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct GatedModel {
    gate: Arc<Gate>,
}

impl RepairModel for GatedModel {
    fn name(&self) -> &str {
        "gated"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        let mut open = self.gate.open.lock().unwrap();
        while !*open {
            open = self.gate.cv.wait(open).unwrap();
        }
        drop(open);
        EchoModel.solve(case, samples, temperature, seed)
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        3,
        0.2,
    )
}

fn echo_service() -> Arc<RepairService<EchoModel>> {
    Arc::new(RepairService::start(
        Arc::new(EchoModel),
        ServiceConfig::default().with_workers(2).with_seed(42),
    ))
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("svserve-wire-{}-{tag}.sock", std::process::id()))
}

#[test]
fn loopback_fleet_matches_direct_submission_at_any_shard_count() {
    let reference = echo_service();
    for shards in [1usize, 2, 4] {
        let services: Vec<_> = (0..shards).map(|_| echo_service()).collect();
        let fleet = ShardFleet::new(
            services
                .iter()
                .map(|service| {
                    Box::new(LoopbackTransport::new(Arc::clone(service), "echo"))
                        as Box<dyn Transport>
                })
                .collect(),
        );
        for tag in 0..12 {
            let direct = reference.submit(request(tag)).expect("open").wait();
            let remote = fleet.submit(&request(tag)).expect("fleet healthy");
            assert_eq!(
                *direct.responses, remote.responses,
                "shard count {shards}, case {tag}: wire answers must be \
                 byte-identical to direct submission"
            );
        }
        let metrics = fleet.metrics();
        assert_eq!(metrics.submitted, 12);
        assert_eq!(metrics.completed, 12);
        assert_eq!(metrics.wire_errors, 0);
        drop(fleet);
        for service in services {
            Arc::try_unwrap(service)
                .ok()
                .expect("sole owner")
                .shutdown();
        }
    }
    Arc::try_unwrap(reference)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn unix_fleet_matches_direct_submission_end_to_end() {
    let reference = echo_service();
    let services: Vec<_> = (0..2).map(|_| echo_service()).collect();
    let sockets: Vec<_> = (0..2).map(|i| socket_path(&format!("e2e-{i}"))).collect();
    let servers: Vec<_> = services
        .iter()
        .zip(&sockets)
        .map(|(service, socket)| {
            ShardServer::bind(socket, Arc::clone(service), "echo").expect("bind shard server")
        })
        .collect();

    let fleet = ShardFleet::connect_unix(&sockets, Some("echo"), Duration::from_secs(10));
    assert_eq!(fleet.metrics().dead_shards, 0, "both shards connect");
    for tag in 0..8 {
        let direct = reference.submit(request(tag)).expect("open").wait();
        let remote = fleet.submit(&request(tag)).expect("fleet healthy");
        assert_eq!(
            *direct.responses, remote.responses,
            "case {tag}: socket answers must match direct submission"
        );
        assert!(!remote.from_cache, "first sighting of each case is a miss");
    }
    // The same case again is served from the shard's cache, visibly so.
    let again = fleet.submit(&request(0)).expect("fleet healthy");
    assert!(again.from_cache, "repeat submission hits the shard cache");
    assert_eq!(fleet.metrics().remote_cache_hits, 1);

    drop(fleet);
    for server in servers {
        server.shutdown();
    }
    for service in services {
        Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown();
    }
    Arc::try_unwrap(reference)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn hello_version_skew_negotiates_down_or_refuses_below_the_floor() {
    let service = echo_service();
    let socket = socket_path("version");
    let server = ShardServer::bind(&socket, Arc::clone(&service), "echo").expect("bind");

    // A *newer* peer is not an error: the server answers with its own (lower)
    // version and the connection proceeds at the agreed minimum, so a rolling
    // upgrade never partitions the fleet.
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    write_frame(
        &mut writer,
        &Frame::Hello {
            format_version: WIRE_FORMAT_VERSION + 1,
            fingerprint: "echo".into(),
        },
    )
    .expect("send hello");
    let mut reader = std::io::BufReader::new(stream);
    match read_frame(&mut reader).expect("server replies") {
        Frame::Hello { format_version, .. } => assert_eq!(
            format_version, WIRE_FORMAT_VERSION,
            "the server offers its own version for the peer to settle on"
        ),
        other => panic!("expected a negotiated Hello, got {other:?}"),
    }
    assert_eq!(server.protocol_errors(), 0, "negotiation is not an error");

    // A peer below the supported floor *is* refused with an `Err` frame (and
    // counted) instead of serving frames it would misparse.
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    write_frame(
        &mut writer,
        &Frame::Hello {
            format_version: MIN_WIRE_FORMAT_VERSION - 1,
            fingerprint: "echo".into(),
        },
    )
    .expect("send hello");
    let mut reader = std::io::BufReader::new(stream);
    match read_frame(&mut reader).expect("server replies") {
        Frame::Err(msg) => assert!(
            msg.contains("version"),
            "refusal names the version mismatch: {msg}"
        ),
        other => panic!("expected Err frame, got {other:?}"),
    }
    assert!(server.protocol_errors() > 0, "the refusal is counted");

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn fingerprint_mismatch_refuses_the_connection() {
    let service = echo_service();
    let socket = socket_path("fingerprint");
    let server = ShardServer::bind(&socket, Arc::clone(&service), "echo").expect("bind");

    let refused = UnixTransport::connect(&socket, Some("different-model"), Duration::from_secs(10));
    match refused {
        Err(WireError::Protocol(msg)) => assert!(
            msg.contains("fingerprint"),
            "refusal names the fingerprint mismatch: {msg}"
        ),
        Err(other) => panic!("expected a fingerprint refusal, got {other:?}"),
        Ok(_) => panic!("fingerprint mismatch must refuse the connection"),
    }
    // Not asking for a fingerprint accepts whatever the shard serves.
    let accepted = UnixTransport::connect(&socket, None, Duration::from_secs(10)).expect("connect");
    assert_eq!(accepted.fingerprint(), "echo");

    drop(accepted);
    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn busy_over_the_wire_is_shed_and_journaled_like_a_local_shed() {
    let gate = Gate::new();
    let service = Arc::new(RepairService::start(
        Arc::new(GatedModel {
            gate: Arc::clone(&gate),
        }),
        ServiceConfig::default()
            .with_workers(1)
            .with_max_in_flight(1),
    ));
    // Full mode: sheds are volatile diagnostics, serialized only when asked.
    let sink = JournalSink::shared(JournalSpec::default().with_mode(JournalMode::Full));
    let fleet = ShardFleet::new(vec![
        Box::new(LoopbackTransport::new(Arc::clone(&service), "gated")) as Box<dyn Transport>,
    ])
    .with_tracer(sink.handle());

    // Fill the only admission slot directly (the gate keeps it occupied)...
    let parked = service.submit(request(0)).expect("admitted");
    // ...so the wire submission is shed deterministically.
    let shed = fleet.submit(&request(1));
    assert_eq!(
        shed,
        Err(WireError::Busy),
        "admission shed crosses the wire"
    );
    let metrics = fleet.metrics();
    assert_eq!(metrics.shed_busy, 1, "the shed is counted in fleet metrics");
    assert_eq!(metrics.wire_errors, 0, "busy is a shed, not a wire failure");

    // And journaled exactly like a local pool shed, under the "wire" pool.
    let records = sink.drain_sorted();
    let key = request(1).key().fold64();
    assert!(
        records.iter().any(|record| {
            record.session == key
                && matches!(&record.event, JournalEvent::Shed { pool } if pool == "wire")
        }),
        "a wire shed must journal as Shed{{pool: \"wire\"}} keyed by content hash"
    );

    gate.open();
    parked.wait();
    drop(fleet);
    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn a_dead_server_degrades_to_counted_errors_without_hanging() {
    let service = echo_service();
    let socket = socket_path("dead");
    let server = ShardServer::bind(&socket, Arc::clone(&service), "echo").expect("bind");
    let fleet = ShardFleet::connect_unix(
        std::slice::from_ref(&socket),
        Some("echo"),
        Duration::from_secs(5),
    );
    assert_eq!(fleet.metrics().dead_shards, 0);

    // The server goes away mid-connection (crash, kill, deploy).
    server.shutdown();

    // Both submissions fail fast as counted errors: the first observes the
    // dead peer, the second hits the retired connection.
    for _ in 0..2 {
        let outcome = fleet.submit(&request(3));
        assert!(
            matches!(
                outcome,
                Err(WireError::Protocol(_)) | Err(WireError::Closed)
            ),
            "a dead server must surface as a counted error, got {outcome:?}"
        );
    }
    assert_eq!(fleet.metrics().wire_errors, 2);

    // Reconnecting to the removed socket is a dead slot, not a panic.
    let refleet = ShardFleet::connect_unix(&[socket], Some("echo"), Duration::from_secs(5));
    assert_eq!(refleet.metrics().dead_shards, 1);
    assert!(refleet.submit(&request(3)).is_err());
    assert_eq!(refleet.metrics().wire_errors, 1);

    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
}

#[test]
fn a_shard_warm_starts_from_its_snapshot_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("svserve-wire-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let snapshot = dir.join("responses.json");
    let spec = PersistSpec::new(&snapshot, b"", "counting");
    let socket = socket_path("warm");

    // Cold shard: the request reaches the model once, and the snapshot is
    // flushed at shutdown.
    let cold_model = Arc::new(CountingModel {
        calls: AtomicUsize::new(0),
    });
    let cold = Arc::new(RepairService::start(
        Arc::clone(&cold_model),
        ServiceConfig::default()
            .with_workers(1)
            .with_seed(42)
            .with_persist(spec.clone()),
    ));
    let server = ShardServer::bind(&socket, Arc::clone(&cold), "counting").expect("bind");
    let mut transport = UnixTransport::connect(&socket, Some("counting"), Duration::from_secs(10))
        .expect("connect");
    let first = transport.call(&request(7)).expect("served");
    assert!(!first.from_cache, "cold shard computes the answer");
    assert_eq!(cold_model.calls.load(Ordering::SeqCst), 1);
    drop(transport);
    server.shutdown();
    Arc::try_unwrap(cold).ok().expect("sole owner").shutdown();

    // Restarted shard: the very first remote request is served warm, without
    // touching the model — the cross-process warm-start contract.
    let warm_model = Arc::new(CountingModel {
        calls: AtomicUsize::new(0),
    });
    let warm = Arc::new(RepairService::start(
        Arc::clone(&warm_model),
        ServiceConfig::default()
            .with_workers(1)
            .with_seed(42)
            .with_persist(spec),
    ));
    let server = ShardServer::bind(&socket, Arc::clone(&warm), "counting").expect("bind");
    let mut transport = UnixTransport::connect(&socket, Some("counting"), Duration::from_secs(10))
        .expect("connect");
    let warm_outcome = transport.call(&request(7)).expect("served");
    assert!(
        warm_outcome.from_cache,
        "restarted shard answers from its snapshot"
    );
    assert_eq!(
        warm_outcome.responses, first.responses,
        "warm answer is byte-identical to the cold one"
    );
    assert_eq!(
        warm_model.calls.load(Ordering::SeqCst),
        0,
        "a warm-started shard never re-invokes the model"
    );
    drop(transport);
    server.shutdown();
    Arc::try_unwrap(warm).ok().expect("sole owner").shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
