//! Byte-determinism of the session journal: the rendered JSONL is a pure
//! function of `(model, corpus, protocol)`.
//!
//! Extends the `async_determinism` contract from evaluation *results* to the
//! observability artifact itself: the journal records logical ticks (no wall
//! clock), session-keyed sequence numbers (no arrival order) and only
//! deterministic events by default (no cache-temperature leakage), so its
//! bytes must be identical at any driver count and with warm or cold caches.

use assertsolver::{evaluate_model_journaled, EvalConfig, JournalManifest};
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{parse_journal, JournalEvent, TERMINAL_SEQ};

fn corpus(limit: usize) -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(limit);
    assert!(!entries.is_empty());
    entries
}

fn config(drivers: usize) -> EvalConfig {
    EvalConfig {
        workers: 2,
        verify_workers: 2,
        drivers,
        ..EvalConfig::quick(37)
    }
}

#[test]
fn journal_bytes_identical_at_1_2_4_8_drivers() {
    let entries = corpus(6);
    let model = AssertSolverModel::base(9);
    let manifest = JournalManifest::for_protocol("", "", &model.identity(), &entries, &config(1));
    let (baseline_eval, baseline) =
        evaluate_model_journaled(&model, &entries, &config(1), &manifest);
    let parsed = parse_journal(&baseline).expect("baseline journal parses");
    assert!(
        parsed.footer.events > 0,
        "journal must record session events"
    );

    for drivers in [2usize, 4, 8] {
        let (eval, rendered) =
            evaluate_model_journaled(&model, &entries, &config(drivers), &manifest);
        assert_eq!(
            baseline_eval, eval,
            "evaluation must be identical at {drivers} drivers"
        );
        assert_eq!(
            baseline, rendered,
            "journal bytes must be identical at {drivers} drivers"
        );
    }
}

#[test]
fn journal_bytes_identical_with_warm_and_cold_disk_caches() {
    let dir = std::env::temp_dir().join(format!(
        "assertsolver-journal-determinism-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = corpus(5);
    let model = AssertSolverModel::base(11);
    let with_cache = |drivers: usize| EvalConfig {
        cache_dir: Some(dir.display().to_string()),
        ..config(drivers)
    };
    let manifest =
        JournalManifest::for_protocol("", "", &model.identity(), &entries, &with_cache(1));

    // Cold pass populates the snapshots; warm passes replay them at other
    // driver counts.  Cache temperature is volatile state — it must never
    // reach the default journal.
    let (cold_eval, cold) = evaluate_model_journaled(&model, &entries, &with_cache(1), &manifest);
    for drivers in [2usize, 8] {
        let (warm_eval, warm) =
            evaluate_model_journaled(&model, &entries, &with_cache(drivers), &manifest);
        assert_eq!(cold_eval, warm_eval, "warm evaluation must match cold");
        assert_eq!(
            cold, warm,
            "journal bytes must be identical warm vs cold at {drivers} drivers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_certifies_the_evaluation_and_one_terminal_per_session() {
    let entries = corpus(4);
    let model = AssertSolverModel::base(9);
    let manifest = JournalManifest::for_protocol("", "", &model.identity(), &entries, &config(2));
    let (evaluation, rendered) = evaluate_model_journaled(&model, &entries, &config(2), &manifest);
    let parsed = parse_journal(&rendered).expect("journal parses");

    // The footer payload is the run's serialized evaluation — the byte-equality
    // `svreplay` asserts covers the outcome, not only the event stream.
    let payload = serde_json::to_string(&evaluation).expect("evaluation serializes");
    assert_eq!(parsed.footer.payload, payload);
    assert_eq!(parsed.header.manifest, manifest.render());

    // Exactly one terminal per journaled session, and sessions cover the corpus.
    let mut sessions: Vec<u64> = parsed.records.iter().map(|r| r.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    assert_eq!(sessions.len(), entries.len());
    for session in sessions {
        let terminals = parsed
            .records
            .iter()
            .filter(|r| {
                r.session == session
                    && r.seq == TERMINAL_SEQ
                    && matches!(r.event, JournalEvent::Terminal { .. })
            })
            .count();
        assert_eq!(terminals, 1, "session {session:x} must have one terminal");
    }
}
