//! Determinism of the multi-model routing layer, end to end.
//!
//! The contract under test: a `LadderEvaluation` — per-model (pinned), A/B-split
//! and escalation results plus the per-case attempt trails — is a pure function
//! of `(models, corpus, protocol)`.  Worker counts per backend, verify worker
//! counts, and warm vs cold caches (in-memory or on-disk) must not change a
//! byte.  On top of that, the escalation policy must demonstrably solve more
//! cases than its cheapest rung alone, and A/B arm assignment must be stable
//! under pool-shape changes (vendored-rand property tests).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use svdata::SvaBugEntry;
use svmodel::{BaselineKind, BaselineModel, CaseInput, RepairModel};
use svserve::{ab_arm, RepairRequest};

fn corpus(limit: usize) -> Vec<SvaBugEntry> {
    let mut entries = assertsolver::human_crafted_cases();
    entries.truncate(limit);
    assert!(!entries.is_empty());
    entries
}

fn ladder_models(kinds: &[BaselineKind]) -> Vec<Arc<dyn RepairModel + Send + Sync>> {
    kinds
        .iter()
        .map(|&kind| Arc::new(BaselineModel::new(kind)) as Arc<dyn RepairModel + Send + Sync>)
        .collect()
}

fn config(workers: usize, verify_workers: usize) -> assertsolver::EvalConfig {
    assertsolver::EvalConfig {
        workers,
        verify_workers,
        ..assertsolver::EvalConfig::quick(19)
    }
}

#[test]
fn ladder_evaluation_is_byte_identical_at_1_2_4_8_workers_per_backend() {
    let entries = corpus(3);
    let models = ladder_models(&[BaselineKind::RandomGuess, BaselineKind::IterativeReasoner]);
    let baseline = assertsolver::evaluate_ladder(&models, &entries, &config(1, 1));
    let baseline_json = serde_json::to_string(&baseline.evaluation).expect("evaluation serialises");
    assert_eq!(baseline.evaluation.per_model.len(), 2);
    assert_eq!(baseline.evaluation.trails.len(), entries.len());
    for (workers, verify_workers) in [(2, 2), (4, 4), (8, 8)] {
        let run =
            assertsolver::evaluate_ladder(&models, &entries, &config(workers, verify_workers));
        assert_eq!(
            baseline.evaluation, run.evaluation,
            "{workers} workers per backend changed the ladder evaluation"
        );
        assert_eq!(
            baseline_json,
            serde_json::to_string(&run.evaluation).expect("evaluation serialises"),
            "{workers} workers per backend changed the serialized evaluation"
        );
        assert_eq!(baseline.ladder, run.ladder, "ladder order must be stable");
    }
}

#[test]
fn warm_ladder_from_disk_is_byte_identical_and_replays_every_rung() {
    let dir = std::env::temp_dir().join(format!("assertsolver-route-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = corpus(3);
    let models = ladder_models(&[BaselineKind::RandomGuess, BaselineKind::IterativeReasoner]);
    let config = assertsolver::EvalConfig {
        workers: 2,
        verify_workers: 2,
        cache_dir: Some(dir.display().to_string()),
        ..assertsolver::EvalConfig::quick(19)
    };

    // Cold run: every backend snapshot is written under its own model identity.
    let cold = assertsolver::evaluate_ladder(&models, &entries, &config);
    let mut snapshot_paths = Vec::new();
    for model in &models {
        let spec = config
            .service_config_for(&model.identity())
            .persist
            .expect("per-backend persistence configured");
        assert!(
            spec.path.exists(),
            "backend snapshot {} must be written",
            spec.path.display()
        );
        snapshot_paths.push(spec.path);
    }
    assert_ne!(
        snapshot_paths[0], snapshot_paths[1],
        "each backend persists under its own identity"
    );

    // Warm run from fresh pools: byte-identical, and every backend preloads.
    let warm = assertsolver::evaluate_ladder(&models, &entries, &config);
    assert_eq!(
        cold.evaluation, warm.evaluation,
        "a warm ladder must be byte-identical to a cold one"
    );
    for backend in &warm.metrics.backends {
        assert!(
            backend.service.snapshot_loaded_entries > 0,
            "backend {} must preload its snapshot",
            backend.name
        );
        assert!(
            backend.service.warm_hits > 0,
            "backend {} must replay responses from its snapshot",
            backend.name
        );
        assert_eq!(
            backend.service.cache_misses, 0,
            "a fully warm backend {} re-samples nothing",
            backend.name
        );
    }
    let verify = warm.metrics.verify.as_ref().expect("verify view attached");
    assert_eq!(
        verify.cache_misses, 0,
        "a fully warm verdict cache re-judges nothing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn escalation_solves_more_cases_than_its_cheapest_rung_alone() {
    // The quick machine-generated corpus with a weak-but-cheap first rung:
    // random guessing leaves cases on the table that the pricier analytic
    // rungs solve, so escalation's verdict-triggered re-submits are what carry
    // them — the ladder's solved set is the union over its rungs, strictly
    // bigger than the cheapest rung's alone.
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(23));
    let mut entries = pipeline.datasets.sva_bug;
    entries.truncate(6);
    let models = ladder_models(&[
        BaselineKind::RandomGuess,
        BaselineKind::ConeAnalyst,
        BaselineKind::IterativeReasoner,
    ]);
    let config = assertsolver::EvalConfig {
        samples: 4,
        ..config(2, 2)
    };
    let report = assertsolver::evaluate_ladder(&models, &entries, &config);
    let cheapest = report.ladder[0];
    assert_eq!(cheapest, 0, "RandomGuess must be the cheapest rung");
    let rung_solved = report.evaluation.per_model[cheapest].solved_cases();
    let escalate_solved = report.evaluation.escalate.solved_cases();
    assert!(
        escalate_solved > rung_solved,
        "escalation must beat its cheapest rung alone: rung {rung_solved} vs ladder {escalate_solved} of {}",
        entries.len()
    );
    // Escalation dominates the cheapest rung case-for-case: any case the rung
    // solves terminates at that rung with the identical correct count.
    for (rung_case, ladder_case) in report.evaluation.per_model[cheapest]
        .results
        .iter()
        .zip(&report.evaluation.escalate.results)
    {
        if rung_case.c > 0 {
            assert_eq!(ladder_case.c, rung_case.c);
        }
    }
    // The attempt trail is recorded per request, walks cheapest-first, and
    // matches the escalation metrics.
    assert_eq!(report.evaluation.trails.len(), entries.len());
    let mut resubmits = 0;
    for (trail, result) in report
        .evaluation
        .trails
        .iter()
        .zip(&report.evaluation.escalate.results)
    {
        assert!(!trail.attempts.is_empty());
        assert_eq!(trail.attempts[0].backend, models[0].name());
        assert!(trail.attempts.iter().all(|a| a.judged));
        let costs: Vec<u32> = trail.attempts.iter().map(|a| a.cost).collect();
        assert!(
            costs.windows(2).all(|pair| pair[0] < pair[1]),
            "attempts must escalate in cost order, got {costs:?}"
        );
        let terminal = trail.attempts.last().expect("terminal attempt");
        assert!(terminal.terminal);
        assert_eq!(terminal.correct_candidates, result.c);
        resubmits += trail.attempts.len() as u64 - 1;
    }
    assert!(resubmits > 0, "the quick corpus must trigger escalations");
    assert_eq!(report.metrics.escalation.verdict_resubmits, resubmits);
    assert_eq!(
        report
            .metrics
            .escalation
            .depth_histogram
            .iter()
            .sum::<u64>(),
        entries.len() as u64
    );
}

fn random_request(rng: &mut StdRng) -> RepairRequest {
    let len = rng.gen_range(0..24usize);
    let text: String = (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect();
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {text}"),
            buggy_source: format!("module {text}(); endmodule"),
            logs: format!("assertion {text} failed"),
        },
        rng.gen_range(1..8usize),
        0.2,
    )
}

#[test]
fn ab_arm_assignment_is_a_pure_function_of_content_and_arm_count() {
    let mut rng = StdRng::seed_from_u64(0xAB_5EED);
    for _ in 0..512 {
        let request = random_request(&mut rng);
        let key = request.key();
        for arms in 1..=6usize {
            let arm = ab_arm(key, arms);
            assert!(arm < arms);
            // Stable across repeated evaluation and across *key* recomputation
            // from identical content — there is no hidden state.
            assert_eq!(arm, ab_arm(request.key(), arms));
        }
    }
}

#[test]
fn ab_arms_spread_traffic_and_survive_shard_count_changes() {
    // Arm assignment may depend on the request and the number of arms — never
    // on the per-backend pool shape.  Simulate pool-shape changes by checking
    // the arm is untouched by anything but (key, arms), then sanity-check the
    // split is not degenerate on a random workload.
    let mut rng = StdRng::seed_from_u64(0x517E);
    let requests: Vec<RepairRequest> = (0..256).map(|_| random_request(&mut rng)).collect();
    for arms in [2usize, 3] {
        let mut per_arm = vec![0usize; arms];
        for request in &requests {
            per_arm[ab_arm(request.key(), arms)] += 1;
        }
        assert!(
            per_arm.iter().all(|&count| count > 0),
            "every arm must see traffic on a 256-request workload, got {per_arm:?}"
        );
    }
    // A/B evaluation through the full ladder: the split evaluation equals the
    // per-model results of each case's predicted arm — at two different pool
    // shapes.
    let entries = corpus(3);
    let models = ladder_models(&[BaselineKind::RandomGuess, BaselineKind::IterativeReasoner]);
    for workers in [1usize, 4] {
        let eval_config = config(workers, 2);
        let report = assertsolver::evaluate_ladder(&models, &entries, &eval_config);
        for (idx, entry) in entries.iter().enumerate() {
            // Predict the arm from the exact request the evaluation routes:
            // CaseKey folds samples and temperature, so these must come from
            // the protocol, not be restated.
            let request = RepairRequest::new(
                CaseInput::from_entry(entry),
                eval_config.samples,
                eval_config.temperature,
            );
            let arm = ab_arm(request.key(), models.len());
            assert_eq!(
                report.evaluation.ab_split.results[idx],
                report.evaluation.per_model[arm].results[idx],
                "case {idx} must be served by its predicted arm {arm}"
            );
        }
    }
}
