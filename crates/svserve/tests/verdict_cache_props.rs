//! Property-style tests (vendored `rand`) for the verdict cache: key uniqueness
//! over random `(case, response, config)` triples, LRU eviction under random
//! workloads, and counter consistency under concurrent submitters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use svmodel::Response;
use svserve::{verdict_key, LruCache, VerdictKey, VerifyConfig, VerifyPool, VerifyRequest};

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn random_response(rng: &mut StdRng) -> Response {
    Response {
        bug_line_number: rng.gen_range(0..64u32),
        buggy_line: random_string(rng, 12),
        fixed_line: random_string(rng, 12),
        cot: if rng.gen_bool(0.3) {
            Some(random_string(rng, 8))
        } else {
            None
        },
    }
}

/// One flattened `(case, response fields, config)` triple.
type Triple = (String, String, u32, String, Option<String>, Vec<u8>);

#[test]
fn distinct_triples_never_alias_to_one_key() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CA5E);
    // Deliberately tiny alphabets and short strings so the generator produces many
    // near-collisions (shared prefixes, shifted field boundaries).
    let mut triples: BTreeSet<Triple> = BTreeSet::new();
    while triples.len() < 4096 {
        let response = random_response(&mut rng);
        let config: Vec<u8> = (0..rng.gen_range(0..4usize))
            .map(|_| rng.gen::<u8>())
            .collect();
        triples.insert((
            random_string(&mut rng, 6),
            response.buggy_line,
            response.bug_line_number,
            response.fixed_line,
            response.cot,
            config,
        ));
    }
    let keys: HashSet<u128> = triples
        .iter()
        .map(|(case, buggy_line, line, fixed_line, cot, config)| {
            let response = Response {
                bug_line_number: *line,
                buggy_line: buggy_line.clone(),
                fixed_line: fixed_line.clone(),
                cot: cot.clone(),
            };
            verdict_key(&[case.as_bytes()], &response, config).0
        })
        .collect();
    assert_eq!(
        keys.len(),
        triples.len(),
        "distinct (case, response, config) triples aliased to one verdict key"
    );
}

#[test]
fn lru_eviction_respects_capacity_under_random_workloads() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for round in 0..16u128 {
        let capacity = rng.gen_range(1..=12usize);
        let mut cache: LruCache<VerdictKey, bool> = LruCache::new(capacity);
        // A model of perfect recency, replayed against the cache.
        let mut live: Vec<(VerdictKey, bool)> = Vec::new();
        for op in 0..400 {
            let key = VerdictKey(u128::from(rng.gen_range(0..40u64)) | (round << 64));
            if rng.gen_bool(0.6) {
                let verdict = rng.gen_bool(0.5);
                cache.insert(key, verdict);
                live.retain(|(k, _)| *k != key);
                live.push((key, verdict));
                if live.len() > capacity {
                    live.remove(0);
                }
            } else {
                let cached = cache.get(key);
                let expected = live.iter().position(|(k, _)| *k == key);
                match expected {
                    Some(idx) => {
                        let entry = live.remove(idx);
                        assert_eq!(cached, Some(entry.1), "op {op}: wrong cached verdict");
                        live.push(entry);
                    }
                    None => assert_eq!(cached, None, "op {op}: phantom cache entry"),
                }
            }
            assert!(
                cache.len() <= capacity,
                "op {op}: cache grew past its capacity {capacity}"
            );
            assert_eq!(cache.len(), live.len(), "op {op}: eviction order diverged");
        }
    }
}

#[test]
fn hit_and_miss_counters_stay_consistent_under_concurrent_submitters() {
    let judge = |case: &String, response: &Response| {
        case.len().is_multiple_of(2) && !response.bug_line_number.is_multiple_of(2)
    };
    let pool: VerifyPool<String> = VerifyPool::start(
        Arc::new(judge),
        VerifyConfig::default()
            .with_workers(4)
            .with_cache_capacity(64),
    );
    const THREADS: u64 = 4;
    const PER_THREAD: usize = 120;
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let pool = &pool;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD1CE ^ thread);
                let tickets: Vec<_> = (0..PER_THREAD)
                    .map(|_| {
                        // A small id space, so threads collide on identical jobs and
                        // exercise the hit path concurrently.
                        let case = random_string(&mut rng, 4);
                        let response = Response {
                            bug_line_number: rng.gen_range(0..8u32),
                            buggy_line: String::new(),
                            fixed_line: random_string(&mut rng, 2),
                            cot: None,
                        };
                        let key = verdict_key(&[case.as_bytes()], &response, b"prop");
                        pool.submit(VerifyRequest::new(Arc::new(case), response, key))
                            .expect("pool open")
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait();
                }
            });
        }
    });
    let metrics = pool.shutdown();
    let total = THREADS * PER_THREAD as u64;
    assert_eq!(metrics.submitted, total);
    assert_eq!(metrics.completed, total);
    assert_eq!(
        metrics.cache_hits + metrics.cache_misses,
        metrics.completed,
        "every completed job is exactly one hit or one miss"
    );
    assert_eq!(
        metrics.verdicts_true + metrics.verdicts_false,
        metrics.cache_misses,
        "every miss computes exactly one verdict (no panics in this workload)"
    );
    assert_eq!(metrics.verdict_panics, 0);
    assert!(metrics.cache_hits > 0, "duplicate-heavy workload must hit");
    assert!(metrics.cache_entries <= 64, "cache exceeded its capacity");
}
