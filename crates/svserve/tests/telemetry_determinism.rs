//! Determinism of the unified telemetry plane: the **deterministic-class**
//! subset of a registry snapshot renders to byte-identical text at any
//! driver count, any worker count, warm or cold caches, and over either
//! transport — while the volatile subset (latency histograms, cache
//! temperature, poll timings) is free to differ and is provably present.
//!
//! The split mirrors the journal's event classes: metrics fed by request
//! *content* (submitted/completed counters, verdict tallies, rung costs)
//! are `MetricClass::Deterministic`; metrics fed by *scheduling* (wall
//! clocks, queue depths, cache hits) are `MetricClass::Volatile` and never
//! enter the compared bytes.

use assertsolver::{evaluate_model_instrumented, EvalConfig};
use std::sync::Arc;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, CaseInput, RepairModel, Response};
use svserve::{
    LoopbackTransport, MetricsRegistry, RegistrySnapshot, RepairRequest, RepairService,
    ServiceConfig, ShardFleet, ShardServer, TelemetryHandle, Transport,
};

fn corpus(limit: usize) -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(limit);
    assert!(!entries.is_empty());
    entries
}

fn config(drivers: usize, workers: usize) -> EvalConfig {
    EvalConfig {
        workers,
        verify_workers: workers,
        drivers,
        ..EvalConfig::quick(37)
    }
}

/// Runs the instrumented evaluation and returns the full registry snapshot
/// (deterministic + volatile series).
fn instrumented_snapshot(config: &EvalConfig, entries: &[SvaBugEntry]) -> RegistrySnapshot {
    let model = AssertSolverModel::base(9);
    let telemetry = TelemetryHandle::new(Arc::new(MetricsRegistry::default()));
    let _ = evaluate_model_instrumented(&model, entries, config, &telemetry);
    telemetry.snapshot()
}

#[test]
fn deterministic_snapshot_bytes_are_identical_at_1_2_4_8_drivers() {
    let entries = corpus(5);
    let baseline = instrumented_snapshot(&config(1, 2), &entries);
    let baseline_det = baseline.deterministic_only().render_text();
    assert!(
        !baseline_det.is_empty(),
        "the deterministic subset is non-empty"
    );
    // The volatile plane is live (stage timers observed wall-clock) but
    // excluded from the compared bytes.
    let sessions = baseline.get("eval.stage.sessions").expect("stage timer");
    assert!(sessions.count > 0 && sessions.sum > 0);
    assert!(
        baseline
            .deterministic_only()
            .get("eval.stage.sessions")
            .is_none(),
        "wall-clock stages are volatile"
    );

    for drivers in [2usize, 4, 8] {
        let run = instrumented_snapshot(&config(drivers, 2), &entries);
        assert_eq!(
            baseline_det,
            run.deterministic_only().render_text(),
            "driver count {drivers} changed the deterministic telemetry bytes"
        );
        assert_eq!(
            baseline.deterministic_only().render_json(),
            run.deterministic_only().render_json(),
            "driver count {drivers} changed the JSON exposition"
        );
    }
}

#[test]
fn deterministic_snapshot_bytes_are_identical_at_any_worker_count() {
    let entries = corpus(5);
    let baseline = instrumented_snapshot(&config(2, 1), &entries).deterministic_only();
    for workers in [2usize, 4, 8] {
        let run = instrumented_snapshot(&config(2, workers), &entries).deterministic_only();
        assert_eq!(
            baseline.render_text(),
            run.render_text(),
            "worker count {workers} changed the deterministic telemetry bytes"
        );
    }
}

#[test]
fn warm_and_cold_caches_expose_identical_deterministic_bytes() {
    let dir = std::env::temp_dir().join(format!(
        "svserve-telemetry-determinism-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = corpus(4);
    let with_dir = |drivers: usize| EvalConfig {
        cache_dir: Some(dir.display().to_string()),
        ..config(drivers, 2)
    };

    // Cold run populates the response + verdict snapshots; warm runs replay
    // from disk.  Cache temperature shows up only in volatile series.
    let cold = instrumented_snapshot(&with_dir(1), &entries);
    let warm = instrumented_snapshot(&with_dir(4), &entries);
    assert_eq!(
        cold.deterministic_only().render_text(),
        warm.deterministic_only().render_text(),
        "cache temperature leaked into the deterministic telemetry bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic model for the transport comparison: answers are a pure
/// function of `(case, samples, seed)`.
struct EchoModel;

impl RepairModel for EchoModel {
    fn name(&self) -> &str {
        "echo"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        (0..samples)
            .map(|i| Response {
                bug_line_number: (case.spec.len() as u32) + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("seed-{seed}-sample-{i}"),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        3,
        0.2,
    )
}

fn telemetry_service() -> Arc<RepairService<EchoModel>> {
    Arc::new(RepairService::start(
        Arc::new(EchoModel),
        ServiceConfig::default()
            .with_workers(2)
            .with_seed(42)
            .with_telemetry(TelemetryHandle::new(Arc::new(MetricsRegistry::default()))),
    ))
}

#[test]
fn loopback_and_unix_fleets_merge_identical_deterministic_stats() {
    // The same 12-case workload through a 2-shard loopback fleet and a
    // 2-shard unix-socket fleet: `fleet_stats().merged` must agree on every
    // deterministic series (placement is content-derived, so per-shard
    // workloads match shard for shard).
    let loopback_services: Vec<_> = (0..2).map(|_| telemetry_service()).collect();
    let loopback = ShardFleet::new(
        loopback_services
            .iter()
            .map(|service| {
                Box::new(LoopbackTransport::new(Arc::clone(service), "echo")) as Box<dyn Transport>
            })
            .collect(),
    );

    let unix_services: Vec<_> = (0..2).map(|_| telemetry_service()).collect();
    let sockets: Vec<_> = (0..2)
        .map(|i| {
            std::env::temp_dir().join(format!("svserve-telemetry-{}-{i}.sock", std::process::id()))
        })
        .collect();
    let servers: Vec<_> = unix_services
        .iter()
        .zip(&sockets)
        .map(|(service, socket)| {
            ShardServer::bind(socket, Arc::clone(service), "echo").expect("bind shard server")
        })
        .collect();
    let unix = ShardFleet::connect_unix(&sockets, Some("echo"), std::time::Duration::from_secs(10));

    for tag in 0..12 {
        let a = loopback.submit(&request(tag)).expect("loopback healthy");
        let b = unix.submit(&request(tag)).expect("unix fleet healthy");
        assert_eq!(a.responses, b.responses, "case {tag} answers diverged");
    }

    let loopback_stats = loopback.fleet_stats();
    let unix_stats = unix.fleet_stats();
    assert_eq!(loopback_stats.live(), 2);
    assert_eq!(unix_stats.live(), 2);
    assert_eq!(
        loopback_stats.merged.deterministic_only().render_text(),
        unix_stats.merged.deterministic_only().render_text(),
        "transport choice changed the deterministic fleet stats"
    );
    // Both transports actually measured latency; the unix side also recorded
    // wire frame sizes — volatile series, present but uncompared.
    for stats in [&loopback_stats, &unix_stats] {
        let solve = stats.merged.get("service.repair.solve").expect("histogram");
        assert!(solve.count > 0, "solve latency observed over the wire");
    }

    drop(loopback);
    drop(unix);
    for server in servers {
        server.shutdown();
    }
    for service in loopback_services.into_iter().chain(unix_services) {
        Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown();
    }
}
