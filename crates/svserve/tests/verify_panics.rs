//! Regression: a candidate whose verdict function panics must produce a failed
//! outcome without stranding any waiter or poisoning the pool for later jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use svmodel::Response;
use svserve::{verdict_key, verify_scoped, ResponseJudge, VerifyConfig, VerifyPool, VerifyRequest};

const POISON: &str = "segfault-bait";

struct TouchyJudge {
    calls: AtomicUsize,
}

impl ResponseJudge<String> for TouchyJudge {
    fn verdict(&self, _case: &String, response: &Response) -> bool {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if response.fixed_line == POISON {
            panic!("judge choked on a malformed candidate");
        }
        response.bug_line_number.is_multiple_of(2)
    }
}

fn request(tag: u32, fixed_line: &str) -> VerifyRequest<String> {
    let response = Response {
        bug_line_number: tag,
        buggy_line: String::new(),
        fixed_line: fixed_line.into(),
        cot: None,
    };
    let key = verdict_key(&[b"case", &tag.to_le_bytes()], &response, b"panic-test");
    VerifyRequest::new(Arc::new("case".to_string()), response, key)
}

#[test]
fn a_panicking_verdict_fails_the_candidate_without_poisoning_the_pool() {
    let judge = Arc::new(TouchyJudge {
        calls: AtomicUsize::new(0),
    });
    let pool = VerifyPool::start(
        Arc::<TouchyJudge>::clone(&judge),
        VerifyConfig::default().with_workers(2),
    );

    // Interleave healthy candidates with a poisoned one on every shard's path.
    let outcomes = pool.judge_all(
        (0..12)
            .map(|i| {
                if i == 5 {
                    request(i, POISON)
                } else {
                    request(i, "fine")
                }
            })
            .collect(),
    );
    assert_eq!(outcomes.len(), 12, "every ticket must be fulfilled");
    for (i, outcome) in outcomes.iter().enumerate() {
        if i == 5 {
            assert!(!outcome.verdict, "a panicking verdict must count as failed");
            assert!(!outcome.from_cache);
        } else {
            assert_eq!(
                outcome.verdict,
                i % 2 == 0,
                "later jobs must still be judged"
            );
        }
    }

    // The panic is never cached: retrying the same candidate reaches the judge
    // again (and panics again), while healthy duplicates come from the cache.
    let retry = pool.submit(request(5, POISON)).unwrap().wait();
    assert!(!retry.verdict);
    assert!(
        !retry.from_cache,
        "failed-by-panic verdicts must not be cached"
    );
    let healthy_again = pool.submit(request(4, "fine")).unwrap().wait();
    assert!(
        healthy_again.from_cache,
        "pool must keep serving after panics"
    );

    let metrics = pool.shutdown();
    assert_eq!(metrics.verdict_panics, 2);
    assert_eq!(metrics.completed, 14);
    assert_eq!(metrics.cache_hits + metrics.cache_misses, metrics.completed);
    assert_eq!(
        metrics.verdicts_true + metrics.verdicts_false,
        metrics.cache_misses - metrics.verdict_panics,
        "panicked invocations tally no verdict"
    );
    assert_eq!(
        judge.calls.load(Ordering::SeqCst),
        14 - 1 /* one cache hit */
    );
}

#[test]
fn scoped_pool_absorbs_panics_too() {
    let judge = TouchyJudge {
        calls: AtomicUsize::new(0),
    };
    let metrics = verify_scoped(
        &judge,
        VerifyConfig::default().with_workers(1),
        |verifier| {
            let outcomes = verifier.judge_all(vec![
                request(0, "fine"),
                request(1, POISON),
                request(2, "fine"),
            ]);
            assert_eq!(
                outcomes.iter().map(|o| o.verdict).collect::<Vec<_>>(),
                vec![true, false, true]
            );
            verifier.metrics()
        },
    );
    assert_eq!(metrics.verdict_panics, 1);
    assert_eq!(metrics.completed, 3);
}
