//! Regression: a panic inside user code (the model or a judge) must never
//! poison the service's internal locks.  Before `svserve::sync::lock_recover`,
//! a panic that unwound while a shard cache or metrics mutex was held left the
//! mutex poisoned, and every *later* submission — healthy requests included —
//! died in `lock().unwrap()` cascades.  These tests drive the full service
//! through a panic and prove the pool keeps serving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use svmodel::{CaseInput, RepairModel, Response};
use svserve::{RepairRequest, RepairService, ServiceConfig};

const PANIC_BAIT: &str = "panic-bait";

/// Panics the first time it sees a bait case, answers normally otherwise — so
/// one request can crash a worker and a retry of the *same* key can succeed.
struct TouchyModel {
    calls: AtomicUsize,
    panics: AtomicUsize,
}

impl RepairModel for TouchyModel {
    fn name(&self) -> &str {
        "touchy"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if case.spec.contains(PANIC_BAIT) && self.panics.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("model choked on a malformed case");
        }
        (0..samples)
            .map(|i| Response {
                bug_line_number: 1 + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("seed-{seed}-sample-{i}"),
                cot: None,
            })
            .collect()
    }
}

fn request(spec: &str, tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("{spec} {tag}"),
            buggy_source: format!("module m{tag}(); endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        2,
        0.2,
    )
}

#[test]
fn a_model_panic_does_not_poison_later_submissions() {
    let model = Arc::new(TouchyModel {
        calls: AtomicUsize::new(0),
        panics: AtomicUsize::new(0),
    });
    let service = RepairService::start(
        Arc::clone(&model),
        ServiceConfig::default().with_workers(2).with_seed(7),
    );

    // The poisoned request: the worker's catch_unwind absorbs the panic and
    // the waiter gets an empty (failed) response set instead of hanging.
    let crashed = service
        .submit(request(PANIC_BAIT, 0))
        .expect("pool open")
        .wait();
    assert!(
        crashed.responses.is_empty(),
        "a crashed solve yields no responses"
    );
    assert_eq!(service.metrics().solve_panics, 1, "the panic is counted");

    // Healthy requests afterwards are served normally — the shard caches and
    // metrics the panicking thread touched must not be poisoned.
    for tag in 1..6 {
        let outcome = service
            .submit(request("spec", tag))
            .expect("pool open")
            .wait();
        assert_eq!(
            outcome.responses.len(),
            2,
            "case {tag} served after the panic"
        );
    }

    // Panic outcomes are not cached, so retrying the bait key reaches the
    // model again — and this time (the model only panics once) it succeeds
    // and the answer caches like any other.
    let retried = service
        .submit(request(PANIC_BAIT, 0))
        .expect("pool open")
        .wait();
    assert_eq!(retried.responses.len(), 2, "a retry recovers the case");
    assert!(!retried.from_cache);
    let cached = service
        .submit(request(PANIC_BAIT, 0))
        .expect("pool open")
        .wait();
    assert!(cached.from_cache, "the recovered answer is cached");

    let metrics = service.shutdown();
    assert_eq!(metrics.solve_panics, 1);
    assert_eq!(
        model.calls.load(Ordering::SeqCst),
        7,
        "panic + 5 healthy + 1 retry; the cache hit never reaches the model"
    );
}
