//! Multi-model routing: a ladder of repair backends behind one submit/await
//! surface.
//!
//! The paper's central result is that a *staged* model (pretrain → SFT → DPO)
//! beats any single checkpoint, and its evaluation compares the solver against a
//! spread of baseline surrogates.  A service that can hold only one
//! [`RepairModel`] forces every such comparison to spin up a fresh process; this
//! module instead serves **N named backends at once**, each with its own sharded
//! repair pool and content-addressed response cache (built from the
//! [`crate::service`] recipe), and routes every request by a [`RoutePolicy`]:
//!
//! * [`RoutePolicy::Pinned`] — the request goes to one named backend; the
//!   serving-side analogue of evaluating a single checkpoint.
//! * [`RoutePolicy::AbSplit`] — a content hash of the request picks a
//!   deterministic arm, so a corpus splits reproducibly across backends no
//!   matter the worker count, shard capacity, or arrival order.
//! * [`RoutePolicy::Escalate`] — the request is served by the *cheapest* backend
//!   first ([`RepairModel::cost`] orders the ladder); an [`EscalationJudge`]
//!   (typically backed by the [`crate::verify`] pool) judges the candidates, and
//!   a failed verdict re-submits the request to the next rung.  The full attempt
//!   trail is recorded on the [`RouteOutcome`] — the serving-side analogue of
//!   learning from wrongs.
//!
//! ## Determinism
//!
//! Every placement decision is a pure function of request content: backends
//! sample with content-derived seeds (see [`crate::service`]), the A/B arm is a
//! salted hash of the request key modulo the backend count (never the shard
//! count), and escalation verdicts are pure functions of `(case, response,
//! checker config)`.  Routing the same workload with any worker count per
//! backend, any number of escalation coordinators, and warm or cold caches
//! yields byte-identical outcomes.
//!
//! ## Persistence
//!
//! Each backend keeps its own [`crate::ServiceConfig::persist`] spec, so a
//! warm-started ladder preloads one snapshot per model identity and skips every
//! previously-solved rung (`assertsolver::EvalConfig::service_config_for` wires
//! the per-identity file names).

use crate::cache::CaseKey;
use crate::journal::{JournalEvent, TracerHandle};
use crate::metrics::{indent_block, render_block, ServiceMetrics, VerifyMetrics};
use crate::queue::{ServiceClosed, Shard, SubmitError};
use crate::service::{splitmix64, worker_loop, RepairRequest, ServiceConfig, ServiceCore};
use crate::telemetry::{Metric, MetricClass, TelemetryHandle};
use crate::ticket::TicketState;
use crate::trace::{stage, TraceHandle, TraceSpan};
use serde::{Deserialize, Serialize};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;
use svmodel::{RepairModel, Response};

/// Salt mixed into the A/B arm hash so arm assignment decorrelates from the
/// per-backend shard placement (both start from the same 64-bit key fold).
const AB_SALT: u64 = 0xAB5E_C0DE_5EED_0A2B;

/// How a request is placed onto the router's backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutePolicy {
    /// Serve on the backend at this index (see [`ModelRouter::backend_index`]).
    Pinned(usize),
    /// A content hash of the request picks a deterministic arm: stable across
    /// worker counts, shard capacities and arrival orders, so an evaluation
    /// split is reproducible run to run.
    AbSplit,
    /// Cheapest backend first; on a failed [`EscalationJudge`] verdict the
    /// request re-submits to the next rung of the cost-ordered ladder.
    Escalate,
}

/// The deterministic A/B arm for a request key over `arms` backends.
///
/// Exposed so tests and evaluations can predict (and assert) the split without
/// routing: the arm depends only on the request content and the backend count —
/// never on per-backend worker counts or shard capacities.
pub fn ab_arm(key: CaseKey, arms: usize) -> usize {
    (splitmix64(key.fold64() ^ AB_SALT) % arms.max(1) as u64) as usize
}

/// What an [`EscalationJudge`] concluded about one backend's response set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JudgeReport {
    /// Distinct candidates judged (identical responses collapse to one).
    pub distinct: usize,
    /// Responses judged correct, counted *with* multiplicity — the per-case
    /// correct count `c` of pass@k, so ladder evaluations and pinned
    /// evaluations agree on what a solve is.
    pub correct: usize,
}

impl JudgeReport {
    /// Whether the rung's answer is accepted (any candidate judged correct).
    pub fn accepted(&self) -> bool {
        self.correct > 0
    }
}

/// Decides whether a backend's candidates solve a request, for
/// [`RoutePolicy::Escalate`].
///
/// Implementations typically fan the distinct candidates out to a
/// [`crate::VerifyPool`] and fold the verdicts into a [`JudgeReport`] — that is
/// exactly what `assertsolver::evaluate_ladder` does with its `EvalVerifier`.
/// Judges must be pure in `(request, responses)`: the router replays rungs from
/// per-backend response caches, so an impure judge would break the determinism
/// guarantee.  Implemented for free by any matching `Fn` closure.
pub trait EscalationJudge: Send + Sync {
    /// Judges one backend's response set for one request.
    fn judge(&self, request: &RepairRequest, responses: &[Response]) -> JudgeReport;
}

impl<F> EscalationJudge for F
where
    F: Fn(&RepairRequest, &[Response]) -> JudgeReport + Send + Sync,
{
    fn judge(&self, request: &RepairRequest, responses: &[Response]) -> JudgeReport {
        self(request, responses)
    }
}

/// One backend of the router: a named model plus the service configuration its
/// dedicated repair pool runs under.
pub struct BackendSpec {
    /// Display name (defaults to the model's name; override when serving two
    /// same-named checkpoints, e.g. differently seeded base models).
    pub name: String,
    /// Relative cost used to order the escalation ladder (defaults to
    /// [`RepairModel::cost`]).
    pub cost: u32,
    /// The model served by this backend.
    pub model: Arc<dyn RepairModel + Send + Sync>,
    /// Pool configuration — workers, queues, cache, seed, and (for warm ladders)
    /// the per-identity persistence spec.
    pub config: ServiceConfig,
}

impl BackendSpec {
    /// Builds a spec named and costed by the model itself.
    pub fn new(model: Arc<dyn RepairModel + Send + Sync>, config: ServiceConfig) -> Self {
        Self {
            name: model.name().to_string(),
            cost: model.cost(),
            model,
            config,
        }
    }

    /// Returns the spec with the display name replaced.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns the spec with the ladder cost replaced.
    pub fn with_cost(mut self, cost: u32) -> Self {
        self.cost = cost;
        self
    }
}

/// Router tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Escalation coordinator threads: each drives one in-flight
    /// [`RoutePolicy::Escalate`] request through the ladder (submit to a rung,
    /// await, judge, maybe re-submit).  Clamped to at least 1.
    pub escalation_workers: usize,
    /// Bounded depth of the escalation queue; submitters block past this.
    pub escalation_capacity: usize,
    /// Journal tracer the routing layer emits rung events to; off by default,
    /// in which case the ladder costs one branch per request.  Rung events are
    /// pure functions of request content (backend name, judge tallies), so
    /// they land in the deterministic journal.
    pub tracer: TracerHandle,
    /// Telemetry registry the escalation ladder records into: per-rung
    /// `route.rung.<n>.cost` (deterministic — backend cost is a pure function
    /// of ladder order) and `route.rung.<n>.latency` (volatile wall-clock per
    /// leg) histograms.  Off by default — one branch per leg.
    pub telemetry: TelemetryHandle,
    /// Trace collector ([`crate::trace`]) the escalation ladder records
    /// per-rung spans into: each leg becomes a `rung.<n>` child of the
    /// request's root context, sequenced at [`stage::RUNG_BASE`]` + n` so
    /// rung spans interleave deterministically with the session stages.
    /// Off by default — one branch per leg.
    pub trace: TraceHandle,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            escalation_workers: 2,
            escalation_capacity: 64,
            tracer: TracerHandle::off(),
            telemetry: TelemetryHandle::off(),
            trace: TraceHandle::off(),
        }
    }
}

impl RouterConfig {
    /// Returns the config with the journal tracer replaced.
    pub fn with_tracer(mut self, tracer: TracerHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Returns the config with the telemetry handle replaced.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Returns the config with the trace collector replaced.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    fn normalized(mut self) -> Self {
        self.escalation_workers = self.escalation_workers.max(1);
        self.escalation_capacity = self.escalation_capacity.max(1);
        self
    }
}

/// One rung of a served request's trail: which backend ran, what the judge said.
///
/// [`RoutePolicy::Pinned`] and [`RoutePolicy::AbSplit`] outcomes carry exactly
/// one unjudged attempt; [`RoutePolicy::Escalate`] outcomes carry one judged
/// attempt per rung tried, in ladder order.  Every field is a pure function of
/// request content, so trails participate in the byte-identical determinism
/// contract — cache provenance (which varies with warmth and LRU eviction)
/// deliberately lives on [`RouteOutcome::from_cache`] and in the pool metrics,
/// not here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAttempt {
    /// Backend display name.
    pub backend: String,
    /// Backend ladder cost.
    pub cost: u32,
    /// Whether an [`EscalationJudge`] examined this rung (`false` for the
    /// single attempt of a Pinned/AbSplit route, whose caller judges — or
    /// doesn't — downstream).
    pub judged: bool,
    /// Distinct candidates the judge examined (0 when unjudged).
    pub distinct_candidates: usize,
    /// Candidates judged correct, with multiplicity (0 when unjudged).
    pub correct_candidates: usize,
    /// Whether the router stopped here: the judge accepted the rung, the ladder
    /// was exhausted, or the policy never escalates.
    pub terminal: bool,
}

/// A routed request's final answer plus its full attempt trail.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// The response set of the final (terminal) attempt.
    pub responses: Arc<Vec<Response>>,
    /// Index of the backend that produced the final answer.
    pub backend: usize,
    /// Name of the backend that produced the final answer.
    pub backend_name: String,
    /// One entry per rung tried, in order; length 1 for Pinned/AbSplit.
    pub attempts: Vec<RouteAttempt>,
    /// Whether the final answer came from the backend's response cache.
    pub from_cache: bool,
}

impl RouteOutcome {
    /// Verdict-triggered re-submissions this request needed (0 = solved, or
    /// never judged, at the first rung).
    pub fn escalations(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Whether an escalation ladder ended in an accepted verdict (`false` for
    /// exhausted ladders and unjudged policies).
    pub fn accepted(&self) -> bool {
        self.attempts
            .last()
            .map(|attempt| attempt.judged && attempt.correct_candidates > 0)
            .unwrap_or(false)
    }

    /// Total cost of every rung tried, saturating at `u32::MAX`.
    ///
    /// Backends without a configured cost report the `u32::MAX` sentinel, so a
    /// trail that walked through one (an exhausted ladder ending at a
    /// priceless rung) must saturate rather than wrap: a wrapped sum would
    /// report a nearly-free trail for the most expensive path in the system.
    pub fn trail_cost(&self) -> u32 {
        self.attempts
            .iter()
            .fold(0u32, |total, attempt| total.saturating_add(attempt.cost))
    }
}

enum TicketInner {
    /// Pinned / A/B routes: the backend's own ticket, finalized at wait time.
    Direct {
        ticket: crate::service::RepairTicket,
        backend: usize,
        name: String,
        cost: u32,
    },
    /// Escalate routes: fulfilled by an escalation coordinator.
    Escalated(Arc<TicketState<RouteOutcome>>),
}

/// Await-handle for a routed request.
pub struct RouteTicket {
    inner: TicketInner,
}

/// Folds a direct (Pinned/AbSplit) backend outcome into the routed shape.
fn finalize_direct(
    outcome: crate::service::RepairOutcome,
    backend: usize,
    name: String,
    cost: u32,
) -> RouteOutcome {
    RouteOutcome {
        attempts: vec![RouteAttempt {
            backend: name.clone(),
            cost,
            judged: false,
            distinct_candidates: 0,
            correct_candidates: 0,
            terminal: true,
        }],
        backend,
        backend_name: name,
        from_cache: outcome.from_cache,
        responses: outcome.responses,
    }
}

impl RouteTicket {
    /// Blocks until the request has been served (through however many rungs the
    /// policy needed).
    pub fn wait(self) -> RouteOutcome {
        match self.inner {
            TicketInner::Direct {
                ticket,
                backend,
                name,
                cost,
            } => finalize_direct(ticket.wait(), backend, name, cost),
            TicketInner::Escalated(state) => state.wait(),
        }
    }
}

impl Future for RouteTicket {
    type Output = RouteOutcome;

    /// Awaits the routed outcome without holding a thread; works for every
    /// policy (direct tickets finalize on completion, escalated tickets are
    /// fulfilled by a coordinator).
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<RouteOutcome> {
        match &mut self.get_mut().inner {
            TicketInner::Direct {
                ticket,
                backend,
                name,
                cost,
            } => match Pin::new(ticket).poll(cx) {
                Poll::Ready(outcome) => Poll::Ready(finalize_direct(
                    outcome,
                    *backend,
                    std::mem::take(name),
                    *cost,
                )),
                Poll::Pending => Poll::Pending,
            },
            TicketInner::Escalated(state) => state.poll_take(cx.waker()),
        }
    }
}

struct Backend {
    name: String,
    cost: u32,
    model: Arc<dyn RepairModel + Send + Sync>,
    core: Arc<ServiceCore>,
}

enum RouteSubmitKind<'a> {
    /// Pinned / A/B routes: the backend pool's own submit future.
    Direct {
        fut: crate::service::SubmitFuture<'a>,
        backend: usize,
        policy: RoutePolicy,
    },
    /// Escalate routes: a waker-parked push onto the escalation queue.
    Escalate {
        job: Option<EscalateJob>,
        state: Arc<TicketState<RouteOutcome>>,
    },
}

/// Future returned by [`ModelRouter::submit_async`]: resolves to the request's
/// [`RouteTicket`] once the backend shard (direct policies) or the escalation
/// queue has accepted the job, parking on a waker while at capacity.
pub struct RouteSubmitFuture<'a> {
    core: &'a RouterCore,
    kind: RouteSubmitKind<'a>,
}

impl Future for RouteSubmitFuture<'_> {
    type Output = Result<RouteTicket, ServiceClosed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match &mut this.kind {
            RouteSubmitKind::Direct {
                fut,
                backend,
                policy,
            } => match Pin::new(fut).poll(cx) {
                Poll::Ready(Ok(ticket)) => {
                    // Counted only once the backend accepted the job, matching
                    // the blocking path's accounting.
                    let counter = match policy {
                        RoutePolicy::AbSplit => &this.core.recorder.ab_split_requests,
                        _ => &this.core.recorder.pinned_requests,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    let spec = &this.core.backends[*backend];
                    Poll::Ready(Ok(RouteTicket {
                        inner: TicketInner::Direct {
                            ticket,
                            backend: *backend,
                            name: spec.name.clone(),
                            cost: spec.cost,
                        },
                    }))
                }
                Poll::Ready(Err(closed)) => Poll::Ready(Err(closed)),
                Poll::Pending => Poll::Pending,
            },
            RouteSubmitKind::Escalate { job, state } => {
                match this
                    .core
                    .queue
                    .poll_push(job, &this.core.closed, cx.waker())
                {
                    Poll::Ready(Ok(_)) => {
                        this.core.recorder.submitted.fetch_add(1, Ordering::Relaxed);
                        Poll::Ready(Ok(RouteTicket {
                            inner: TicketInner::Escalated(Arc::clone(state)),
                        }))
                    }
                    Poll::Ready(Err(closed)) => Poll::Ready(Err(closed)),
                    Poll::Pending => Poll::Pending,
                }
            }
        }
    }
}

struct EscalateJob {
    request: RepairRequest,
    ticket: Arc<TicketState<RouteOutcome>>,
}

/// Atomic escalation-stage counters (the backend pools carry their own
/// `MetricsRecorder`s; these cover only the routing layer on top).
struct EscalationRecorder {
    submitted: AtomicU64,
    completed: AtomicU64,
    accepted: AtomicU64,
    exhausted: AtomicU64,
    verdict_resubmits: AtomicU64,
    judge_panics: AtomicU64,
    journal_events: AtomicU64,
    /// `depth_histogram[d]` counts escalation requests that tried `d + 1` rungs.
    depth_histogram: Vec<AtomicU64>,
    pinned_requests: AtomicU64,
    ab_split_requests: AtomicU64,
}

impl EscalationRecorder {
    fn new(rungs: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            verdict_resubmits: AtomicU64::new(0),
            judge_panics: AtomicU64::new(0),
            journal_events: AtomicU64::new(0),
            depth_histogram: (0..rungs).map(|_| AtomicU64::new(0)).collect(),
            pinned_requests: AtomicU64::new(0),
            ab_split_requests: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> EscalationMetrics {
        EscalationMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            verdict_resubmits: self.verdict_resubmits.load(Ordering::Relaxed),
            judge_panics: self.judge_panics.load(Ordering::Relaxed),
            journal_events: self.journal_events.load(Ordering::Relaxed),
            depth_histogram: self
                .depth_histogram
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect(),
            pinned_requests: self.pinned_requests.load(Ordering::Relaxed),
            ab_split_requests: self.ab_split_requests.load(Ordering::Relaxed),
        }
    }
}

/// Pre-resolved telemetry handles for one ladder position, so an escalation
/// leg pays lock-free atomics (or one branch, telemetry off) — never a
/// registry lock.
struct RungMetrics {
    cost: Option<Arc<Metric>>,
    latency: Option<Arc<Metric>>,
}

impl RungMetrics {
    fn new(telemetry: &TelemetryHandle, rung: usize) -> Self {
        Self {
            cost: telemetry.histogram(
                &format!("route.rung.{rung}.cost"),
                MetricClass::Deterministic,
            ),
            latency: telemetry
                .histogram(&format!("route.rung.{rung}.latency"), MetricClass::Volatile),
        }
    }
}

struct RouterCore {
    backends: Vec<Backend>,
    /// Backend indices sorted by `(cost, index)` — the escalation order.
    ladder: Vec<usize>,
    /// One telemetry handle pair per ladder position (`route.rung.<n>.*`).
    rung_metrics: Vec<RungMetrics>,
    queue: Shard<EscalateJob>,
    judge: Arc<dyn EscalationJudge>,
    recorder: EscalationRecorder,
    tracer: TracerHandle,
    trace: TraceHandle,
    closed: AtomicBool,
}

impl RouterCore {
    fn run_ladder(&self, request: &RepairRequest) -> RouteOutcome {
        let mut attempts: Vec<RouteAttempt> = Vec::with_capacity(1);
        let rungs = self.ladder.len();
        // The journal session id is the request's content hash — computed only
        // when a tracer is installed, so the off path never pays the hash.
        let session = self.tracer.is_on().then(|| request.key().fold64());
        // The trace root is content-derived too — only computed when tracing.
        let trace_root = if self.trace.is_on() {
            self.trace.root(request.key())
        } else {
            None
        };
        for (rung, &idx) in self.ladder.iter().enumerate() {
            let backend = &self.backends[idx];
            let rung_metrics = &self.rung_metrics[rung];
            let leg_start =
                (rung_metrics.latency.is_some() || trace_root.is_some()).then(Instant::now);
            // Internal ladder legs bypass per-backend admission: shedding a
            // request halfway up an already-admitted escalation would turn one
            // accepted session into a spurious failure.
            let Ok(ticket) = backend.core.submit_inner(request.clone(), false) else {
                // Only reachable if a backend pool was closed out from under an
                // in-flight ladder (the shutdown path drains coordinators
                // first); degrade to an empty terminal answer.
                break;
            };
            let outcome = ticket.wait();
            // A panicking judge must not take the coordinator down (it would
            // strand this ticket and every queued escalation behind it); treat
            // the rung as rejected and move on.
            let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.judge.judge(request, &outcome.responses)
            }))
            .unwrap_or_else(|_| {
                self.recorder.judge_panics.fetch_add(1, Ordering::Relaxed);
                JudgeReport {
                    distinct: 0,
                    correct: 0,
                }
            });
            let terminal = report.accepted() || rung + 1 == rungs;
            if let Some(metric) = &rung_metrics.cost {
                metric.observe(u64::from(backend.cost));
            }
            if let (Some(metric), Some(start)) = (&rung_metrics.latency, leg_start) {
                metric.observe_duration(start.elapsed());
            }
            if let (Some(root), Some(start)) = (&trace_root, leg_start) {
                // One span per leg, a child of the request's root context:
                // every deterministic field is a pure function of request
                // content and ladder position, so rung spans merge
                // byte-identically across coordinator counts.
                let label = format!("rung.{rung}");
                self.trace.record(TraceSpan::new(
                    &root.child(&label),
                    label.clone(),
                    stage::RUNG_BASE + rung as u32,
                    report.distinct as u64,
                    start.elapsed().as_nanos() as u64,
                ));
            }
            if let Some(session) = session {
                // Deterministic event: every field is a pure function of
                // request content, sequenced by ladder position.
                self.recorder.journal_events.fetch_add(1, Ordering::Relaxed);
                self.tracer.event(
                    session,
                    rung as u32,
                    JournalEvent::Rung {
                        rung: rung as u32,
                        backend: backend.name.clone(),
                        judged: report.distinct as u64,
                        correct: report.correct as u64,
                        terminal,
                    },
                );
            }
            attempts.push(RouteAttempt {
                backend: backend.name.clone(),
                cost: backend.cost,
                judged: true,
                distinct_candidates: report.distinct,
                correct_candidates: report.correct,
                terminal,
            });
            if terminal {
                let counter = if report.accepted() {
                    &self.recorder.accepted
                } else {
                    &self.recorder.exhausted
                };
                counter.fetch_add(1, Ordering::Relaxed);
                self.recorder.depth_histogram[attempts.len() - 1].fetch_add(1, Ordering::Relaxed);
                self.recorder.completed.fetch_add(1, Ordering::Relaxed);
                return RouteOutcome {
                    backend: idx,
                    backend_name: backend.name.clone(),
                    from_cache: outcome.from_cache,
                    responses: outcome.responses,
                    attempts,
                };
            }
            // Failed verdict: re-submit to the next rung.
            self.recorder
                .verdict_resubmits
                .fetch_add(1, Ordering::Relaxed);
        }
        // Unreachable with >= 1 rung unless a backend refused the submit
        // (pool force-closed under an in-flight ladder).  Attribute the
        // best-effort outcome to the deepest rung actually tried, and keep the
        // depth histogram consistent with `completed` whenever any rung ran.
        self.recorder.completed.fetch_add(1, Ordering::Relaxed);
        self.recorder.exhausted.fetch_add(1, Ordering::Relaxed);
        if !attempts.is_empty() {
            self.recorder.depth_histogram[attempts.len() - 1].fetch_add(1, Ordering::Relaxed);
        }
        let deepest = attempts
            .len()
            .checked_sub(1)
            .map(|last| self.ladder[last])
            .unwrap_or(self.ladder[0]);
        RouteOutcome {
            responses: Arc::new(Vec::new()),
            backend: deepest,
            backend_name: self.backends[deepest].name.clone(),
            attempts,
            from_cache: false,
        }
    }
}

fn escalation_loop(core: &RouterCore) {
    loop {
        // Batch size 1: ladder walks are long-lived, so hogging several queued
        // requests per wake-up would serialize work other coordinators could
        // overlap.
        let batch = core.queue.drain_batch(1, &core.closed);
        if batch.is_empty() {
            // Closed and drained.
            return;
        }
        for job in batch {
            let outcome = core.run_ladder(&job.request);
            job.ticket.fulfill(outcome);
        }
    }
}

/// A routing frontend owning N named repair backends behind one submit/await
/// surface.
///
/// Each backend runs its own sharded worker pool and response cache (the
/// [`crate::service`] engine) over its own model; a pool of escalation
/// coordinators drives [`RoutePolicy::Escalate`] requests through the
/// cost-ordered ladder.  Shutdown/drop closes the escalation queue first (so
/// in-flight ladders finish against live backends), then the backend pools,
/// then flushes every backend's snapshot.
pub struct ModelRouter {
    core: Arc<RouterCore>,
    escalation_handles: Vec<std::thread::JoinHandle<()>>,
    backend_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ModelRouter {
    /// Starts one repair pool per backend plus the escalation coordinators.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn start(
        backends: Vec<BackendSpec>,
        judge: Arc<dyn EscalationJudge>,
        config: RouterConfig,
    ) -> Self {
        assert!(!backends.is_empty(), "router needs at least one backend");
        let config = config.normalized();
        let backends: Vec<Backend> = backends
            .into_iter()
            .map(|spec| Backend {
                name: spec.name,
                cost: spec.cost,
                core: Arc::new(ServiceCore::new(spec.config)),
                model: spec.model,
            })
            .collect();
        let mut ladder: Vec<usize> = (0..backends.len()).collect();
        ladder.sort_by_key(|&idx| (backends[idx].cost, idx));
        let recorder = EscalationRecorder::new(backends.len());
        let rung_metrics = (0..ladder.len())
            .map(|rung| RungMetrics::new(&config.telemetry, rung))
            .collect();
        let core = Arc::new(RouterCore {
            queue: Shard::new(config.escalation_capacity),
            judge,
            recorder,
            tracer: config.tracer.clone(),
            trace: config.trace.clone(),
            closed: AtomicBool::new(false),
            ladder,
            rung_metrics,
            backends,
        });
        let mut backend_handles = Vec::new();
        for (backend_idx, backend) in core.backends.iter().enumerate() {
            for shard_idx in 0..backend.core.config().workers {
                let pool = Arc::clone(&backend.core);
                let model = Arc::clone(&backend.model);
                backend_handles.push(
                    std::thread::Builder::new()
                        .name(format!("svroute-b{backend_idx}-w{shard_idx}"))
                        .spawn(move || worker_loop(&pool, &*model, shard_idx))
                        .expect("spawn backend worker thread"),
                );
            }
        }
        let escalation_handles = (0..config.escalation_workers)
            .map(|idx| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("svroute-escalate-{idx}"))
                    .spawn(move || escalation_loop(&core))
                    .expect("spawn escalation coordinator thread")
            })
            .collect();
        Self {
            core,
            escalation_handles,
            backend_handles,
        }
    }

    /// Number of backends served.
    pub fn backend_count(&self) -> usize {
        self.core.backends.len()
    }

    /// Backend display names, in registration order (the indices
    /// [`RoutePolicy::Pinned`] and [`RouteOutcome::backend`] refer to).
    pub fn backend_names(&self) -> Vec<String> {
        self.core.backends.iter().map(|b| b.name.clone()).collect()
    }

    /// The index of the first backend with this display name, if any.
    pub fn backend_index(&self, name: &str) -> Option<usize> {
        self.core.backends.iter().position(|b| b.name == name)
    }

    /// Backend indices in escalation (cheapest-first) order.
    pub fn ladder(&self) -> &[usize] {
        &self.core.ladder
    }

    /// Submits one request under a policy; blocks only on backpressure (a full
    /// backend shard or escalation queue).  A backend at its
    /// [`ServiceConfig::max_in_flight`] limit sheds [`RoutePolicy::Pinned`] and
    /// [`RoutePolicy::AbSplit`] requests with a deterministic
    /// [`SubmitError::Busy`], counted in that backend's
    /// [`ServiceMetrics::shed_busy`].
    ///
    /// # Panics
    ///
    /// Panics if a [`RoutePolicy::Pinned`] index is out of range.
    pub fn submit(
        &self,
        request: RepairRequest,
        policy: RoutePolicy,
    ) -> Result<RouteTicket, SubmitError> {
        if self.core.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        let direct = |idx: usize| -> Result<RouteTicket, SubmitError> {
            let backend = &self.core.backends[idx];
            let ticket = backend.core.submit(request.clone())?;
            Ok(RouteTicket {
                inner: TicketInner::Direct {
                    ticket,
                    backend: idx,
                    name: backend.name.clone(),
                    cost: backend.cost,
                },
            })
        };
        match policy {
            RoutePolicy::Pinned(idx) => {
                self.assert_backend_index(idx);
                // Count only after the backend accepted the submit, so the
                // policy counters cannot exceed requests actually served when
                // a submit races shutdown.
                let ticket = direct(idx)?;
                self.core
                    .recorder
                    .pinned_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            RoutePolicy::AbSplit => {
                let ticket = direct(ab_arm(request.key(), self.core.backends.len()))?;
                self.core
                    .recorder
                    .ab_split_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            RoutePolicy::Escalate => {
                let state = TicketState::new();
                let job = EscalateJob {
                    request,
                    ticket: Arc::clone(&state),
                };
                self.core
                    .queue
                    .push_blocking(job, &self.core.closed)
                    .map_err(SubmitError::from)?;
                self.core.recorder.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(RouteTicket {
                    inner: TicketInner::Escalated(state),
                })
            }
        }
    }

    fn assert_backend_index(&self, idx: usize) {
        assert!(
            idx < self.core.backends.len(),
            "pinned backend index {idx} out of range ({} backends)",
            self.core.backends.len()
        );
    }

    /// Non-blocking submit for async sessions: admission and shutdown are
    /// checked eagerly (so [`SubmitError::Busy`] sheds deterministically before
    /// any awaiting), and the returned future parks on a waker — never a
    /// thread — while the backend shard or escalation queue is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if a [`RoutePolicy::Pinned`] index is out of range.
    pub fn submit_async(
        &self,
        request: RepairRequest,
        policy: RoutePolicy,
    ) -> Result<RouteSubmitFuture<'_>, SubmitError> {
        if self.core.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        let direct =
            |idx: usize, policy: RoutePolicy| -> Result<RouteSubmitFuture<'_>, SubmitError> {
                let backend = &self.core.backends[idx];
                Ok(RouteSubmitFuture {
                    core: &self.core,
                    kind: RouteSubmitKind::Direct {
                        fut: backend.core.submit_async(request.clone())?,
                        backend: idx,
                        policy,
                    },
                })
            };
        match policy {
            RoutePolicy::Pinned(idx) => {
                self.assert_backend_index(idx);
                direct(idx, policy)
            }
            RoutePolicy::AbSplit => direct(ab_arm(request.key(), self.core.backends.len()), policy),
            RoutePolicy::Escalate => {
                let state = TicketState::new();
                let job = EscalateJob {
                    request,
                    ticket: Arc::clone(&state),
                };
                Ok(RouteSubmitFuture {
                    core: &self.core,
                    kind: RouteSubmitKind::Escalate {
                        job: Some(job),
                        state,
                    },
                })
            }
        }
    }

    /// Submits a whole workload under one policy and waits for every outcome,
    /// preserving input order.
    pub fn route_all(
        &self,
        requests: Vec<RepairRequest>,
        policy: RoutePolicy,
    ) -> Vec<RouteOutcome> {
        let tickets: Vec<RouteTicket> = requests
            .into_iter()
            .map(|request| self.submit(request, policy).expect("router open"))
            .collect();
        tickets.into_iter().map(RouteTicket::wait).collect()
    }

    /// Takes the per-route metrics snapshot: every backend pool plus the
    /// escalation stage.
    pub fn metrics(&self) -> RouteMetrics {
        RouteMetrics {
            backends: self
                .core
                .backends
                .iter()
                .map(|backend| BackendMetrics {
                    name: backend.name.clone(),
                    cost: backend.cost,
                    service: backend.core.snapshot(),
                })
                .collect(),
            ladder: self.core.ladder.clone(),
            escalation: self.core.recorder.snapshot(),
            verify: None,
        }
    }

    /// Writes every backend's response cache to its configured snapshot path,
    /// returning the total entries written (backends without persistence
    /// contribute 0).  Also runs automatically on shutdown/drop.
    ///
    /// Every backend is flushed even when an earlier one fails — one full disk
    /// must not cost the other backends their warm state — and the first error
    /// is returned afterwards (each failure is also recorded in that backend's
    /// `snapshot_save_failures` counter).
    pub fn flush(&self) -> std::io::Result<usize> {
        let mut total = 0;
        let mut first_error = None;
        for backend in &self.core.backends {
            match backend.core.flush() {
                Ok(count) => total += count,
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(total),
        }
    }

    fn close_and_join(&mut self) {
        // Order matters: stop accepting work and drain the escalation queue
        // while the backends are still alive (in-flight ladders submit to
        // them), then close the backend pools.
        self.core.closed.store(true, Ordering::Release);
        self.core.queue.notify_all();
        for handle in self.escalation_handles.drain(..) {
            let _ = handle.join();
        }
        for backend in &self.core.backends {
            backend.core.close();
        }
        for handle in self.backend_handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stops accepting work, drains the escalation queue against live backends,
    /// joins every pool, flushes all backend snapshots and returns the final
    /// metrics.
    pub fn shutdown(mut self) -> RouteMetrics {
        self.close_and_join();
        let _ = self.flush();
        self.metrics()
    }
}

impl Drop for ModelRouter {
    fn drop(&mut self) {
        let had_workers = !self.backend_handles.is_empty() || !self.escalation_handles.is_empty();
        self.close_and_join();
        // `shutdown` already flushed (and emptied the handle lists); only flush
        // here when the router is dropped without an explicit shutdown.
        if had_workers {
            let _ = self.flush();
        }
    }
}

/// One backend's slice of a [`RouteMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BackendMetrics {
    /// Backend display name.
    pub name: String,
    /// Backend ladder cost.
    pub cost: u32,
    /// The backend pool's full snapshot (throughput, latency, cache hit rate,
    /// warm-start view — see [`ServiceMetrics`]).
    pub service: ServiceMetrics,
}

/// The escalation stage of a [`RouteMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EscalationMetrics {
    /// Escalate requests accepted by `submit`.
    pub submitted: u64,
    /// Escalate requests fully served.
    pub completed: u64,
    /// Requests whose ladder ended in an accepted verdict.
    pub accepted: u64,
    /// Requests that walked off the last rung unaccepted.
    pub exhausted: u64,
    /// Re-submissions triggered by failed verdicts (the "learning from wrongs"
    /// traffic: rung answers the judge rejected).
    pub verdict_resubmits: u64,
    /// Judge invocations that panicked; each was treated as a rejection.
    pub judge_panics: u64,
    /// Rung events the routing layer emitted to an installed [`crate::Tracer`];
    /// stays zero while journaling is off.
    pub journal_events: u64,
    /// `depth_histogram[d]` counts requests that tried `d + 1` rungs before
    /// terminating; the length equals the backend count.
    pub depth_histogram: Vec<u64>,
    /// Requests routed with [`RoutePolicy::Pinned`].
    pub pinned_requests: u64,
    /// Requests routed with [`RoutePolicy::AbSplit`].
    pub ab_split_requests: u64,
}

impl EscalationMetrics {
    /// The aligned rows behind the escalation block of [`RouteMetrics::render`].
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("submitted", format!("{:>10}", self.submitted)),
            ("completed", format!("{:>10}", self.completed)),
            (
                "verdicts",
                format!(
                    "{:>10} accepted, {} exhausted, {} judge panics",
                    self.accepted, self.exhausted, self.judge_panics
                ),
            ),
            (
                "resubmits",
                format!("{:>10} verdict-triggered", self.verdict_resubmits),
            ),
            (
                "journal",
                format!("{:>10} events emitted", self.journal_events),
            ),
            ("depth histogram", {
                let buckets = format!("{:?}", self.depth_histogram);
                format!("{buckets:>10} (requests by rungs tried)")
            }),
            (
                "other policies",
                format!(
                    "{:>10} pinned, {} a/b split",
                    self.pinned_requests, self.ab_split_requests
                ),
            ),
        ]
    }
}

/// A point-in-time view of the whole router: every backend pool, the escalation
/// stage, and (when attached) the verify pool the judge runs on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteMetrics {
    /// Per-backend snapshots, in registration order.
    pub backends: Vec<BackendMetrics>,
    /// Backend indices in escalation (cheapest-first) order.
    pub ladder: Vec<usize>,
    /// The escalation stage.
    pub escalation: EscalationMetrics,
    /// The judge's verify-pool snapshot, when the caller attaches one (see
    /// [`RouteMetrics::with_verify`]).
    pub verify: Option<VerifyMetrics>,
}

impl RouteMetrics {
    /// Attaches the verify-pool snapshot backing the escalation judge, for the
    /// combined routing + verification view.
    pub fn with_verify(mut self, verify: VerifyMetrics) -> Self {
        self.verify = Some(verify);
        self
    }

    /// Renders the router snapshot as nested labelled blocks: a summary, one
    /// indented sub-block per backend, the escalation stage, and the judge's
    /// verify pool when attached.  Built entirely from
    /// [`render_block`]/[`indent_block`], so the nesting shares one formatter
    /// with the flat pool views instead of duplicating it.
    pub fn render(&self) -> String {
        let ladder_names: Vec<&str> = self
            .ladder
            .iter()
            .map(|&idx| self.backends[idx].name.as_str())
            .collect();
        let summary = vec![
            ("backends", format!("{:>10}", self.backends.len())),
            ("ladder", ladder_names.join(" -> ")),
        ];
        let mut out = render_block("router metrics", &summary);
        for (idx, backend) in self.backends.iter().enumerate() {
            let title = format!(
                "backend {idx} \u{b7} {} (cost {})",
                backend.name, backend.cost
            );
            let block = render_block(&title, &backend.service.rows());
            out.push('\n');
            out.push_str(&indent_block(&block, 2));
        }
        out.push('\n');
        out.push_str(&indent_block(
            &render_block("escalation", &self.escalation.rows()),
            2,
        ));
        if let Some(verify) = &self.verify {
            out.push('\n');
            out.push_str(&indent_block(&verify.render(), 2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use svmodel::CaseInput;

    /// Test model: answers are tagged with the model's own label so tests can
    /// see which backend served a request, and a quality threshold decides
    /// which cases it can "solve" (the judge below checks for the marker).
    struct TierModel {
        label: &'static str,
        cost: u32,
        /// Solves a case when `tag % 10 < skill`.
        skill: u32,
        calls: AtomicUsize,
    }

    impl TierModel {
        fn new(label: &'static str, cost: u32, skill: u32) -> Arc<Self> {
            Arc::new(Self {
                label,
                cost,
                skill,
                calls: AtomicUsize::new(0),
            })
        }
    }

    impl RepairModel for TierModel {
        fn name(&self) -> &str {
            self.label
        }

        fn cost(&self) -> u32 {
            self.cost
        }

        fn solve(
            &self,
            case: &CaseInput,
            samples: usize,
            _temperature: f64,
            seed: u64,
        ) -> Vec<Response> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let tag: u32 = case
                .spec
                .trim_start_matches("spec ")
                .parse()
                .unwrap_or(u32::MAX);
            let solved = tag % 10 < self.skill;
            (0..samples)
                .map(|i| Response {
                    bug_line_number: tag + i as u32,
                    buggy_line: case.buggy_source.clone(),
                    fixed_line: if solved {
                        format!("SOLVED by {} seed {seed}", self.label)
                    } else {
                        format!("wrong guess {i} by {}", self.label)
                    },
                    cot: None,
                })
                .collect()
        }
    }

    /// Judge accepting any response carrying the SOLVED marker.
    fn marker_judge() -> Arc<dyn EscalationJudge> {
        Arc::new(|_request: &RepairRequest, responses: &[Response]| {
            let correct = responses
                .iter()
                .filter(|r| r.fixed_line.starts_with("SOLVED"))
                .count();
            JudgeReport {
                distinct: responses.len().min(1),
                correct,
            }
        })
    }

    fn request(tag: usize) -> RepairRequest {
        RepairRequest::new(
            CaseInput {
                spec: format!("spec {tag}"),
                buggy_source: format!("module m{tag}(); endmodule"),
                logs: format!("assertion a{tag} failed"),
            },
            3,
            0.2,
        )
    }

    fn two_tier_router(workers: usize) -> (Arc<TierModel>, Arc<TierModel>, ModelRouter) {
        // Registration order is deliberately strongest-first: the ladder must
        // re-order by cost, not trust insertion order.
        let strong = TierModel::new("strong", 50, 10);
        let weak = TierModel::new("weak", 1, 4);
        let router = ModelRouter::start(
            vec![
                BackendSpec::new(
                    Arc::<TierModel>::clone(&strong) as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(workers),
                ),
                BackendSpec::new(
                    Arc::<TierModel>::clone(&weak) as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(workers),
                ),
            ],
            marker_judge(),
            RouterConfig::default(),
        );
        (strong, weak, router)
    }

    #[test]
    fn ladder_orders_backends_by_cost_not_registration() {
        let (_, _, router) = two_tier_router(1);
        assert_eq!(router.backend_names(), vec!["strong", "weak"]);
        assert_eq!(router.ladder(), &[1, 0], "cheapest rung must come first");
        assert_eq!(router.backend_index("weak"), Some(1));
        assert_eq!(router.backend_index("missing"), None);
        router.shutdown();
    }

    #[test]
    fn pinned_requests_reach_exactly_the_pinned_backend() {
        let (strong, weak, router) = two_tier_router(2);
        let outcomes = router.route_all((0..8).map(request).collect(), RoutePolicy::Pinned(0));
        assert!(outcomes.iter().all(|o| o.backend == 0));
        assert!(outcomes.iter().all(|o| o.backend_name == "strong"));
        assert!(outcomes.iter().all(|o| o.attempts.len() == 1));
        assert!(outcomes.iter().all(|o| !o.attempts[0].judged));
        assert_eq!(strong.calls.load(Ordering::SeqCst), 8);
        assert_eq!(
            weak.calls.load(Ordering::SeqCst),
            0,
            "the unpinned backend must stay idle"
        );
        let metrics = router.shutdown();
        assert_eq!(metrics.escalation.pinned_requests, 8);
        assert_eq!(metrics.backends[0].service.completed, 8);
        assert_eq!(metrics.backends[1].service.completed, 0);
    }

    #[test]
    fn ab_split_is_deterministic_and_ignores_pool_shape() {
        let workload: Vec<RepairRequest> = (0..32).map(request).collect();
        let predicted: Vec<usize> = workload.iter().map(|r| ab_arm(r.key(), 2)).collect();
        // Both arms should see traffic on a 32-case workload.
        assert!(predicted.contains(&0));
        assert!(predicted.contains(&1));
        for workers in [1, 4] {
            let (_, _, router) = two_tier_router(workers);
            let outcomes = router.route_all(workload.clone(), RoutePolicy::AbSplit);
            let arms: Vec<usize> = outcomes.iter().map(|o| o.backend).collect();
            assert_eq!(
                arms, predicted,
                "arm assignment must depend only on content and backend count"
            );
            router.shutdown();
        }
    }

    #[test]
    fn escalation_walks_the_ladder_until_a_rung_is_accepted() {
        let (strong, weak, router) = two_tier_router(2);
        // Tags 0..4 are solved by the weak rung (skill 4); 4..8 need escalation.
        let outcomes = router.route_all((0..8).map(request).collect(), RoutePolicy::Escalate);
        for (tag, outcome) in outcomes.iter().enumerate() {
            if tag < 4 {
                assert_eq!(outcome.backend_name, "weak", "tag {tag} solves cheaply");
                assert_eq!(outcome.escalations(), 0);
                assert_eq!(outcome.attempts.len(), 1);
            } else {
                assert_eq!(outcome.backend_name, "strong", "tag {tag} must escalate");
                assert_eq!(outcome.escalations(), 1);
                assert_eq!(outcome.attempts[0].backend, "weak");
                assert!(!outcome.attempts[0].terminal);
                assert_eq!(outcome.attempts[0].correct_candidates, 0);
                assert_eq!(outcome.attempts[1].backend, "strong");
                assert!(outcome.attempts[1].terminal);
            }
            assert!(outcome.accepted(), "every case is solvable by some rung");
            assert_eq!(outcome.responses.len(), 3);
        }
        // Both rungs were exercised: weak saw everything, strong only failures.
        assert_eq!(weak.calls.load(Ordering::SeqCst), 8);
        assert_eq!(strong.calls.load(Ordering::SeqCst), 4);
        let metrics = router.shutdown();
        assert_eq!(metrics.escalation.submitted, 8);
        assert_eq!(metrics.escalation.completed, 8);
        assert_eq!(metrics.escalation.accepted, 8);
        assert_eq!(metrics.escalation.exhausted, 0);
        assert_eq!(metrics.escalation.verdict_resubmits, 4);
        assert_eq!(metrics.escalation.depth_histogram, vec![4, 4]);
    }

    #[test]
    fn exhausted_ladders_return_the_last_rung_answer() {
        let weak = TierModel::new("weak", 1, 0);
        let mid = TierModel::new("mid", 5, 0);
        let router = ModelRouter::start(
            vec![
                BackendSpec::new(
                    weak as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
                BackendSpec::new(
                    mid as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
            ],
            marker_judge(),
            RouterConfig::default(),
        );
        let outcome = router
            .submit(request(9), RoutePolicy::Escalate)
            .unwrap()
            .wait();
        assert!(!outcome.accepted());
        assert_eq!(outcome.escalations(), 1);
        assert_eq!(
            outcome.backend_name, "mid",
            "answer comes from the last rung"
        );
        assert!(!outcome.responses.is_empty(), "best-effort answer survives");
        let metrics = router.shutdown();
        assert_eq!(metrics.escalation.exhausted, 1);
        assert_eq!(metrics.escalation.accepted, 0);
        assert_eq!(metrics.escalation.depth_histogram, vec![0, 1]);
    }

    #[test]
    fn exhausted_trail_cost_saturates_instead_of_wrapping() {
        // Regression: a ladder ending at a cost-sentinel rung (`u32::MAX`, the
        // "no configured cost" sentinel) used to wrap when summed with the
        // cheaper rungs below it, reporting a near-zero total for the most
        // expensive trail in the system.
        let cheap = TierModel::new("cheap", 5, 0);
        let priceless = TierModel::new("priceless", u32::MAX, 0);
        let router = ModelRouter::start(
            vec![
                BackendSpec::new(
                    cheap as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
                BackendSpec::new(
                    priceless as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
            ],
            marker_judge(),
            RouterConfig::default(),
        );
        let outcome = router
            .submit(request(9), RoutePolicy::Escalate)
            .unwrap()
            .wait();
        assert!(!outcome.accepted(), "no rung can solve skill-0 cases");
        assert_eq!(outcome.attempts.len(), 2, "both rungs were tried");
        let wrapped = outcome
            .attempts
            .iter()
            .fold(0u32, |total, attempt| total.wrapping_add(attempt.cost));
        assert_eq!(wrapped, 4, "a wrapping sum would undercount this trail");
        assert_eq!(outcome.trail_cost(), u32::MAX, "the trail cost saturates");
        router.shutdown();
    }

    #[test]
    fn escalation_replays_rungs_from_the_backend_caches() {
        let (strong, weak, router) = two_tier_router(2);
        let first = router.route_all((0..6).map(request).collect(), RoutePolicy::Escalate);
        let weak_calls = weak.calls.load(Ordering::SeqCst);
        let strong_calls = strong.calls.load(Ordering::SeqCst);
        let second = router.route_all((0..6).map(request).collect(), RoutePolicy::Escalate);
        assert_eq!(
            weak.calls.load(Ordering::SeqCst),
            weak_calls,
            "replayed rungs must hit the response cache"
        );
        assert_eq!(strong.calls.load(Ordering::SeqCst), strong_calls);
        // Identical outcomes up to cache provenance.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.responses, b.responses);
            assert_eq!(a.backend, b.backend);
            assert_eq!(a.escalations(), b.escalations());
        }
        assert!(second.iter().all(|o| o.from_cache));
        router.shutdown();
    }

    #[test]
    fn a_panicking_judge_rejects_the_rung_instead_of_stranding_tickets() {
        let weak = TierModel::new("weak", 1, 10);
        let strong = TierModel::new("strong", 9, 10);
        let judge: Arc<dyn EscalationJudge> =
            Arc::new(|request: &RepairRequest, responses: &[Response]| {
                if request.case.spec == "spec 3"
                    && responses.iter().any(|r| !r.fixed_line.is_empty())
                {
                    panic!("malformed verdict");
                }
                JudgeReport {
                    distinct: 1,
                    correct: responses.len(),
                }
            });
        let router = ModelRouter::start(
            vec![
                BackendSpec::new(
                    weak as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
                BackendSpec::new(
                    strong as Arc<dyn RepairModel + Send + Sync>,
                    ServiceConfig::default().with_workers(1),
                ),
            ],
            judge,
            RouterConfig::default(),
        );
        let outcomes = router.route_all((0..6).map(request).collect(), RoutePolicy::Escalate);
        assert_eq!(outcomes.len(), 6, "every ticket must be fulfilled");
        // The panicking case walked the whole ladder (the judge panics on both
        // rungs) and still came back with the last rung's answer.
        assert_eq!(outcomes[3].escalations(), 1);
        assert!(!outcomes[3].accepted());
        assert!(outcomes
            .iter()
            .enumerate()
            .all(|(i, o)| i == 3 || o.accepted()));
        let metrics = router.shutdown();
        assert_eq!(metrics.escalation.judge_panics, 2);
        assert_eq!(metrics.escalation.completed, 6);
    }

    #[test]
    fn router_metrics_render_nests_backend_blocks() {
        let (_, _, router) = two_tier_router(1);
        router.route_all((0..4).map(request).collect(), RoutePolicy::Escalate);
        let metrics = router.shutdown();
        let text = metrics.render();
        assert!(text.starts_with("router metrics"));
        assert!(text.contains("backend 0 \u{b7} strong (cost 50)"));
        assert!(text.contains("backend 1 \u{b7} weak (cost 1)"));
        assert!(text.contains("escalation"));
        assert!(text.contains("depth histogram"));
        // Backend blocks nest under the summary.
        assert!(text.contains("\n  backend 0"));
    }

    #[test]
    fn closed_router_refuses_new_work() {
        let (_, _, router) = two_tier_router(1);
        let core = Arc::clone(&router.core);
        router.shutdown();
        assert!(core.closed.load(Ordering::Acquire));
    }
}
