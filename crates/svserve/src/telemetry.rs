//! Unified telemetry plane: one registry of counters, gauges and log-2-bucketed
//! latency histograms shared by every subsystem in the serving stack.
//!
//! The five bespoke metrics snapshots (`ServiceMetrics`, `VerifyMetrics`,
//! `RouteMetrics`, `SessionMetrics`, `FleetMetrics`) each grew their own ad-hoc
//! counters and `render()` blocks; none of them could answer a latency
//! *distribution* question (p50/p90/p99), and none of them could be asked over
//! the wire.  This module is the common substrate underneath them:
//!
//! * **[`MetricsRegistry`]** — a process-wide (or per-fleet-shard) registry of
//!   named metrics.  Registration is idempotent: the same hierarchical name
//!   (`service.repair.queue_wait`, `verify.verdict.latency`,
//!   `route.rung.<n>.cost`, `wire.frame.bytes`, `rt.poll.duration`) always
//!   resolves to the same [`Metric`], so every subsystem can pre-register its
//!   handles at pool start and record with lock-free atomics on the hot path.
//! * **[`Metric`]** — counter, gauge, or histogram.  Histograms bucket values
//!   by `log2` (65 buckets cover the full `u64` range) and track the exact
//!   maximum, so [`MetricSnapshot::percentile`] reports p50/p90/p99 with
//!   bucket-granular error and an exact max.
//! * **[`RegistrySnapshot`]** — a point-in-time, integer-only copy of every
//!   metric, sorted by name.  One snapshot/render/serialize path serves text
//!   exposition ([`RegistrySnapshot::render_text`]), JSON exposition
//!   ([`RegistrySnapshot::render_json`], round-tripped over the wire by the
//!   `Stats` frame) and fleet-wide aggregation ([`RegistrySnapshot::merge`]).
//! * **[`MetricClass`]** — the same deterministic/volatile split the journal
//!   uses.  *Deterministic* metrics derive only from request content (request
//!   counts, rung costs, verdict tallies), so their snapshot bytes are
//!   identical at any worker/driver/shard count, warm or cold — pinned by
//!   `tests/telemetry_determinism.rs` over
//!   [`RegistrySnapshot::deterministic_only`].  *Volatile* metrics carry wall
//!   clocks and cache temperature; they are the profiling signal.
//! * **[`TelemetryHandle`]** — the off-by-default config handle (the
//!   [`crate::TracerHandle`] recipe): every hot-path hook is one branch while
//!   telemetry is off, and `ASSERTSOLVER_TELEMETRY=1` turns it on from the
//!   environment.
//! * **[`CollapsedProfile`]** — a flamegraph-compatible collapsed-stack
//!   profile (`stack;frames value` lines) assembled from stage-timer
//!   histograms; the `svprof` binary renders one for the evaluation pipeline.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::sync::lock_recover;

/// Environment knob enabling telemetry in `assertsolver::EvalConfig` driven
/// runs: `1`/`on`/`true`/`yes` enable, `0`/`off`/`false`/unset disable.
pub const TELEMETRY_ENV: &str = "ASSERTSOLVER_TELEMETRY";

/// Environment variable naming the directory profiled evaluations write
/// collapsed-stack profiles to; unset (the default) disables the write.
pub const PROFILE_DIR_ENV: &str = "ASSERTSOLVER_PROFILE_DIR";

/// Reads the profile-directory override from the environment, if set and
/// non-empty.
pub fn env_profile_dir() -> Option<std::path::PathBuf> {
    std::env::var(PROFILE_DIR_ENV)
        .ok()
        .map(|raw| raw.trim().to_string())
        .filter(|raw| !raw.is_empty())
        .map(std::path::PathBuf::from)
}

/// Number of log-2 histogram buckets: bucket 0 holds zeros, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, and bucket 64 holds `>= 2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Reads [`TELEMETRY_ENV`], warning (once per call) on unrecognized values
/// instead of silently ignoring them.
pub fn env_telemetry() -> bool {
    match std::env::var(TELEMETRY_ENV) {
        Err(_) => false,
        Ok(raw) => {
            let value = raw.trim();
            if value.is_empty() {
                return false;
            }
            if ["1", "on", "true", "yes"]
                .iter()
                .any(|v| value.eq_ignore_ascii_case(v))
            {
                return true;
            }
            if !["0", "off", "false", "no"]
                .iter()
                .any(|v| value.eq_ignore_ascii_case(v))
            {
                eprintln!("warning: {TELEMETRY_ENV}={value:?} is not on/off; telemetry stays off");
            }
            false
        }
    }
}

/// `numerator / denominator` with the 0-request rate defined as 0 — never
/// `NaN`.  Every rate computed from registry counters goes through this.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Whether a metric participates in the byte-determinism contract.
///
/// Mirrors the journal's event split: deterministic metrics derive only from
/// request content and are byte-identical at any worker/driver/shard count;
/// volatile metrics carry wall clocks, cache temperature, or scheduling
/// artifacts and are excluded from determinism comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricClass {
    /// Pure function of `(model, corpus, protocol)` — safe to byte-compare.
    Deterministic,
    /// Wall-clock / cache-temperature / interleaving dependent.
    Volatile,
}

impl MetricClass {
    /// Short tag used in the text exposition (`det` / `vol`).
    pub fn tag(&self) -> &'static str {
        match self {
            MetricClass::Deterministic => "det",
            MetricClass::Volatile => "vol",
        }
    }
}

/// The shape of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic count of events.
    Counter,
    /// A settable level (queue depth, in-flight sessions).
    Gauge,
    /// Log-2-bucketed distribution with exact max (latencies, sizes).
    Histogram,
}

impl MetricKind {
    /// Short tag used in the text exposition.
    pub fn tag(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Bucket index for a histogram observation: 0 for 0, else `64 - leading_zeros`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index` (`2^index - 1`; `u64::MAX` for the
/// top bucket, 0 for the zero bucket).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The shared quantile kernel over log-2 bucket counts: the inclusive upper
/// bound of the bucket where the cumulative count crosses
/// `ceil(q * count)` (at least 1), clamped to the exact recorded `max`.
///
/// ## Error bound
///
/// Resolution is **bucket-granular**.  Bucket `i` holds observations in
/// `[2^(i-1), 2^i)` and the kernel reports its inclusive upper bound
/// `2^i - 1`, so for an actual quantile value `a` the reported value `r`
/// satisfies `a <= r <= 2a - 1`: the result **never under-reports**, and the
/// worst-case relative error `(r - a) / a` is `(2^(i-1) - 1) / 2^(i-1)`,
/// approaching (but never reaching) **100%** as `a` sits on a bucket's lower
/// edge.  Two exact anchors tighten this in practice: the zero bucket reports
/// exactly 0, and any quantile landing in the top populated bucket is clamped
/// to the exact `max`.  `tests::percentile_error_bound_is_pinned` pins the
/// worst case for p50/p90/p99 across bucket boundaries.
pub fn percentile_from_buckets(count: u64, max: u64, buckets: &[u64], q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (index, bucket) in buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= rank {
            return bucket_upper_bound(index).min(max);
        }
    }
    max
}

/// One registered metric: lock-free atomics written by the hot path.
///
/// All three kinds share the storage; the [`MetricKind`] decides which fields
/// are meaningful (`count`/`sum`/`max`/`buckets` for histograms, `value` for
/// counters and gauges).
#[derive(Debug)]
pub struct Metric {
    name: String,
    class: MetricClass,
    kind: MetricKind,
    value: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Metric {
    fn new(name: String, class: MetricClass, kind: MetricKind) -> Self {
        let buckets = match kind {
            MetricKind::Histogram => (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            _ => Vec::new(),
        };
        Self {
            name,
            class,
            kind,
            value: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets,
        }
    }

    /// The metric's hierarchical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric's determinism class.
    pub fn class(&self) -> MetricClass {
        self.class
    }

    /// The metric's kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Adds to a counter (also accepted on gauges, where it raises the level).
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sets a gauge level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Records one histogram observation.
    pub fn observe(&self, value: u64) {
        if self.buckets.is_empty() {
            // A counter/gauge asked to observe: fold into the value so the
            // data is never silently dropped.
            self.add(value);
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration observation in nanoseconds.
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of this metric.
    pub fn snapshot(&self) -> MetricSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        MetricSnapshot {
            name: self.name.clone(),
            class: self.class,
            kind: self.kind,
            value: self.value.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The metric registry: hierarchical names to shared [`Metric`] handles.
///
/// Registration takes a lock; recording does not (callers hold the returned
/// `Arc<Metric>` and write atomics).  Registering an existing name returns the
/// existing metric, so two subsystems naming the same series share it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Arc<Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, class: MetricClass, kind: MetricKind) -> Arc<Metric> {
        let mut metrics = lock_recover(&self.metrics);
        Arc::clone(
            metrics
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Metric::new(name.to_string(), class, kind))),
        )
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, class: MetricClass) -> Arc<Metric> {
        self.register(name, class, MetricKind::Counter)
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, class: MetricClass) -> Arc<Metric> {
        self.register(name, class, MetricKind::Gauge)
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, class: MetricClass) -> Arc<Metric> {
        self.register(name, class, MetricKind::Histogram)
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = lock_recover(&self.metrics);
        RegistrySnapshot {
            metrics: metrics.values().map(|m| m.snapshot()).collect(),
        }
    }
}

/// A point-in-time, integer-only copy of one metric.
///
/// Every numeric field is a `u64` — no floats cross the wire, so the JSON
/// exposition round-trips exactly through the vendored `serde_json`.  Rates
/// and means are computed at render time via [`ratio`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Hierarchical metric name (`service.repair.queue_wait`).
    pub name: String,
    /// Determinism class.
    pub class: MetricClass,
    /// Metric shape.
    pub kind: MetricKind,
    /// Counter/gauge value (0 for histograms).
    pub value: u64,
    /// Histogram observation count.
    pub count: u64,
    /// Histogram observation sum.
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Log-2 bucket counts, trailing zero buckets trimmed.
    pub buckets: Vec<u64>,
}

impl MetricSnapshot {
    /// Mean observation (0 when the histogram is empty).
    pub fn mean(&self) -> f64 {
        ratio(self.sum, self.count)
    }

    /// The `q`-quantile (`0.0..=1.0`) with **bucket-granular** resolution: the
    /// inclusive upper bound of the bucket where the cumulative count crosses
    /// `q * count`, clamped to the exact recorded max (so the top of the
    /// distribution reports exactly).
    ///
    /// The reported value never under-reports the true quantile, and
    /// over-reports by strictly less than 2× — see [`percentile_from_buckets`]
    /// for the precise bound and the test pinning it.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from_buckets(self.count, self.max, &self.buckets, q)
    }

    fn render_line(&self) -> String {
        match self.kind {
            MetricKind::Counter | MetricKind::Gauge => format!(
                "{} class={} kind={} value={}",
                self.name,
                self.class.tag(),
                self.kind.tag(),
                self.value
            ),
            MetricKind::Histogram => format!(
                "{} class={} kind={} count={} sum={} max={} p50={} p90={} p99={}",
                self.name,
                self.class.tag(),
                self.kind.tag(),
                self.count,
                self.sum,
                self.max,
                self.percentile(0.50),
                self.percentile(0.90),
                self.percentile(0.99),
            ),
        }
    }

    fn merge_from(&mut self, other: &MetricSnapshot) {
        match self.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                // Gauges sum across shards: fleet queue depth is the sum of
                // per-shard depths, not their max.
                self.value = self.value.saturating_add(other.value);
            }
            MetricKind::Histogram => {
                self.count = self.count.saturating_add(other.count);
                self.sum = self.sum.saturating_add(other.sum);
                self.max = self.max.max(other.max);
                if self.buckets.len() < other.buckets.len() {
                    self.buckets.resize(other.buckets.len(), 0);
                }
                for (index, bucket) in other.buckets.iter().enumerate() {
                    self.buckets[index] = self.buckets[index].saturating_add(*bucket);
                }
            }
        }
    }
}

/// A sorted, mergeable collection of [`MetricSnapshot`]s — the unit of
/// exposition, wire transfer (the `Stats` frame) and fleet aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Snapshots sorted by metric name (the registry's BTreeMap order).
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|index| &self.metrics[index])
    }

    /// Inserts (or merges into) a metric, keeping the name order.
    pub fn upsert(&mut self, snapshot: MetricSnapshot) {
        match self
            .metrics
            .binary_search_by(|m| m.name.as_str().cmp(&snapshot.name))
        {
            Ok(index) => self.metrics[index].merge_from(&snapshot),
            Err(index) => self.metrics.insert(index, snapshot),
        }
    }

    /// Convenience: upserts a counter reading (used by the bespoke metrics
    /// structs when they export their fields into registry form).
    pub fn upsert_counter(&mut self, name: &str, class: MetricClass, value: u64) {
        self.upsert(MetricSnapshot {
            name: name.to_string(),
            class,
            kind: MetricKind::Counter,
            value,
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
        });
    }

    /// Convenience: upserts a gauge reading.
    pub fn upsert_gauge(&mut self, name: &str, class: MetricClass, value: u64) {
        self.upsert(MetricSnapshot {
            name: name.to_string(),
            class,
            kind: MetricKind::Gauge,
            value,
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
        });
    }

    /// Merges another snapshot in: same-name series combine (counters and
    /// histograms sum, gauges sum, maxes take the max), new names insert in
    /// order.  Fleet aggregation is a fold over per-shard snapshots.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for metric in &other.metrics {
            self.upsert(metric.clone());
        }
    }

    /// The deterministic-class subset — the bytes the determinism tests
    /// compare across worker/driver/shard counts and transports.
    pub fn deterministic_only(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|m| m.class == MetricClass::Deterministic)
                .cloned()
                .collect(),
        }
    }

    /// Byte-stable text exposition: one line per metric, sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for metric in &self.metrics {
            out.push_str(&metric.render_line());
            out.push('\n');
        }
        out
    }

    /// JSON exposition (the wire form of the `Stats` frame reply).  Field
    /// order is fixed by the struct and metric order by name, so the bytes
    /// are stable for a given set of readings.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("registry snapshots always serialize")
    }

    /// Parses the JSON exposition back (the client side of the `Stats` frame).
    pub fn parse_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|err| format!("malformed registry snapshot: {err}"))
    }
}

/// The config-threaded telemetry switch: `off()` by default, one branch per
/// hot-path hook, pointer-identity equality (two handles are equal when they
/// share a registry — the [`crate::TracerHandle`] recipe).
#[derive(Clone, Default)]
pub struct TelemetryHandle(Option<Arc<MetricsRegistry>>);

impl TelemetryHandle {
    /// The disabled handle: every hook short-circuits on one branch.
    pub fn off() -> Self {
        Self(None)
    }

    /// A handle recording into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self(Some(registry))
    }

    /// A handle honoring [`TELEMETRY_ENV`]: a fresh registry when the knob is
    /// on, `off()` otherwise.
    pub fn from_env() -> Self {
        if env_telemetry() {
            Self::new(Arc::new(MetricsRegistry::new()))
        } else {
            Self::off()
        }
    }

    /// Whether telemetry is enabled.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.0.as_ref()
    }

    /// Registers a counter when enabled.
    pub fn counter(&self, name: &str, class: MetricClass) -> Option<Arc<Metric>> {
        self.0.as_ref().map(|r| r.counter(name, class))
    }

    /// Registers a gauge when enabled.
    pub fn gauge(&self, name: &str, class: MetricClass) -> Option<Arc<Metric>> {
        self.0.as_ref().map(|r| r.gauge(name, class))
    }

    /// Registers a histogram when enabled.
    pub fn histogram(&self, name: &str, class: MetricClass) -> Option<Arc<Metric>> {
        self.0.as_ref().map(|r| r.histogram(name, class))
    }

    /// A snapshot of the backing registry (empty when off).
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.0.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "TelemetryHandle(on)"
        } else {
            "TelemetryHandle(off)"
        })
    }
}

impl PartialEq for TelemetryHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                std::ptr::eq(Arc::as_ptr(a) as *const (), Arc::as_ptr(b) as *const ())
            }
            _ => false,
        }
    }
}

impl Eq for TelemetryHandle {}

/// A flamegraph-compatible collapsed-stack profile: `frame;frame value`
/// lines, one per stack, values in nanoseconds, sorted by stack for
/// byte-stable rendering.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollapsedProfile {
    frames: BTreeMap<String, u64>,
}

impl CollapsedProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` to the `stack` frame (frames merge by stack name).
    pub fn record(&mut self, stack: &str, nanos: u64) {
        let slot = self.frames.entry(stack.to_string()).or_insert(0);
        *slot = slot.saturating_add(nanos);
    }

    /// The frames in render order.
    pub fn frames(&self) -> impl Iterator<Item = (&str, u64)> {
        self.frames
            .iter()
            .map(|(stack, value)| (stack.as_str(), *value))
    }

    /// Sum of every frame value — the attributed portion of the profile.
    pub fn total(&self) -> u64 {
        self.frames
            .values()
            .fold(0u64, |acc, v| acc.saturating_add(*v))
    }

    /// Renders the collapsed-stack text (`stack value` per line; the format
    /// `flamegraph.pl` and `inferno` consume).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, value) in &self.frames {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses collapsed-stack text back, rejecting malformed lines — the
    /// validation `svprof` and CI run over emitted profiles.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut profile = Self::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (stack, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no value field: {line:?}", number + 1))?;
            if stack.is_empty() || stack.split(';').any(|frame| frame.is_empty()) {
                return Err(format!(
                    "line {}: empty frame in stack {stack:?}",
                    number + 1
                ));
            }
            let value: u64 = value
                .parse()
                .map_err(|_| format!("line {}: bad value {value:?}", number + 1))?;
            profile.record(stack, value);
        }
        Ok(profile)
    }
}

/// Environment knob setting the time-window bucket width in logical ticks
/// (one tick per recorded service event); invalid or zero values fall back to
/// [`DEFAULT_WINDOW_WIDTH`] with a warning.
pub const WINDOW_WIDTH_ENV: &str = "ASSERTSOLVER_WINDOW_WIDTH";

/// Default window bucket width in logical ticks.
pub const DEFAULT_WINDOW_WIDTH: u64 = 64;

/// How many window buckets the ring retains (the observable horizon is
/// `WINDOW_RING_BUCKETS * width` ticks).
pub const WINDOW_RING_BUCKETS: usize = 8;

/// Reads [`WINDOW_WIDTH_ENV`], clamping to at least 1 and warning on
/// unparseable values instead of silently ignoring them.
pub fn env_window_width() -> u64 {
    match std::env::var(WINDOW_WIDTH_ENV) {
        Err(_) => DEFAULT_WINDOW_WIDTH,
        Ok(raw) => {
            let value = raw.trim();
            if value.is_empty() {
                return DEFAULT_WINDOW_WIDTH;
            }
            match value.parse::<u64>() {
                Ok(width) if width > 0 => width,
                _ => {
                    eprintln!(
                        "warning: {WINDOW_WIDTH_ENV}={value:?} is not a positive tick count; \
                         using {DEFAULT_WINDOW_WIDTH}"
                    );
                    DEFAULT_WINDOW_WIDTH
                }
            }
        }
    }
}

/// One bucket of a time window: event tallies plus a log-2 latency histogram
/// covering `[start_tick, start_tick + width)` logical ticks.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowBucketSnapshot {
    /// First logical tick this bucket covers.
    pub start_tick: u64,
    /// Requests admitted during the bucket.
    pub submitted: u64,
    /// Requests completed during the bucket.
    pub completed: u64,
    /// Requests shed by admission control during the bucket.
    pub shed: u64,
    /// Latency observations recorded during the bucket.
    pub count: u64,
    /// Sum of latency observations (nanoseconds).
    pub sum: u64,
    /// Exact maximum latency observation (nanoseconds).
    pub max: u64,
    /// Log-2 latency bucket counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl WindowBucketSnapshot {
    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        let index = bucket_index(value);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
    }

    /// The `q`-quantile of this bucket's latency observations; same
    /// bucket-granular error bound as [`percentile_from_buckets`].
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from_buckets(self.count, self.max, &self.buckets, q)
    }
}

/// A point-in-time copy of the ring: the last [`WINDOW_RING_BUCKETS`] windows,
/// oldest first, plus the live logical clock and in-flight gauge.
///
/// The window plane is a **volatile** surface: which bucket an event lands in
/// depends on completion interleaving, and `wall_unix_ms` is a wall clock by
/// definition — windows exist for live watching (`svtop`), never for
/// byte-determinism comparisons (the deterministic registry subset serves
/// those).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Bucket width in logical ticks.
    pub width: u64,
    /// The logical clock at snapshot time (events recorded so far).
    pub tick: u64,
    /// Requests in flight at snapshot time.
    pub in_flight: u64,
    /// Wall-clock annotation (milliseconds since the unix epoch) — volatile,
    /// for `svtop` rate estimation only.
    pub wall_unix_ms: u64,
    /// The retained buckets, oldest first; the last entry is still filling.
    pub buckets: Vec<WindowBucketSnapshot>,
}

impl WindowSnapshot {
    /// Folds every retained bucket into one summary bucket (rates and
    /// percentiles over the whole observable horizon).
    pub fn totals(&self) -> WindowBucketSnapshot {
        let mut total = WindowBucketSnapshot::default();
        for bucket in &self.buckets {
            total.submitted += bucket.submitted;
            total.completed += bucket.completed;
            total.shed += bucket.shed;
            total.count += bucket.count;
            total.sum = total.sum.saturating_add(bucket.sum);
            total.max = total.max.max(bucket.max);
            if total.buckets.len() < bucket.buckets.len() {
                total.buckets.resize(bucket.buckets.len(), 0);
            }
            for (index, count) in bucket.buckets.iter().enumerate() {
                total.buckets[index] += count;
            }
        }
        total
    }

    /// The `q`-quantile of latency over the whole retained horizon.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.totals();
        percentile_from_buckets(total.count, total.max, &total.buckets, q)
    }

    /// JSON exposition (the wire form of the `StatsWindowReply` frame).
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("window snapshots always serialize")
    }

    /// Parses the JSON exposition back.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|err| format!("malformed window snapshot: {err}"))
    }
}

/// Fixed-width ring-buffer time windows over a service's logical clock.
///
/// Every recorded event advances the clock by one tick; buckets cover `width`
/// ticks each and the ring retains the last [`WINDOW_RING_BUCKETS`] of them,
/// so rates and percentiles exist *over time* instead of only cumulatively.
/// Logical ticks (not wall clocks) drive bucket rotation, which keeps the
/// window plane meaningful under replay and on machines with wildly different
/// speeds; the wall clock appears only as the snapshot's volatile annotation.
#[derive(Debug)]
pub struct TelemetryWindows {
    width: u64,
    state: Mutex<WindowState>,
}

#[derive(Debug)]
struct WindowState {
    tick: u64,
    ring: std::collections::VecDeque<WindowBucketSnapshot>,
}

impl TelemetryWindows {
    /// A ring with `width` logical ticks per bucket (clamped to at least 1).
    pub fn new(width: u64) -> Self {
        let mut ring = std::collections::VecDeque::with_capacity(WINDOW_RING_BUCKETS);
        ring.push_back(WindowBucketSnapshot::default());
        Self {
            width: width.max(1),
            state: Mutex::new(WindowState { tick: 0, ring }),
        }
    }

    /// A ring honoring [`WINDOW_WIDTH_ENV`].
    pub fn from_env() -> Self {
        Self::new(env_window_width())
    }

    /// The bucket width in logical ticks.
    pub fn width(&self) -> u64 {
        self.width
    }

    fn advance<'a>(&self, state: &'a mut WindowState) -> &'a mut WindowBucketSnapshot {
        // The event lands at the *current* tick (so the first `width` events
        // fill the first bucket exactly); the clock then advances past it.
        let bucket_start = (state.tick / self.width) * self.width;
        state.tick += 1;
        let current_start = state.ring.back().map(|b| b.start_tick).unwrap_or(0);
        if bucket_start > current_start {
            state.ring.push_back(WindowBucketSnapshot {
                start_tick: bucket_start,
                ..WindowBucketSnapshot::default()
            });
            while state.ring.len() > WINDOW_RING_BUCKETS {
                state.ring.pop_front();
            }
        }
        state.ring.back_mut().expect("ring is never empty")
    }

    /// Records one admitted request.
    pub fn record_submit(&self) {
        let mut state = lock_recover(&self.state);
        self.advance(&mut state).submitted += 1;
    }

    /// Records one completed request with its service latency (nanoseconds).
    pub fn record_complete(&self, latency_ns: u64) {
        let mut state = lock_recover(&self.state);
        let bucket = self.advance(&mut state);
        bucket.completed += 1;
        bucket.observe(latency_ns);
    }

    /// Records one shed request.
    pub fn record_shed(&self) {
        let mut state = lock_recover(&self.state);
        self.advance(&mut state).shed += 1;
    }

    /// A point-in-time copy of the ring; `in_flight` is the caller's live
    /// gauge (the windows don't track it themselves).
    pub fn snapshot(&self, in_flight: u64) -> WindowSnapshot {
        let state = lock_recover(&self.state);
        let wall_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        WindowSnapshot {
            width: self.width,
            tick: state.tick,
            in_flight,
            wall_unix_ms,
            buckets: state.ring.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_defines_zero_over_zero_as_zero() {
        assert_eq!(ratio(0, 0), 0.0);
        assert!(!ratio(0, 0).is_nan());
        assert_eq!(ratio(3, 4), 0.75);
    }

    #[test]
    fn histogram_buckets_by_log2_and_tracks_exact_max() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("t.latency", MetricClass::Volatile);
        for value in [0u64, 1, 2, 3, 7, 8, 1000, 1_000_000] {
            hist.observe(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.max, 1_000_000);
        assert_eq!(snap.sum, 1_001_021);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 7 → 3; 8 → 4; 1000 → 10.
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[3], 1);
        assert_eq!(snap.buckets[4], 1);
        assert_eq!(snap.buckets[10], 1);
        // p99 lands in the top populated bucket and reports the exact max.
        assert_eq!(snap.percentile(0.99), 1_000_000);
        // p50 (4th of 8 observations) lands in the [2,3] bucket.
        assert_eq!(snap.percentile(0.50), 3);
        assert_eq!(snap.percentile(0.0), 0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("t.empty", MetricClass::Volatile);
        let snap = hist.snapshot();
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(!snap.mean().is_nan());
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("shared.count", MetricClass::Deterministic);
        let b = registry.counter("shared.count", MetricClass::Deterministic);
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().get("shared.count").unwrap().value, 3);
        assert_eq!(registry.snapshot().len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_render_is_byte_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last", MetricClass::Volatile).inc();
        registry
            .counter("a.first", MetricClass::Deterministic)
            .inc();
        registry
            .histogram("m.middle", MetricClass::Volatile)
            .observe(5);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        assert_eq!(snap.render_text(), registry.snapshot().render_text());
        assert!(snap.render_text().starts_with("a.first class=det"));
    }

    #[test]
    fn deterministic_only_filters_volatile_series() {
        let registry = MetricsRegistry::new();
        registry
            .counter("det.count", MetricClass::Deterministic)
            .inc();
        registry
            .histogram("vol.latency", MetricClass::Volatile)
            .observe(100);
        let det = registry.snapshot().deterministic_only();
        assert_eq!(det.len(), 1);
        assert_eq!(det.metrics[0].name, "det.count");
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_the_max() {
        let a = MetricsRegistry::new();
        a.counter("c", MetricClass::Deterministic).add(3);
        a.histogram("h", MetricClass::Volatile).observe(10);
        let b = MetricsRegistry::new();
        b.counter("c", MetricClass::Deterministic).add(4);
        b.histogram("h", MetricClass::Volatile).observe(1000);
        b.counter("only_b", MetricClass::Volatile).inc();
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.get("c").unwrap().value, 7);
        let h = merged.get("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
        assert_eq!(merged.get("only_b").unwrap().value, 1);
        // Merge keeps name order.
        let names: Vec<&str> = merged.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["c", "h", "only_b"]);
    }

    #[test]
    fn json_exposition_round_trips() {
        let registry = MetricsRegistry::new();
        registry.counter("a", MetricClass::Deterministic).add(7);
        registry
            .histogram("b.lat", MetricClass::Volatile)
            .observe(123456);
        registry.gauge("c.depth", MetricClass::Volatile).set(4);
        let snap = registry.snapshot();
        let parsed = RegistrySnapshot::parse_json(&snap.render_json()).expect("round trip");
        assert_eq!(parsed, snap);
        assert!(RegistrySnapshot::parse_json("{nonsense").is_err());
    }

    #[test]
    fn telemetry_handle_follows_the_tracer_recipe() {
        let off = TelemetryHandle::off();
        assert!(!off.is_on());
        assert_eq!(off, TelemetryHandle::off());
        assert_eq!(format!("{off:?}"), "TelemetryHandle(off)");
        let registry = Arc::new(MetricsRegistry::new());
        let on = TelemetryHandle::new(Arc::clone(&registry));
        assert!(on.is_on());
        assert_eq!(on, on.clone());
        assert_ne!(on, TelemetryHandle::new(Arc::new(MetricsRegistry::new())));
        assert_ne!(on, off);
        assert_eq!(format!("{on:?}"), "TelemetryHandle(on)");
        // Recording through the handle lands in the shared registry.
        on.counter("x", MetricClass::Deterministic).unwrap().inc();
        assert_eq!(registry.snapshot().get("x").unwrap().value, 1);
        assert!(off.counter("x", MetricClass::Deterministic).is_none());
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn collapsed_profile_renders_and_parses() {
        let mut profile = CollapsedProfile::new();
        profile.record("evaluate;sessions;solve", 500);
        profile.record("evaluate;setup", 100);
        profile.record("evaluate;sessions;solve", 250);
        let text = profile.render();
        assert_eq!(text, "evaluate;sessions;solve 750\nevaluate;setup 100\n");
        let parsed = CollapsedProfile::parse(&text).expect("parse back");
        assert_eq!(parsed, profile);
        assert_eq!(parsed.total(), 850);
        assert!(CollapsedProfile::parse("no-value-line\n").is_err());
        assert!(CollapsedProfile::parse("a;;b 5\n").is_err());
        assert!(CollapsedProfile::parse("a;b not_a_number\n").is_err());
    }

    #[test]
    fn env_knob_parses_loosely_and_defaults_off() {
        std::env::remove_var(TELEMETRY_ENV);
        assert!(!env_telemetry());
        std::env::set_var(TELEMETRY_ENV, "1");
        assert!(env_telemetry());
        std::env::set_var(TELEMETRY_ENV, " ON ");
        assert!(env_telemetry());
        std::env::set_var(TELEMETRY_ENV, "off");
        assert!(!env_telemetry());
        std::env::set_var(TELEMETRY_ENV, "maybe");
        assert!(!env_telemetry());
        std::env::remove_var(TELEMETRY_ENV);
        assert!(TelemetryHandle::from_env() == TelemetryHandle::off());
        std::env::set_var(TELEMETRY_ENV, "yes");
        assert!(TelemetryHandle::from_env().is_on());
        std::env::remove_var(TELEMETRY_ENV);
    }

    #[test]
    fn bucket_bounds_cover_the_u64_range() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(0), 0);
    }

    /// Pins the documented worst-case relative error of
    /// [`percentile_from_buckets`]: observations planted exactly on bucket
    /// lower edges (`2^k`, the worst position) must report p50/p90/p99 that
    /// never under-report and over-report by strictly less than 2×.
    #[test]
    fn percentile_error_bound_is_pinned() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("t.bound", MetricClass::Volatile);
        // 100 observations spread across bucket boundaries: 2^4..2^13, each
        // planted at its bucket's lower edge where relative error peaks.
        let mut observations = Vec::new();
        for k in 4u32..14 {
            for _ in 0..10 {
                observations.push(1u64 << k);
            }
        }
        for &value in &observations {
            hist.observe(value);
        }
        observations.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * observations.len() as f64).ceil().max(1.0)) as usize;
            let actual = observations[rank - 1];
            let reported = snap.percentile(q);
            assert!(
                reported >= actual,
                "p{q}: reported {reported} under-reports actual {actual}"
            );
            let relative_error = (reported - actual) as f64 / actual as f64;
            assert!(
                relative_error < 1.0,
                "p{q}: relative error {relative_error} breaches the <100% bound \
                 (reported {reported}, actual {actual})"
            );
            // Worst case is exactly (2^k - 1)/2^k for a lower-edge value not
            // clamped by the max: reported == 2 * actual - 1.
            if reported != snap.max {
                assert_eq!(reported, 2 * actual - 1, "p{q} reports the bucket bound");
            }
        }
        // The exact anchors: zeros report exactly, the top reports the max.
        assert_eq!(percentile_from_buckets(0, 0, &[], 0.5), 0);
        assert_eq!(snap.percentile(1.0), snap.max);
    }

    #[test]
    fn windows_rotate_by_logical_ticks_and_bound_the_ring() {
        let windows = TelemetryWindows::new(4);
        // 4 events per bucket; drive 10 buckets' worth so the ring wraps.
        for _ in 0..(4 * (WINDOW_RING_BUCKETS as u64 + 2)) {
            windows.record_submit();
        }
        let snap = windows.snapshot(3);
        assert_eq!(snap.width, 4);
        assert_eq!(snap.tick, 4 * (WINDOW_RING_BUCKETS as u64 + 2));
        assert_eq!(snap.in_flight, 3);
        assert!(snap.buckets.len() <= WINDOW_RING_BUCKETS);
        // Buckets are contiguous, oldest first, each 4 ticks wide.
        for pair in snap.buckets.windows(2) {
            assert_eq!(pair[1].start_tick, pair[0].start_tick + 4);
        }
        // Every full bucket saw exactly `width` submissions.
        let full: Vec<_> = snap
            .buckets
            .iter()
            .filter(|b| b.start_tick + 4 <= snap.tick)
            .collect();
        assert!(full.iter().all(|b| b.submitted == 4));
        assert_eq!(
            snap.totals().submitted,
            snap.buckets.iter().map(|b| b.submitted).sum()
        );
    }

    #[test]
    fn window_latency_percentiles_read_over_the_horizon() {
        let windows = TelemetryWindows::new(8);
        for i in 0..16u64 {
            windows.record_submit();
            windows.record_complete(if i < 15 { 100 } else { 1_000_000 });
        }
        windows.record_shed();
        let snap = windows.snapshot(0);
        let totals = snap.totals();
        assert_eq!(totals.completed, 16);
        assert_eq!(totals.shed, 1);
        assert_eq!(totals.max, 1_000_000);
        assert!(snap.percentile(0.50) >= 100);
        assert!(snap.percentile(0.50) < 200, "p50 stays in the 100ns bucket");
        assert_eq!(snap.percentile(1.0), 1_000_000);
    }

    #[test]
    fn window_snapshot_json_round_trips() {
        let windows = TelemetryWindows::new(2);
        windows.record_submit();
        windows.record_complete(12_345);
        let snap = windows.snapshot(1);
        let parsed = WindowSnapshot::parse_json(&snap.render_json()).expect("round trip");
        assert_eq!(parsed, snap);
        assert!(WindowSnapshot::parse_json("{nope").is_err());
    }

    #[test]
    fn window_width_env_knob_clamps_and_warns() {
        std::env::remove_var(WINDOW_WIDTH_ENV);
        assert_eq!(env_window_width(), DEFAULT_WINDOW_WIDTH);
        std::env::set_var(WINDOW_WIDTH_ENV, "16");
        assert_eq!(env_window_width(), 16);
        std::env::set_var(WINDOW_WIDTH_ENV, "0");
        assert_eq!(env_window_width(), DEFAULT_WINDOW_WIDTH);
        std::env::set_var(WINDOW_WIDTH_ENV, "lots");
        assert_eq!(env_window_width(), DEFAULT_WINDOW_WIDTH);
        std::env::remove_var(WINDOW_WIDTH_ENV);
        assert_eq!(TelemetryWindows::from_env().width(), DEFAULT_WINDOW_WIDTH);
    }
}
