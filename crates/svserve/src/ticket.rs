//! Shared submit/await ticket used by both worker pools.
//!
//! A ticket is one slot guarded by a mutex plus a condvar.  The repair pool and the
//! verify pool each wrap it in a typed handle ([`crate::RepairTicket`],
//! [`crate::VerifyTicket`]); the slot type is the pool's outcome struct.

use std::sync::{Arc, Condvar, Mutex};

/// One-shot rendezvous between a submitter and the worker that serves its job.
pub(crate) struct TicketState<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> TicketState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Deposits the outcome and wakes every waiter.
    pub(crate) fn fulfill(&self, outcome: T) {
        *self.slot.lock().expect("ticket lock") = Some(outcome);
        self.ready.notify_all();
    }

    /// Blocks until the outcome arrives.
    pub(crate) fn wait(&self) -> T {
        let mut slot = self.slot.lock().expect("ticket lock");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.ready.wait(slot).expect("ticket lock");
        }
    }

    /// Non-blocking poll.
    pub(crate) fn try_take(&self) -> Option<T> {
        self.slot.lock().expect("ticket lock").take()
    }
}
