//! Shared submit/await ticket used by both worker pools and the router.
//!
//! A ticket is one slot guarded by a mutex, awaitable two ways:
//!
//! * **Blocking** — [`TicketState::wait`] parks the calling OS thread on a
//!   condvar until the outcome arrives (the original shape; one thread per
//!   waiter).
//! * **Async** — [`TicketState::poll_take`] registers the task's [`Waker`];
//!   [`TicketState::fulfill`] wakes it, so thousands of waiting sessions cost a
//!   stored waker each instead of a parked thread.  The typed handles
//!   ([`crate::RepairTicket`], [`crate::VerifyTicket`], [`crate::RouteTicket`])
//!   implement `Future` on top of this.
//!
//! A fulfilled ticket whose waiter has been dropped (a cancelled or expired
//! session) is simply a slot nobody takes: the stored waker, if any, wakes a
//! task whose future is already gone, which the runtime treats as a no-op.

use crate::sync::lock_recover;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Poll, Waker};

struct Inner<T> {
    slot: Option<T>,
    waker: Option<Waker>,
}

/// One-shot rendezvous between a submitter and the worker that serves its job.
pub(crate) struct TicketState<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> TicketState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner {
                slot: None,
                waker: None,
            }),
            ready: Condvar::new(),
        })
    }

    /// Deposits the outcome, wakes the registered async waiter (if any) and
    /// every blocking waiter.
    pub(crate) fn fulfill(&self, outcome: T) {
        let waker = {
            let mut inner = lock_recover(&self.inner);
            inner.slot = Some(outcome);
            inner.waker.take()
        };
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Blocks until the outcome arrives (the synchronous shim).
    pub(crate) fn wait(&self) -> T {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(outcome) = inner.slot.take() {
                return outcome;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking poll.
    pub(crate) fn try_take(&self) -> Option<T> {
        lock_recover(&self.inner).slot.take()
    }

    /// Async poll: takes the outcome if it is there, otherwise stores the
    /// task's waker (replacing any previous one — a ticket has one consumer)
    /// for [`TicketState::fulfill`] to fire.
    pub(crate) fn poll_take(&self, waker: &Waker) -> Poll<T> {
        let mut inner = lock_recover(&self.inner);
        match inner.slot.take() {
            Some(outcome) => Poll::Ready(outcome),
            None => {
                match &mut inner.waker {
                    Some(existing) if existing.will_wake(waker) => {}
                    registered => *registered = Some(waker.clone()),
                }
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::Context;

    #[test]
    fn fulfill_then_wait_round_trips() {
        let state = TicketState::new();
        state.fulfill(41u32);
        assert_eq!(state.wait(), 41);
        assert_eq!(state.try_take(), None);
    }

    #[test]
    fn poll_take_registers_a_waker_and_fulfill_fires_it() {
        struct TicketFuture(Arc<TicketState<u32>>);
        impl Future for TicketFuture {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                self.0.poll_take(cx.waker())
            }
        }

        let state = TicketState::new();
        let fulfiller = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                state.fulfill(9u32);
            })
        };
        assert_eq!(crate::rt::block_on(TicketFuture(Arc::clone(&state))), 9);
        fulfiller.join().unwrap();
    }

    #[test]
    fn fulfilling_a_ticket_with_a_dropped_waiter_is_a_no_op() {
        let state = TicketState::new();
        // No waiter ever registered; fulfilling must not panic or leak a wake.
        state.fulfill(1u32);
        assert_eq!(state.try_take(), Some(1));
    }

    #[test]
    fn a_poisoned_ticket_still_round_trips() {
        // Regression: a panic while the ticket mutex was held (e.g. a panicking
        // waker clone) used to turn every later fulfill/wait on the same ticket
        // into a `PoisonError` panic on an unrelated thread.
        let state: Arc<TicketState<u32>> = TicketState::new();
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the ticket lock");
        })
        .join();
        assert!(state.inner.lock().is_err(), "the ticket lock is poisoned");
        state.fulfill(5u32);
        assert_eq!(state.wait(), 5);
    }
}
