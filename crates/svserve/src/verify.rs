//! The verification offload pool: parallel, cached, deterministic verdicts.
//!
//! `assertsolver::evaluate_model` used to run every bounded-checker verdict serially
//! on the caller thread, and ROADMAP profiling showed that loop dominating evaluation
//! wall-clock.  This module is the second half of the two-pool serving architecture:
//! a sharded worker pool that accepts `(case, candidate response)` jobs, runs a
//! caller-supplied [`ResponseJudge`] on dedicated workers, and returns tickets — the
//! same recipe as the repair pool in [`crate::service`] (bounded queues with
//! backpressure, micro-batched dequeue, panic absorption, content-hash-derived shard
//! placement).
//!
//! Two frontends share one engine (`VerifyCore` + `verify_worker_loop`):
//!
//! * [`VerifyPool`] owns its judge (`Arc<dyn ResponseJudge>`) and keeps a persistent
//!   pool until [`VerifyPool::shutdown`] or drop — reusable across evaluation runs,
//!   so the verdict cache stays warm;
//! * [`verify_scoped`] borrows the judge for the duration of a closure using scoped
//!   threads.
//!
//! ## Determinism
//!
//! Verdicts are pure functions of `(case, response, checker config)` — exactly the
//! content hashed into the [`VerdictKey`] — so the pool introduces no nondeterminism:
//! a job's verdict is the same whether it was computed on worker 0 or worker 7, on a
//! cold cache or a warm one.  Shard placement derives from the key (never arrival
//! order), which keeps per-shard caches disjoint at any worker count.
//!
//! ## Panic absorption
//!
//! A judge that panics must not take its worker down (an unwinding worker would
//! strand every ticket in its shard and poison the pool for later jobs).  The pool
//! catches the panic, serves a *failed* verdict for that candidate, counts it in
//! [`VerifyMetrics::verdict_panics`], and does **not** cache the failure, so a retry
//! reaches the judge again.

use crate::cache::{LruCache, VerdictKey};
use crate::journal::{JournalEvent, TracerHandle};
use crate::metrics::{MetricsRecorder, VerifyMetrics};
use crate::persist::{self, PersistSpec, SnapshotLoad};
use crate::queue::{ServiceClosed, Shard, SubmitError};
use crate::sync::lock_recover;
use crate::telemetry::{Metric, MetricClass, TelemetryHandle};
use crate::ticket::TicketState;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};
use svmodel::Response;

/// Environment variable overriding the default verify worker count
/// (`VerifyConfig::default()`); CI runs the suite at 1 and 4 to exercise both the
/// single-threaded and the parallel verdict paths.
pub const VERIFY_WORKERS_ENV: &str = "ASSERTSOLVER_VERIFY_WORKERS";

/// Reads the verify-worker override from the environment, if set and valid.
///
/// Same policy as [`crate::rt::env_drivers`]: zero or garbage falls back to
/// the default with a one-line warning, and huge values clamp instead of
/// spawning an unbounded number of judge threads.
pub fn env_verify_workers() -> Option<usize> {
    let raw = std::env::var(VERIFY_WORKERS_ENV).ok()?;
    crate::rt::resolve_thread_knob(VERIFY_WORKERS_ENV, &raw)
}

/// Verify-pool tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Worker threads (and queue/cache shards). Clamped to at least 1.
    pub workers: usize,
    /// Bounded depth of each shard queue; submitters block past this (backpressure).
    pub shard_capacity: usize,
    /// Maximum jobs a worker drains per wake-up (micro-batching).
    pub max_batch: usize,
    /// Total verdict-cache entries across all shards.
    pub cache_capacity: usize,
    /// On-disk snapshot of the verdict cache: preloaded at start, written by
    /// [`VerifyPool::flush`] / shutdown / the end of [`verify_scoped`].  `None`
    /// keeps the cache purely in-memory.  See [`crate::persist`] for the format
    /// and invalidation rules.
    pub persist: Option<PersistSpec>,
    /// Journal tracer admit and cache/panic diagnostics are emitted to; off by
    /// default, in which case each instrumented site costs one branch.
    pub tracer: TracerHandle,
    /// Telemetry registry the pool's latency histograms
    /// (`verify.verdict.latency` / `verify.queue_wait`) record into; off by
    /// default, in which case each instrumented site costs one branch.
    pub telemetry: TelemetryHandle,
}

impl Default for VerifyConfig {
    /// Defaults to 4 workers unless [`VERIFY_WORKERS_ENV`] overrides it.  Verdict
    /// jobs are much smaller than repair requests, so queues and caches run deeper
    /// than [`crate::ServiceConfig`]'s.
    fn default() -> Self {
        Self {
            workers: env_verify_workers().unwrap_or(4),
            shard_capacity: 128,
            max_batch: 16,
            cache_capacity: 4096,
            persist: None,
            tracer: TracerHandle::off(),
            telemetry: TelemetryHandle::off(),
        }
    }
}

impl VerifyConfig {
    /// Returns the config with the worker count replaced.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the config with the total cache capacity replaced.
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Returns the config with verdict-cache persistence enabled.
    pub fn with_persist(mut self, persist: PersistSpec) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Returns the config with the journal tracer replaced.
    pub fn with_tracer(mut self, tracer: TracerHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Returns the config with the telemetry handle replaced.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.shard_capacity = self.shard_capacity.max(1);
        self.max_batch = self.max_batch.max(1);
        self.cache_capacity = self.cache_capacity.max(self.workers);
        self
    }
}

/// A constructed-but-unqueued verify job: `(job, target shard, ticket state)`.
type BegunVerifyJob<C> = (VerifyJob<C>, usize, Arc<TicketState<VerdictOutcome>>);

/// Anything that can judge whether a candidate response solves a case.
///
/// Implemented for free by any `Fn(&C, &Response) -> bool + Sync` closure, which is
/// how `assertsolver` plugs `response_is_correct` + `VerifyOracle` in.  Judges must
/// be pure in `(case, response)` — the pool caches and replays their verdicts.
pub trait ResponseJudge<C>: Sync {
    /// Returns `true` when the candidate solves the case.
    fn verdict(&self, case: &C, response: &Response) -> bool;
}

impl<C, F> ResponseJudge<C> for F
where
    F: Fn(&C, &Response) -> bool + Sync,
{
    fn verdict(&self, case: &C, response: &Response) -> bool {
        self(case, response)
    }
}

/// One verdict job: the case, the candidate, and the content key that routes it.
///
/// The pool is generic over the case type, so it cannot compute the key itself; the
/// caller builds it with [`crate::cache::verdict_key`] from the case fingerprint,
/// the response, and the checker-config fingerprint.  Cases are shared (`Arc`) so a
/// corpus entry judged against 20 candidates is not cloned 20 times.
#[derive(Debug, Clone)]
pub struct VerifyRequest<C> {
    /// The case being judged.
    pub case: Arc<C>,
    /// The candidate response.
    pub response: Response,
    /// Content hash of `(case, response, checker config)`.
    pub key: VerdictKey,
}

impl<C> VerifyRequest<C> {
    /// Convenience constructor.
    pub fn new(case: Arc<C>, response: Response, key: VerdictKey) -> Self {
        Self {
            case,
            response,
            key,
        }
    }
}

/// A served verdict: the judgement plus provenance and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictOutcome {
    /// Whether the candidate solves the case.  `false` for candidates whose judge
    /// invocation panicked (see [`VerifyMetrics::verdict_panics`]).
    pub verdict: bool,
    /// Whether the answer came from the verdict cache.
    pub from_cache: bool,
    /// Index of the worker (= shard) that served the job.
    pub worker: usize,
    /// Time the job spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Cache lookup plus (on a miss) judge invocation time.
    pub service_time: Duration,
}

/// Await-handle for a submitted verdict job.
pub struct VerifyTicket {
    state: Arc<TicketState<VerdictOutcome>>,
}

impl VerifyTicket {
    /// Blocks until the verdict has been served.
    pub fn wait(self) -> VerdictOutcome {
        self.state.wait()
    }

    /// Non-blocking poll; returns the outcome once served.
    pub fn try_take(&self) -> Option<VerdictOutcome> {
        self.state.try_take()
    }
}

impl Future for VerifyTicket {
    type Output = VerdictOutcome;

    /// Awaits the verdict without holding a thread: the worker's `fulfill`
    /// wakes the registered task.
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<VerdictOutcome> {
        self.state.poll_take(cx.waker())
    }
}

struct VerifyJob<C> {
    request: VerifyRequest<C>,
    enqueued_at: Instant,
    ticket: Arc<TicketState<VerdictOutcome>>,
}

/// Shared engine state: shard queues, shard verdict caches, metrics, lifecycle flag.
pub(crate) struct VerifyCore<C> {
    config: VerifyConfig,
    shards: Vec<Shard<VerifyJob<C>>>,
    caches: Vec<Mutex<LruCache<VerdictKey, bool>>>,
    metrics: MetricsRecorder,
    timers: VerifyTimers,
    closed: AtomicBool,
    /// Generation of the snapshot this core preloaded (0 when cold); the next
    /// flush writes generation + 1 and ages entries against it.
    snapshot_generation: AtomicU64,
}

/// Latency histograms resolved once at pool start; `None` (telemetry off)
/// costs one branch per job at each record site.
struct VerifyTimers {
    queue_wait: Option<Arc<Metric>>,
    verdict: Option<Arc<Metric>>,
}

impl VerifyTimers {
    fn new(telemetry: &TelemetryHandle) -> Self {
        let vol = MetricClass::Volatile;
        Self {
            queue_wait: telemetry.histogram("verify.queue_wait", vol),
            verdict: telemetry.histogram("verify.verdict.latency", vol),
        }
    }
}

impl<C> VerifyCore<C> {
    fn new(config: VerifyConfig) -> Self {
        let config = config.normalized();
        let per_shard_cache = config.cache_capacity.div_ceil(config.workers);
        let core = Self {
            shards: (0..config.workers)
                .map(|_| Shard::new(config.shard_capacity))
                .collect(),
            caches: (0..config.workers)
                .map(|_| Mutex::new(LruCache::new(per_shard_cache)))
                .collect(),
            metrics: MetricsRecorder::new(),
            timers: VerifyTimers::new(&config.telemetry),
            closed: AtomicBool::new(false),
            snapshot_generation: AtomicU64::new(0),
            config,
        };
        core.preload_snapshot();
        core
    }

    /// Warm start: preloads the persisted verdict snapshot, if one is configured
    /// and valid.  A missing file is the normal first run; a corrupt or mismatched
    /// one is counted in the metrics and the pool starts cold — never an error.
    fn preload_snapshot(&self) {
        let Some(spec) = &self.config.persist else {
            return;
        };
        match persist::load_verdict_snapshot(spec) {
            SnapshotLoad::Loaded(loaded) => {
                let count = loaded.entries.len();
                self.snapshot_generation
                    .store(loaded.generation, Ordering::Relaxed);
                for (key, verdict, gen) in loaded.entries {
                    lock_recover(&self.caches[self.shard_for(key)]).preload_aged(key, verdict, gen);
                }
                self.metrics.record_snapshot_load(count);
            }
            SnapshotLoad::Missing => {}
            SnapshotLoad::Rejected(_) => self.metrics.record_snapshot_reject(),
        }
    }

    /// Spills every cached verdict to the configured snapshot path (atomically);
    /// `Ok(0)` when persistence is not configured.
    ///
    /// An **empty** cache is never written: a pool that loaded nothing (e.g. a
    /// reconfigured run whose preload was rejected) and judged nothing must not
    /// replace a previously valuable snapshot with an empty file.
    fn flush(&self) -> std::io::Result<usize> {
        let Some(spec) = &self.config.persist else {
            return Ok(0);
        };
        let mut entries = Vec::new();
        for cache in &self.caches {
            entries.extend(lock_recover(cache).export_aged());
        }
        if entries.is_empty() {
            return Ok(0);
        }
        // Age the entries against the preloaded generation: touched entries are
        // re-stamped current, idle ones keep their old stamp and fall off once
        // they are `compact_after` runs behind (0 = keep forever).  A snapshot
        // emptied *by compaction* is still written (the empty file records the
        // drop and advances the generation); only a cache with nothing in it —
        // e.g. an idle pool whose preload was rejected — skips the write, so
        // it cannot clobber a valuable snapshot (the early return above).
        let loaded_generation = self.snapshot_generation.load(Ordering::Relaxed);
        let next_generation = loaded_generation + 1;
        let (entries, compacted) = persist::age_entries(
            entries,
            loaded_generation,
            next_generation,
            spec.compact_after,
        );
        match persist::save_verdict_snapshot_aged(spec, next_generation, entries) {
            Ok(count) => {
                self.metrics.record_snapshot_save(count);
                // Counted only once the write landed: a failed save has not
                // actually dropped anything from disk.
                if compacted > 0 {
                    self.metrics.record_snapshot_compaction(compacted);
                }
                Ok(count)
            }
            Err(err) => {
                // The automatic flush paths (shutdown/drop/scoped exit) discard
                // this error; the counter is the surviving signal.
                self.metrics.record_snapshot_save_failure();
                Err(err)
            }
        }
    }

    fn shard_for(&self, key: VerdictKey) -> usize {
        (key.fold64() % self.shards.len() as u64) as usize
    }

    /// Job construction shared by the blocking and async submit paths; the
    /// in-flight slot reserved here is released by the worker at completion.
    fn begin_submit(&self, request: VerifyRequest<C>) -> Result<BegunVerifyJob<C>, SubmitError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        // No admission limit on the verify pool (limit 0 = gauge only).
        let _ = self.metrics.try_admit(0);
        if self.config.tracer.is_on() {
            self.metrics.record_journal_event();
            self.config.tracer.diagnostic(
                request.key.fold64(),
                JournalEvent::Admit {
                    pool: "verify".to_string(),
                },
            );
        }
        let state = TicketState::new();
        let shard = self.shard_for(request.key);
        let job = VerifyJob {
            enqueued_at: Instant::now(),
            ticket: Arc::clone(&state),
            request,
        };
        Ok((job, shard, state))
    }

    fn submit(&self, request: VerifyRequest<C>) -> Result<VerifyTicket, SubmitError> {
        let (job, shard, state) = self.begin_submit(request)?;
        match self.shards[shard].push_blocking(job, &self.closed) {
            Ok(depth) => {
                self.metrics.record_submit(depth);
                Ok(VerifyTicket { state })
            }
            Err(closed) => {
                self.metrics.release_in_flight();
                Err(closed.into())
            }
        }
    }

    fn submit_async(
        &self,
        request: VerifyRequest<C>,
    ) -> Result<VerifySubmitFuture<'_, C>, SubmitError> {
        let (job, shard, state) = self.begin_submit(request)?;
        Ok(VerifySubmitFuture {
            core: self,
            job: Some(job),
            shard,
            state,
        })
    }

    fn queue_depth(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    fn cache_entries(&self) -> usize {
        self.caches
            .iter()
            .map(|cache| lock_recover(cache).len())
            .sum()
    }

    fn snapshot(&self) -> VerifyMetrics {
        self.metrics.snapshot_verify(
            self.config.workers,
            self.queue_depth(),
            self.cache_entries(),
        )
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.notify_all();
        }
    }
}

/// Future returned by the async submit paths: resolves to the job's
/// [`VerifyTicket`] once the target shard has accepted it, parking on a waker
/// (never a thread) while the shard is at capacity.  Dropping it before it
/// resolves abandons the submission and rolls back the in-flight slot.
pub struct VerifySubmitFuture<'a, C> {
    core: &'a VerifyCore<C>,
    job: Option<VerifyJob<C>>,
    shard: usize,
    state: Arc<TicketState<VerdictOutcome>>,
}

impl<C> Future for VerifySubmitFuture<'_, C> {
    type Output = Result<VerifyTicket, ServiceClosed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.core.shards[this.shard].poll_push(&mut this.job, &this.core.closed, cx.waker()) {
            Poll::Ready(Ok(depth)) => {
                this.core.metrics.record_submit(depth);
                Poll::Ready(Ok(VerifyTicket {
                    state: Arc::clone(&this.state),
                }))
            }
            Poll::Ready(Err(closed)) => {
                // Never enqueued: hand the in-flight slot back.
                this.core.metrics.release_in_flight();
                Poll::Ready(Err(closed))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<C> Drop for VerifySubmitFuture<'_, C> {
    fn drop(&mut self) {
        // Never enqueued: hand the in-flight slot back.
        if self.job.is_some() {
            self.core.metrics.release_in_flight();
        }
    }
}

/// Closes the core when dropped, so scoped workers exit even if the body panics.
struct VerifyCloseGuard<'a, C>(&'a VerifyCore<C>);

impl<C> Drop for VerifyCloseGuard<'_, C> {
    fn drop(&mut self) {
        self.0.close();
    }
}

fn verify_worker_loop<C, J: ResponseJudge<C> + ?Sized>(
    core: &VerifyCore<C>,
    judge: &J,
    shard_idx: usize,
) {
    loop {
        let batch = core.shards[shard_idx].drain_batch(core.config.max_batch, &core.closed);
        if batch.is_empty() {
            // Closed and drained.
            return;
        }
        core.metrics.record_batch();
        for job in batch {
            let queue_wait = job.enqueued_at.elapsed();
            let service_start = Instant::now();
            let cached = lock_recover(&core.caches[shard_idx]).get_tagged(job.request.key);
            let cache_lookup = service_start.elapsed();
            if core.config.tracer.is_on() {
                core.metrics.record_journal_event();
                core.config.tracer.diagnostic(
                    job.request.key.fold64(),
                    JournalEvent::Cache {
                        pool: "verify".to_string(),
                        hit: cached.is_some(),
                        warm: matches!(cached, Some((_, true))),
                    },
                );
            }
            let (verdict, verdict_time) = match cached {
                Some((verdict, warm)) => {
                    if warm {
                        core.metrics.record_warm_hit();
                    }
                    (verdict, None)
                }
                None => {
                    let verdict_start = Instant::now();
                    // A panicking judge must not take the worker down: an unwinding
                    // worker would strand every ticket in its shard and poison the
                    // pool for later jobs.  Catch the panic, serve a failed verdict,
                    // and count it in the metrics.
                    let judged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        judge.verdict(&job.request.case, &job.request.response)
                    }));
                    let elapsed = verdict_start.elapsed();
                    match judged {
                        Ok(verdict) => {
                            lock_recover(&core.caches[shard_idx]).insert(job.request.key, verdict);
                            core.metrics.record_verdict(verdict);
                            (verdict, Some(elapsed))
                        }
                        Err(_) => {
                            // Not cached: a retry should reach the judge again.
                            core.metrics.record_solve_panic();
                            if core.config.tracer.is_on() {
                                core.metrics.record_journal_event();
                                core.config.tracer.diagnostic(
                                    job.request.key.fold64(),
                                    JournalEvent::Panic {
                                        pool: "verify".to_string(),
                                    },
                                );
                            }
                            (false, Some(elapsed))
                        }
                    }
                }
            };
            core.metrics
                .record_job(queue_wait, cache_lookup, verdict_time);
            if let Some(metric) = &core.timers.queue_wait {
                metric.observe_duration(queue_wait);
            }
            if let (Some(metric), Some(verdict_time)) = (&core.timers.verdict, verdict_time) {
                metric.observe_duration(verdict_time);
            }
            job.ticket.fulfill(VerdictOutcome {
                verdict,
                from_cache: verdict_time.is_none(),
                worker: shard_idx,
                queue_wait,
                service_time: service_start.elapsed(),
            });
        }
    }
}

/// A persistent verification pool owning its judge and workers.
///
/// The judge is type-erased (`dyn ResponseJudge`) so callers can hold the pool in a
/// struct without naming closure types; the dynamic dispatch is noise next to a
/// bounded-checker verdict.  Keeping one pool across evaluation runs keeps the
/// verdict cache warm — re-evaluating a corpus the pool has already judged is pure
/// cache hits.
pub struct VerifyPool<C: Send + Sync + 'static> {
    core: Arc<VerifyCore<C>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<C: Send + Sync + 'static> VerifyPool<C> {
    /// Starts the verify workers.
    pub fn start(judge: Arc<dyn ResponseJudge<C> + Send + Sync>, config: VerifyConfig) -> Self {
        let core = Arc::new(VerifyCore::new(config));
        let handles = (0..core.config.workers)
            .map(|shard_idx| {
                let core = Arc::clone(&core);
                let judge = Arc::clone(&judge);
                std::thread::Builder::new()
                    .name(format!("svserve-verify-{shard_idx}"))
                    .spawn(move || verify_worker_loop(&core, &*judge, shard_idx))
                    .expect("spawn verify worker thread")
            })
            .collect();
        Self { core, handles }
    }

    /// Submits one verdict job; blocks only when the target shard is at capacity.
    pub fn submit(&self, request: VerifyRequest<C>) -> Result<VerifyTicket, SubmitError> {
        self.core.submit(request)
    }

    /// Non-blocking submit for async sessions: the returned future parks on a
    /// waker (not a thread) while the target shard is at capacity.
    pub fn submit_async(
        &self,
        request: VerifyRequest<C>,
    ) -> Result<VerifySubmitFuture<'_, C>, SubmitError> {
        self.core.submit_async(request)
    }

    /// Submits a whole batch and waits for every verdict, preserving input order.
    pub fn judge_all(&self, requests: Vec<VerifyRequest<C>>) -> Vec<VerdictOutcome> {
        judge_all_on(&self.core, requests)
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> VerifyMetrics {
        self.core.snapshot()
    }

    /// Writes the current verdict cache to the configured snapshot path
    /// (atomically), returning the number of entries written; `Ok(0)` when
    /// persistence is not configured.  Also runs automatically on shutdown/drop.
    pub fn flush(&self) -> std::io::Result<usize> {
        self.core.flush()
    }

    /// Stops accepting work, drains the queues, joins the workers and flushes the
    /// verdict-cache snapshot.
    pub fn shutdown(mut self) -> VerifyMetrics {
        self.core.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = self.core.flush();
        self.core.snapshot()
    }
}

impl<C: Send + Sync + 'static> Drop for VerifyPool<C> {
    fn drop(&mut self) {
        self.core.close();
        let had_workers = !self.handles.is_empty();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // `shutdown` already flushed (and emptied `handles`); only flush here when
        // the pool is dropped without an explicit shutdown.
        if had_workers {
            let _ = self.core.flush();
        }
    }
}

/// Borrowed-judge pool handle available inside [`verify_scoped`].
pub struct ScopedVerifier<'a, C> {
    core: &'a VerifyCore<C>,
}

impl<C> ScopedVerifier<'_, C> {
    /// Submits one verdict job; blocks only when the target shard is at capacity.
    pub fn submit(&self, request: VerifyRequest<C>) -> Result<VerifyTicket, SubmitError> {
        self.core.submit(request)
    }

    /// Non-blocking submit for async sessions: the returned future parks on a
    /// waker (not a thread) while the target shard is at capacity.
    pub fn submit_async(
        &self,
        request: VerifyRequest<C>,
    ) -> Result<VerifySubmitFuture<'_, C>, SubmitError> {
        self.core.submit_async(request)
    }

    /// Submits a whole batch and waits for every verdict, preserving input order.
    pub fn judge_all(&self, requests: Vec<VerifyRequest<C>>) -> Vec<VerdictOutcome> {
        judge_all_on(self.core, requests)
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> VerifyMetrics {
        self.core.snapshot()
    }
}

fn judge_all_on<C>(core: &VerifyCore<C>, requests: Vec<VerifyRequest<C>>) -> Vec<VerdictOutcome> {
    // Submit everything first (backpressure throttles us while workers drain),
    // then await in input order.
    let tickets: Vec<VerifyTicket> = requests
        .into_iter()
        .map(|request| core.submit(request).expect("verify pool open"))
        .collect();
    tickets.into_iter().map(VerifyTicket::wait).collect()
}

/// Runs a verify pool over a *borrowed* judge for the duration of `body`.
///
/// The pool is built on scoped threads, so `judge` only needs `Sync` — no `Arc`, no
/// `'static`.  Workers drain outstanding jobs and exit when `body` returns (or
/// panics).  When [`VerifyConfig::persist`] is set, the snapshot is preloaded
/// before the workers start and flushed after they have all joined (so the flush
/// sees every verdict the pool computed); a panicking `body` skips the flush.
pub fn verify_scoped<C, J, F, R>(judge: &J, config: VerifyConfig, body: F) -> R
where
    C: Send + Sync,
    J: ResponseJudge<C> + ?Sized,
    F: FnOnce(&ScopedVerifier<'_, C>) -> R,
{
    let core = VerifyCore::new(config);
    let result = std::thread::scope(|scope| {
        let guard = VerifyCloseGuard(&core);
        for shard_idx in 0..core.config.workers {
            let core_ref = &core;
            scope.spawn(move || verify_worker_loop(core_ref, judge, shard_idx));
        }
        let verifier = ScopedVerifier { core: &core };
        let result = body(&verifier);
        drop(guard); // close + wake workers so the scope can join
        result
    });
    let _ = core.flush();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::verdict_key;
    use std::sync::atomic::AtomicUsize;

    /// A case whose verdict is "does the fixed line contain the case text?", plus an
    /// invocation counter so tests can prove cache hits skip the judge.
    struct SubstringJudge {
        calls: AtomicUsize,
    }

    impl ResponseJudge<String> for SubstringJudge {
        fn verdict(&self, case: &String, response: &Response) -> bool {
            self.calls.fetch_add(1, Ordering::SeqCst);
            response.fixed_line.contains(case.as_str())
        }
    }

    fn request(case: &str, fixed_line: &str) -> VerifyRequest<String> {
        let response = Response {
            bug_line_number: 1,
            buggy_line: "buggy".into(),
            fixed_line: fixed_line.into(),
            cot: None,
        };
        let key = verdict_key(&[case.as_bytes()], &response, b"test-config");
        VerifyRequest::new(Arc::new(case.to_string()), response, key)
    }

    #[test]
    fn owned_pool_judges_and_shuts_down() {
        let judge = Arc::new(SubstringJudge {
            calls: AtomicUsize::new(0),
        });
        let pool = VerifyPool::start(
            Arc::<SubstringJudge>::clone(&judge),
            VerifyConfig::default().with_workers(2),
        );
        let requests: Vec<VerifyRequest<String>> = (0..16)
            .map(|i| request("needle", &format!("fix {i} needle={}", i % 2 == 0)))
            .collect();
        let outcomes = pool.judge_all(requests);
        assert_eq!(outcomes.len(), 16);
        assert!(outcomes.iter().all(|o| o.verdict));
        let metrics = pool.shutdown();
        assert_eq!(metrics.completed, 16);
        assert_eq!(metrics.cache_misses, 16);
        assert_eq!(metrics.verdicts_true, 16);
        assert_eq!(judge.calls.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn repeated_jobs_are_served_from_the_verdict_cache() {
        let judge = Arc::new(SubstringJudge {
            calls: AtomicUsize::new(0),
        });
        let pool = VerifyPool::start(
            Arc::<SubstringJudge>::clone(&judge),
            VerifyConfig::default().with_workers(2),
        );
        let first = pool
            .submit(request("abc", "has abc inside"))
            .unwrap()
            .wait();
        let second = pool
            .submit(request("abc", "has abc inside"))
            .unwrap()
            .wait();
        assert!(first.verdict && second.verdict);
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(
            judge.calls.load(Ordering::SeqCst),
            1,
            "cache hit must not re-invoke the judge"
        );
        let metrics = pool.metrics();
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn verdicts_are_identical_across_worker_counts_and_orders() {
        let workload: Vec<VerifyRequest<String>> = (0..40)
            .map(|i| request(&format!("case {}", i % 7), &format!("fix case {}", i % 5)))
            .collect();
        let mut reversed = workload.clone();
        reversed.reverse();

        let run = |requests: Vec<VerifyRequest<String>>, workers: usize| -> Vec<bool> {
            let judge = SubstringJudge {
                calls: AtomicUsize::new(0),
            };
            verify_scoped(
                &judge,
                VerifyConfig::default().with_workers(workers),
                |verifier| {
                    verifier
                        .judge_all(requests)
                        .into_iter()
                        .map(|o| o.verdict)
                        .collect()
                },
            )
        };

        let one = run(workload.clone(), 1);
        let eight = run(workload.clone(), 8);
        assert_eq!(one, eight, "worker count must not change verdicts");

        let mut reversed_verdicts = run(reversed, 4);
        reversed_verdicts.reverse();
        assert_eq!(
            one, reversed_verdicts,
            "arrival order must not change verdicts"
        );
    }

    #[test]
    fn shard_placement_is_content_based() {
        let core: VerifyCore<String> = VerifyCore::new(VerifyConfig::default().with_workers(4));
        for i in 0..32 {
            let key = request(&format!("case {i}"), "fix").key;
            assert_eq!(core.shard_for(key), core.shard_for(key));
        }
    }

    #[test]
    fn scoped_pool_reports_metrics() {
        let judge = SubstringJudge {
            calls: AtomicUsize::new(0),
        };
        let metrics = verify_scoped(
            &judge,
            VerifyConfig::default().with_workers(1),
            |verifier| {
                let outcomes = verifier.judge_all(
                    (0..10)
                        .map(|i| request("x", &format!("{} x={}", i, i % 2 == 0)))
                        .collect(),
                );
                assert!(outcomes.iter().all(|o| o.worker == 0));
                verifier.metrics()
            },
        );
        assert_eq!(metrics.workers, 1);
        assert_eq!(metrics.completed, 10);
        assert_eq!(metrics.verdicts_true + metrics.verdicts_false, 10);
        assert!(metrics.mean_batch_size >= 1.0);
        assert!(metrics.throughput_per_sec > 0.0);
    }

    #[test]
    fn env_override_parses_only_positive_integers() {
        // Written via a helper rather than set_var: tests run multi-threaded and
        // the parsing logic is what matters.
        let parse = |raw: &str| {
            raw.trim()
                .parse::<usize>()
                .ok()
                .filter(|&workers| workers > 0)
        };
        assert_eq!(parse(" 4 "), Some(4));
        assert_eq!(parse("1"), Some(1));
        assert_eq!(parse("0"), None);
        assert_eq!(parse("many"), None);
    }
}
