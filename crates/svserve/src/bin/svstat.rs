//! `svstat` — live fleet introspection against running `shard-serve` shards.
//!
//! ```text
//! svstat [--sockets a.sock,b.sock] [--socket PATH]... [--timeout-ms N] [--json]
//! ```
//!
//! Connects to every listed shard socket (falling back to the
//! `ASSERTSOLVER_SHARD_SOCKETS` list when no flag names any), runs the
//! `Stats` wire exchange against each, and renders the fleet-wide view: a
//! per-shard liveness line, then the merged registry — counters and gauges
//! with derived cache hit rates, and latency histograms as exact
//! p50/p90/p99/max columns.  `--json` prints the merged snapshot's canonical
//! JSON exposition instead of the table (byte-stable key order, suitable for
//! scraping).
//!
//! Exit status: 0 when at least one shard answered, 1 when none did,
//! 2 on usage errors.  A dead or corrupt shard is reported inline and
//! excluded from the merge — one sick peer never hides the fleet.

use std::process::ExitCode;
use std::time::Duration;
use svserve::{
    env_shard_sockets, ratio, FleetStats, MetricKind, MetricSnapshot, RegistrySnapshot, ShardFleet,
};

struct Args {
    sockets: Vec<String>,
    timeout_ms: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sockets: Vec::new(),
        timeout_ms: 2_000,
        json: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => args.sockets.push(value("--socket")?),
            "--sockets" => args.sockets.extend(
                value("--sockets")?
                    .split(',')
                    .map(str::trim)
                    .filter(|socket| !socket.is_empty())
                    .map(str::to_string),
            ),
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|err| format!("--timeout-ms: {err}"))?
            }
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sockets.is_empty() {
        args.sockets = env_shard_sockets()
            .ok_or("no sockets: pass --socket/--sockets or set ASSERTSOLVER_SHARD_SOCKETS")?;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("svstat: {msg}");
            eprintln!(
                "usage: svstat [--sockets a.sock,b.sock] [--socket PATH]... \
                 [--timeout-ms N] [--json]"
            );
            return ExitCode::from(2);
        }
    };

    // Fingerprint `None`: introspection should work against any model, so the
    // handshake's model check is skipped (unlike placement, stats reads don't
    // depend on which checkpoint a shard serves).
    let fleet =
        ShardFleet::connect_unix(&args.sockets, None, Duration::from_millis(args.timeout_ms));
    let stats = fleet.fleet_stats();

    if args.json {
        println!("{}", stats.merged.render_json());
    } else {
        print!("{}", render_fleet(&stats, &args.sockets));
    }

    if stats.live() == 0 {
        eprintln!("svstat: no shard answered the stats exchange");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The human-facing report: shard liveness, derived rates, then the merged
/// registry as aligned counter/gauge and histogram tables.
fn render_fleet(stats: &FleetStats, sockets: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet: {}/{} shards live\n",
        stats.live(),
        stats.shards.len()
    ));
    for shard in &stats.shards {
        let socket = sockets
            .get(shard.shard)
            .map(String::as_str)
            .unwrap_or("<unknown>");
        match &shard.result {
            Ok(snapshot) => out.push_str(&format!(
                "  shard {} {socket} [{}]: ok, {} metrics\n",
                shard.shard,
                short_fingerprint(&shard.fingerprint),
                snapshot.len()
            )),
            Err(reason) => out.push_str(&format!("  shard {} {socket}: {reason}\n", shard.shard)),
        }
    }
    out.push_str(&render_rates(&stats.merged));
    out.push_str(&render_merged(&stats.merged));
    out
}

fn short_fingerprint(fingerprint: &str) -> &str {
    if fingerprint.is_empty() {
        "?"
    } else {
        &fingerprint[..fingerprint.len().min(24)]
    }
}

/// Derived fleet-wide rates from counters that exist whenever any shard has
/// served traffic; silently absent rows (a fresh fleet) render as 0.
fn render_rates(merged: &RegistrySnapshot) -> String {
    let value = |name: &str| merged.get(name).map(|m| m.value).unwrap_or(0);
    let hits = value("service.cache.hits");
    let misses = value("service.cache.misses");
    let verdict_hits = value("service.verify.cache.hits");
    let verdict_misses = value("service.verify.cache.misses");
    let mut out = String::new();
    out.push_str(&format!(
        "  cache: {:.1}% response hit rate ({hits}/{}), \
         {:.1}% verdict hit rate ({verdict_hits}/{})\n",
        100.0 * ratio(hits, hits + misses),
        hits + misses,
        100.0 * ratio(verdict_hits, verdict_hits + verdict_misses),
        verdict_hits + verdict_misses,
    ));
    out.push_str(&format!(
        "  pressure: queue depth {}, shed {}, panics {}, journal events {}\n",
        value("service.queue.depth"),
        value("service.shed_busy") + value("service.verify.shed_busy"),
        value("service.panics") + value("service.verify.panics"),
        value("service.journal.events"),
    ));
    out
}

fn render_merged(merged: &RegistrySnapshot) -> String {
    let (scalars, histograms): (Vec<&MetricSnapshot>, Vec<&MetricSnapshot>) = merged
        .metrics
        .iter()
        .partition(|metric| metric.kind != MetricKind::Histogram);
    let name_width = merged
        .metrics
        .iter()
        .map(|metric| metric.name.len())
        .max()
        .unwrap_or(0)
        .max("histogram (ns)".len());

    let mut out = String::new();
    if !scalars.is_empty() {
        out.push_str(&format!(
            "\n{:<name_width$}  {:>12}\n",
            "counter/gauge", "value"
        ));
        for metric in scalars {
            out.push_str(&format!(
                "{:<name_width$}  {:>12}\n",
                metric.name, metric.value
            ));
        }
    }
    if !histograms.is_empty() {
        out.push_str(&format!(
            "\n{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "histogram (ns)", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for metric in histograms {
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>10.0}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                metric.name,
                metric.count,
                metric.mean(),
                metric.percentile(0.50),
                metric.percentile(0.90),
                metric.percentile(0.99),
                metric.max,
            ));
        }
    }
    out
}
