//! `shard-serve` — host one repair-service shard behind a unix socket.
//!
//! ```text
//! shard-serve --socket /tmp/shard-0.sock --model-file model.json \
//!     [--seed N] [--workers N] [--max-in-flight N] [--snapshot-file PATH]
//! ```
//!
//! The model is an [`svmodel::AssertSolverModel`] serialized as JSON (what
//! `serde_json::to_string(&model)` produces — weights and all, so the shard
//! serves byte-identical answers to the process that wrote the file).  With
//! `--snapshot-file`, the shard warm-starts its response cache from the
//! fleet's snapshot store (`svserve::persist`) and flushes it back on
//! shutdown.
//!
//! Prints `LISTENING <socket>` once the socket is bound, serves until stdin
//! reaches EOF (the parent closing the pipe is the shutdown signal), then
//! flushes and exits.  Exit status 2 = usage error, 1 = runtime failure.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{
    MetricsRegistry, PersistSpec, RepairService, ServiceConfig, ShardServer, TelemetryHandle,
};

struct Args {
    socket: String,
    model_file: String,
    seed: Option<u64>,
    workers: Option<usize>,
    max_in_flight: Option<usize>,
    snapshot_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: String::new(),
        model_file: String::new(),
        seed: None,
        workers: None,
        max_in_flight: None,
        snapshot_file: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => args.socket = value("--socket")?,
            "--model-file" => args.model_file = value("--model-file")?,
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|err| format!("--seed: {err}"))?,
                )
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|err| format!("--workers: {err}"))?,
                )
            }
            "--max-in-flight" => {
                args.max_in_flight = Some(
                    value("--max-in-flight")?
                        .parse()
                        .map_err(|err| format!("--max-in-flight: {err}"))?,
                )
            }
            "--snapshot-file" => args.snapshot_file = Some(value("--snapshot-file")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.socket.is_empty() {
        return Err("--socket is required".into());
    }
    if args.model_file.is_empty() {
        return Err("--model-file is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("shard-serve: {msg}");
            eprintln!(
                "usage: shard-serve --socket PATH --model-file PATH \
                 [--seed N] [--workers N] [--max-in-flight N] [--snapshot-file PATH]"
            );
            return ExitCode::from(2);
        }
    };
    let model_json = match std::fs::read_to_string(&args.model_file) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("shard-serve: read {}: {err}", args.model_file);
            return ExitCode::FAILURE;
        }
    };
    let model: AssertSolverModel = match serde_json::from_str(&model_json) {
        Ok(model) => model,
        Err(err) => {
            eprintln!("shard-serve: parse {}: {err}", args.model_file);
            return ExitCode::FAILURE;
        }
    };
    let fingerprint = model.identity();

    // A serving daemon is always introspectable: the `Stats` wire exchange
    // answers latency histograms (`service.repair.*`, `wire.frame.bytes`)
    // only when a registry is installed, and `svstat` is the whole point of
    // running one, so telemetry is unconditionally on here (unlike library
    // use, where it defaults off).
    let mut config = ServiceConfig::default()
        .with_telemetry(TelemetryHandle::new(Arc::new(MetricsRegistry::default())));
    if let Some(seed) = args.seed {
        config = config.with_seed(seed);
    }
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(max_in_flight) = args.max_in_flight {
        config = config.with_max_in_flight(max_in_flight);
    }
    if let Some(snapshot) = &args.snapshot_file {
        // Same keying the in-process evaluation uses: identity + service seed
        // are folded into the snapshot fingerprint by the service itself, so a
        // shard restarted with the fleet's snapshot store warm-starts, and one
        // pointed at a stale file degrades to a cold start.
        config = config.with_persist(PersistSpec::new(snapshot, &[], fingerprint.clone()));
    }

    let service = Arc::new(RepairService::start(Arc::new(model), config));
    let server = match ShardServer::bind(&args.socket, Arc::clone(&service), &fingerprint) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("shard-serve: bind {}: {err}", args.socket);
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", args.socket);
    // Unbuffer the line: the parent waits on it before connecting.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until the parent closes our stdin (portable child-lifetime signal:
    // works for a deliberate shutdown and for a crashed/killed parent alike).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        if line.is_err() {
            break;
        }
    }

    server.shutdown();
    match Arc::try_unwrap(service) {
        Ok(service) => {
            // Flushes the response snapshot for the next warm start.
            service.shutdown();
        }
        Err(service) => {
            // A connection thread still holds the service (it is joined by
            // server.shutdown(), so this is unreachable in practice); flush
            // without consuming as a fallback.
            let _ = service.flush();
        }
    }
    ExitCode::SUCCESS
}
