//! `svtop` — live fleet watch over the windowed telemetry plane.
//!
//! ```text
//! svtop [--sockets a.sock,b.sock] [--socket PATH]... [--timeout-ms N]
//!       [--interval-ms N] [--once] [--json]
//! ```
//!
//! Polls every listed `shard-serve` shard (falling back to the
//! `ASSERTSOLVER_SHARD_SOCKETS` list) with the `StatsWindow` wire exchange
//! and renders a per-shard view of the last few time windows: event rate
//! since the previous poll, submitted/completed/shed over the retained
//! horizon, p50/p99/max service latency, and the in-flight gauge with its
//! delta.  Unlike `svstat` (cumulative counters since shard start), `svtop`
//! shows *recent* behaviour — a shard that was hot an hour ago but idle now
//! reads as idle.
//!
//! A v2 shard (predating the window plane) is reported as `unsupported` and
//! keeps serving: the probe refuses locally before any bytes move, so
//! polling an old fleet never disturbs it.  `--once` prints a single poll
//! and exits (0 when at least one shard answered, 1 when none did) — the
//! shape CI drives; `--json` prints one JSON object per poll instead of the
//! table, suitable for scraping.
//!
//! Exit status: 0 ok, 1 no shard answered, 2 usage errors.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use svserve::{env_shard_sockets, ShardFleet, ShardWindow, WindowSnapshot};

struct Args {
    sockets: Vec<String>,
    timeout_ms: u64,
    interval_ms: u64,
    once: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sockets: Vec::new(),
        timeout_ms: 2_000,
        interval_ms: 1_000,
        once: false,
        json: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => args.sockets.push(value("--socket")?),
            "--sockets" => args.sockets.extend(
                value("--sockets")?
                    .split(',')
                    .map(str::trim)
                    .filter(|socket| !socket.is_empty())
                    .map(str::to_string),
            ),
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|err| format!("--timeout-ms: {err}"))?
            }
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|err| format!("--interval-ms: {err}"))?
            }
            "--once" => args.once = true,
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sockets.is_empty() {
        args.sockets = env_shard_sockets()
            .ok_or("no sockets: pass --socket/--sockets or set ASSERTSOLVER_SHARD_SOCKETS")?;
    }
    Ok(args)
}

/// What the previous poll saw of one shard, for delta columns.
struct Previous {
    tick: u64,
    in_flight: u64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("svtop: {msg}");
            eprintln!(
                "usage: svtop [--sockets a.sock,b.sock] [--socket PATH]... \
                 [--timeout-ms N] [--interval-ms N] [--once] [--json]"
            );
            return ExitCode::from(2);
        }
    };

    // Fingerprint `None`: like `svstat`, watching works against any model.
    // One fleet for the whole watch — connections persist across polls.
    let fleet =
        ShardFleet::connect_unix(&args.sockets, None, Duration::from_millis(args.timeout_ms));
    let mut previous: Vec<Option<Previous>> = (0..args.sockets.len()).map(|_| None).collect();
    let mut last_poll: Option<Instant> = None;

    loop {
        let windows = fleet.fleet_windows();
        let elapsed = last_poll.map(|at| at.elapsed());
        last_poll = Some(Instant::now());

        if args.json {
            println!("{}", render_json(&windows));
        } else {
            print!(
                "{}",
                render_table(&windows, &args.sockets, &previous, elapsed)
            );
        }

        for window in &windows {
            if let (Some(slot), Ok(snapshot)) =
                (previous.get_mut(window.shard), window.result.as_ref())
            {
                *slot = Some(Previous {
                    tick: snapshot.tick,
                    in_flight: snapshot.in_flight,
                });
            }
        }

        let live = windows.iter().filter(|w| w.result.is_ok()).count();
        if args.once {
            if live == 0 {
                eprintln!("svtop: no shard answered the window exchange");
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms.max(1)));
    }
}

/// One machine-readable poll: shard liveness plus each live shard's window
/// snapshot in its canonical JSON exposition.
fn render_json(windows: &[ShardWindow]) -> String {
    let mut out = String::from("{\"shards\":[");
    for (index, window) in windows.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        match &window.result {
            Ok(snapshot) => out.push_str(&format!(
                "{{\"shard\":{},\"ok\":true,\"window\":{}}}",
                window.shard,
                snapshot.render_json()
            )),
            Err(reason) => out.push_str(&format!(
                "{{\"shard\":{},\"ok\":false,\"error\":{}}}",
                window.shard,
                serde_json::to_string(reason).unwrap_or_else(|_| "\"?\"".into())
            )),
        }
    }
    out.push_str("]}");
    out
}

fn render_table(
    windows: &[ShardWindow],
    sockets: &[String],
    previous: &[Option<Previous>],
    elapsed: Option<Duration>,
) -> String {
    let live = windows.iter().filter(|w| w.result.is_ok()).count();
    let mut out = format!("fleet: {live}/{} shards live\n", windows.len());
    out.push_str(&format!(
        "{:>5}  {:>8}  {:>9}  {:>9}  {:>6}  {:>10}  {:>10}  {:>10}  {:>9}\n",
        "shard",
        "ev/s",
        "submitted",
        "completed",
        "shed",
        "p50_ns",
        "p99_ns",
        "max_ns",
        "in_flight"
    ));
    for window in windows {
        let socket = sockets
            .get(window.shard)
            .map(String::as_str)
            .unwrap_or("<unknown>");
        match &window.result {
            Ok(snapshot) => {
                out.push_str(&render_shard_row(window.shard, snapshot, previous, elapsed))
            }
            Err(reason) => out.push_str(&format!("{:>5}  {socket}: {reason}\n", window.shard)),
        }
    }
    out
}

/// One live shard's row: poll-to-poll event rate, horizon totals, latency
/// quantiles (bucket-granular, see `percentile_from_buckets`), and the
/// in-flight gauge with its delta since the previous poll.
fn render_shard_row(
    shard: usize,
    snapshot: &WindowSnapshot,
    previous: &[Option<Previous>],
    elapsed: Option<Duration>,
) -> String {
    let totals = snapshot.totals();
    let before = previous.get(shard).and_then(Option::as_ref);
    let rate = match (before, elapsed) {
        (Some(before), Some(elapsed)) if elapsed.as_secs_f64() > 0.0 => format!(
            "{:.1}",
            snapshot.tick.saturating_sub(before.tick) as f64 / elapsed.as_secs_f64()
        ),
        _ => "-".to_string(),
    };
    let in_flight = match before {
        Some(before) => {
            let delta = snapshot.in_flight as i64 - before.in_flight as i64;
            format!("{} ({delta:+})", snapshot.in_flight)
        }
        None => snapshot.in_flight.to_string(),
    };
    format!(
        "{:>5}  {:>8}  {:>9}  {:>9}  {:>6}  {:>10}  {:>10}  {:>10}  {:>9}\n",
        shard,
        rate,
        totals.submitted,
        totals.completed,
        totals.shed,
        snapshot.percentile(0.50),
        snapshot.percentile(0.99),
        totals.max,
        in_flight,
    )
}
