//! The [`Transport`] trait and its two implementations: in-process loopback
//! and unix-socket.
//!
//! A transport is one client-side connection to one shard: `call` sends a
//! [`Frame::Submit`] and blocks for the shard's answer.  Both implementations
//! push every message through the same frame codec — the loopback transport
//! encodes and decodes each frame in memory — so a test passing over loopback
//! exercises byte-for-byte the protocol a socket peer would see.

use super::frame::{
    read_frame, Frame, FrameError, WireOutcome, MIN_WIRE_FORMAT_VERSION, WIRE_FORMAT_VERSION,
};
use crate::queue::SubmitError;
use crate::service::{RepairRequest, RepairService};
use crate::telemetry::{Metric, MetricClass, RegistrySnapshot, TelemetryHandle, WindowSnapshot};
use crate::trace::{stage, TraceContext, TraceSpan};
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use svmodel::RepairModel;

/// Why a wire submission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The shard's admission control shed the request ([`SubmitError::Busy`]
    /// over the wire); retrying later is reasonable.
    Busy,
    /// The shard's service has shut down; retrying this connection is not.
    Closed,
    /// The connection or protocol failed (timeout, corrupt frame, version or
    /// fingerprint mismatch, dead peer).  The string is diagnostic only.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Busy => write!(f, "shard shed the request (busy)"),
            WireError::Closed => write!(f, "shard service is closed"),
            WireError::Protocol(msg) => write!(f, "wire protocol failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Prefix on [`WireError::Protocol`] strings for refusals raised *before any
/// bytes hit the wire* (an exchange the negotiated version does not support).
/// The stream is still consistent, so [`super::RemoteShard`] must not retire
/// the connection over one.
pub(crate) const LOCAL_REFUSAL: &str = "unsupported exchange: ";

/// True when `error` is a pre-send refusal that left the stream consistent.
pub(crate) fn is_local_refusal(error: &WireError) -> bool {
    matches!(error, WireError::Protocol(msg) if msg.starts_with(LOCAL_REFUSAL))
}

/// One client-side connection to a shard.
pub trait Transport: Send {
    /// The serving model's identity fingerprint, learned in the `Hello`
    /// handshake.
    fn fingerprint(&self) -> &str;

    /// Submits one request and blocks for the shard's answer.
    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError>;

    /// Submits one request carrying a [`TraceContext`] (the `SubmitTraced` /
    /// `TraceReply` exchange, wire v3) and blocks for the shard's answer plus
    /// the spans the shard recorded under the remote parent.
    ///
    /// The default degrades losslessly to [`Transport::call`] with no shard
    /// spans, which is exactly what a v2 peer — that has never heard of
    /// tracing — would contribute.  Trace trees stay byte-identical because
    /// every deterministic span field is content-derived on the driver side;
    /// only the shard's (volatile) wall measurements are missing.
    fn call_traced(
        &mut self,
        request: &RepairRequest,
        _context: &TraceContext,
    ) -> Result<(WireOutcome, Vec<TraceSpan>), WireError> {
        self.call(request).map(|outcome| (outcome, Vec::new()))
    }

    /// Asks the shard for a live telemetry snapshot (the `Stats` /
    /// `StatsReply` exchange).  The default refuses, so transports that
    /// predate the exchange degrade to a counted protocol error.
    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        Err(WireError::Protocol(format!(
            "{LOCAL_REFUSAL}transport does not support Stats"
        )))
    }

    /// Asks the shard for its time-windowed telemetry (the `StatsWindow` /
    /// `StatsWindowReply` exchange, wire v3).  The default refuses, so v2
    /// transports degrade to a counted protocol error, never a panic.
    fn stats_window(&mut self) -> Result<WindowSnapshot, WireError> {
        Err(WireError::Protocol(format!(
            "{LOCAL_REFUSAL}transport does not support StatsWindow"
        )))
    }
}

/// In-process transport over a local [`RepairService`].
///
/// Every request and response round-trips through the frame codec
/// (`encode_frame`/`decode_frame`) exactly as the socket transport's bytes would, so
/// loopback-backed tests cover the codec, not just the service.
pub struct LoopbackTransport<M: RepairModel + Send + Sync + 'static> {
    service: Arc<RepairService<M>>,
    fingerprint: String,
    frame_bytes: Option<Arc<Metric>>,
}

impl<M: RepairModel + Send + Sync + 'static> LoopbackTransport<M> {
    /// Wraps a local service; `fingerprint` should be the serving model's
    /// [`RepairModel::identity`].
    pub fn new(service: Arc<RepairService<M>>, fingerprint: impl Into<String>) -> Self {
        Self {
            service,
            fingerprint: fingerprint.into(),
            frame_bytes: None,
        }
    }

    /// Records every encoded frame's byte length into the registry's
    /// `wire.frame.bytes` histogram when `telemetry` is on.
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.frame_bytes = telemetry.histogram("wire.frame.bytes", MetricClass::Volatile);
        self
    }
}

impl<M: RepairModel + Send + Sync + 'static> Transport for LoopbackTransport<M> {
    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        // Round-trip the submission through the codec: what the shard "hears"
        // is what a socket peer would have decoded.
        let submit =
            codec_round_trip(&Frame::Submit(request.clone()), self.frame_bytes.as_deref())?;
        let Frame::Submit(request) = submit else {
            return Err(WireError::Protocol("submit frame changed shape".into()));
        };
        let reply = match self.service.submit(request) {
            Ok(ticket) => {
                let outcome = ticket.wait();
                Frame::Response(WireOutcome {
                    responses: (*outcome.responses).clone(),
                    from_cache: outcome.from_cache,
                })
            }
            Err(SubmitError::Busy) => Frame::Busy,
            Err(SubmitError::Closed) => Frame::Closed,
        };
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::Response(outcome) => Ok(outcome),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn call_traced(
        &mut self,
        request: &RepairRequest,
        context: &TraceContext,
    ) -> Result<(WireOutcome, Vec<TraceSpan>), WireError> {
        // Same codec discipline as `call`: the traced submission and its
        // reply round-trip through the frame encoder so loopback tests cover
        // the exact bytes a socket peer would exchange.
        let submit = codec_round_trip(
            &Frame::SubmitTraced {
                request: request.clone(),
                context: *context,
            },
            self.frame_bytes.as_deref(),
        )?;
        let Frame::SubmitTraced { request, context } = submit else {
            return Err(WireError::Protocol("traced frame changed shape".into()));
        };
        let started = Instant::now();
        let reply = match self.service.submit(request) {
            Ok(ticket) => {
                let outcome = ticket.wait();
                let sample = TraceSpan::new(
                    &context.child("sample"),
                    "sample",
                    stage::SAMPLE,
                    outcome.responses.len() as u64,
                    started.elapsed().as_nanos() as u64,
                );
                Frame::TraceReply {
                    outcome: WireOutcome {
                        responses: (*outcome.responses).clone(),
                        from_cache: outcome.from_cache,
                    },
                    spans: vec![sample],
                }
            }
            Err(SubmitError::Busy) => Frame::Busy,
            Err(SubmitError::Closed) => Frame::Closed,
        };
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::TraceReply { outcome, spans } => Ok((outcome, spans)),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        // Same codec discipline as `call`: the request and the reply both
        // round-trip through the frame encoder.
        match codec_round_trip(&Frame::Stats, self.frame_bytes.as_deref())? {
            Frame::Stats => {}
            other => return Err(WireError::Protocol(format!("stats frame became {other:?}"))),
        }
        let reply = Frame::StatsReply(self.service.stats_snapshot());
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::StatsReply(snapshot) => Ok(snapshot),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats_window(&mut self) -> Result<WindowSnapshot, WireError> {
        match codec_round_trip(&Frame::StatsWindow, self.frame_bytes.as_deref())? {
            Frame::StatsWindow => {}
            other => {
                return Err(WireError::Protocol(format!(
                    "stats-window frame became {other:?}"
                )))
            }
        }
        let reply = Frame::StatsWindowReply(self.service.stats_window());
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::StatsWindowReply(snapshot) => Ok(snapshot),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }
}

fn codec_round_trip(frame: &Frame, frame_bytes: Option<&Metric>) -> Result<Frame, WireError> {
    let bytes =
        super::frame::encode_frame(frame).map_err(|err| WireError::Protocol(err.to_string()))?;
    if let Some(metric) = frame_bytes {
        metric.observe(bytes.len() as u64);
    }
    super::frame::decode_frame(&bytes).map_err(|err| WireError::Protocol(err.to_string()))
}

/// Unix-domain-socket transport to a `shard-serve` process.
///
/// Both directions carry a deadline ([`UnixTransport::connect`]'s `timeout`):
/// a wedged or killed shard degrades to a [`WireError::Protocol`] after the
/// timeout, never a hung client.
pub struct UnixTransport {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
    fingerprint: String,
    negotiated: u32,
    frame_bytes: Option<Arc<Metric>>,
}

impl UnixTransport {
    /// Connects and performs the `Hello` handshake, negotiating the wire
    /// version down to the highest level both peers speak.
    ///
    /// The client announces [`WIRE_FORMAT_VERSION`]; the agreed version is
    /// `min(ours, theirs)`.  The connection is refused — with a
    /// [`WireError::Protocol`] naming the mismatch — when the agreed version
    /// falls below [`MIN_WIRE_FORMAT_VERSION`], or when the shard serves a
    /// model whose identity differs from `expected_fingerprint`: a fleet must
    /// never silently mix incompatible shards, because their answers would
    /// differ from the local model's.  Against a v2 shard the connection
    /// succeeds and the v3-only exchanges ([`Transport::call_traced`],
    /// [`Transport::stats_window`]) degrade losslessly (plain `Submit`, a
    /// counted refusal) instead of confusing the peer with unknown frames.
    pub fn connect(
        path: impl AsRef<Path>,
        expected_fingerprint: Option<&str>,
        timeout: Duration,
    ) -> Result<Self, WireError> {
        let stream = UnixStream::connect(path.as_ref())
            .map_err(|err| WireError::Protocol(format!("connect: {err}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|err| WireError::Protocol(format!("set timeout: {err}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|err| WireError::Protocol(format!("clone stream: {err}")))?,
        );
        let mut transport = Self {
            reader,
            writer: BufWriter::new(stream),
            fingerprint: String::new(),
            negotiated: WIRE_FORMAT_VERSION,
            frame_bytes: None,
        };
        transport.send(&Frame::Hello {
            format_version: WIRE_FORMAT_VERSION,
            fingerprint: expected_fingerprint.unwrap_or("").to_string(),
        })?;
        match transport.receive()? {
            Frame::Hello {
                format_version,
                fingerprint,
            } => {
                let agreed = format_version.min(WIRE_FORMAT_VERSION);
                if agreed < MIN_WIRE_FORMAT_VERSION {
                    return Err(WireError::Protocol(format!(
                        "wire version mismatch: shard speaks v{format_version}, \
                         client speaks v{WIRE_FORMAT_VERSION} \
                         (minimum v{MIN_WIRE_FORMAT_VERSION})"
                    )));
                }
                if let Some(expected) = expected_fingerprint {
                    if fingerprint != expected {
                        return Err(WireError::Protocol(format!(
                            "fingerprint mismatch: shard serves {fingerprint:?}, \
                             expected {expected:?}"
                        )));
                    }
                }
                transport.fingerprint = fingerprint;
                transport.negotiated = agreed;
                Ok(transport)
            }
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard refused hello: {msg}"))),
            other => Err(WireError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// The wire version agreed in the handshake: `min` of both peers'
    /// announced versions, never below [`MIN_WIRE_FORMAT_VERSION`].
    pub fn negotiated_version(&self) -> u32 {
        self.negotiated
    }

    /// Records every sent frame's encoded byte length into the registry's
    /// `wire.frame.bytes` histogram when `telemetry` is on.
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.frame_bytes = telemetry.histogram("wire.frame.bytes", MetricClass::Volatile);
        self
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let bytes = super::frame::encode_frame(frame)
            .map_err(|err| WireError::Protocol(err.to_string()))?;
        if let Some(metric) = &self.frame_bytes {
            metric.observe(bytes.len() as u64);
        }
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|err| WireError::Protocol(format!("write frame: {err}")))
    }

    fn receive(&mut self) -> Result<Frame, WireError> {
        match read_frame(&mut self.reader) {
            Ok(frame) => Ok(frame),
            Err(FrameError::Eof) => Err(WireError::Protocol("shard closed the connection".into())),
            Err(err) => Err(WireError::Protocol(err.to_string())),
        }
    }
}

impl Transport for UnixTransport {
    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        self.send(&Frame::Submit(request.clone()))?;
        match self.receive()? {
            Frame::Response(outcome) => Ok(outcome),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn call_traced(
        &mut self,
        request: &RepairRequest,
        context: &TraceContext,
    ) -> Result<(WireOutcome, Vec<TraceSpan>), WireError> {
        if self.negotiated < 3 {
            // A v2 shard has never heard of SubmitTraced; fall back to the
            // plain exchange.  Lossless for determinism: the driver derives
            // every deterministic span field itself.
            return self.call(request).map(|outcome| (outcome, Vec::new()));
        }
        self.send(&Frame::SubmitTraced {
            request: request.clone(),
            context: *context,
        })?;
        match self.receive()? {
            Frame::TraceReply { outcome, spans } => Ok((outcome, spans)),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        self.send(&Frame::Stats)?;
        match self.receive()? {
            Frame::StatsReply(snapshot) => Ok(snapshot),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats_window(&mut self) -> Result<WindowSnapshot, WireError> {
        if self.negotiated < 3 {
            return Err(WireError::Protocol(format!(
                "{LOCAL_REFUSAL}shard negotiated wire v{}, StatsWindow needs v3",
                self.negotiated
            )));
        }
        self.send(&Frame::StatsWindow)?;
        match self.receive()? {
            Frame::StatsWindowReply(snapshot) => Ok(snapshot),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }
}
