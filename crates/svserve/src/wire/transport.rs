//! The [`Transport`] trait and its two implementations: in-process loopback
//! and unix-socket.
//!
//! A transport is one client-side connection to one shard: `call` sends a
//! [`Frame::Submit`] and blocks for the shard's answer.  Both implementations
//! push every message through the same frame codec — the loopback transport
//! encodes and decodes each frame in memory — so a test passing over loopback
//! exercises byte-for-byte the protocol a socket peer would see.

use super::frame::{read_frame, Frame, FrameError, WireOutcome, WIRE_FORMAT_VERSION};
use crate::queue::SubmitError;
use crate::service::{RepairRequest, RepairService};
use crate::telemetry::{Metric, MetricClass, RegistrySnapshot, TelemetryHandle};
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use svmodel::RepairModel;

/// Why a wire submission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The shard's admission control shed the request ([`SubmitError::Busy`]
    /// over the wire); retrying later is reasonable.
    Busy,
    /// The shard's service has shut down; retrying this connection is not.
    Closed,
    /// The connection or protocol failed (timeout, corrupt frame, version or
    /// fingerprint mismatch, dead peer).  The string is diagnostic only.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Busy => write!(f, "shard shed the request (busy)"),
            WireError::Closed => write!(f, "shard service is closed"),
            WireError::Protocol(msg) => write!(f, "wire protocol failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One client-side connection to a shard.
pub trait Transport: Send {
    /// The serving model's identity fingerprint, learned in the `Hello`
    /// handshake.
    fn fingerprint(&self) -> &str;

    /// Submits one request and blocks for the shard's answer.
    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError>;

    /// Asks the shard for a live telemetry snapshot (the `Stats` /
    /// `StatsReply` exchange).  The default refuses, so transports that
    /// predate the exchange degrade to a counted protocol error.
    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        Err(WireError::Protocol(
            "transport does not support the Stats exchange".into(),
        ))
    }
}

/// In-process transport over a local [`RepairService`].
///
/// Every request and response round-trips through the frame codec
/// (`encode_frame`/`decode_frame`) exactly as the socket transport's bytes would, so
/// loopback-backed tests cover the codec, not just the service.
pub struct LoopbackTransport<M: RepairModel + Send + Sync + 'static> {
    service: Arc<RepairService<M>>,
    fingerprint: String,
    frame_bytes: Option<Arc<Metric>>,
}

impl<M: RepairModel + Send + Sync + 'static> LoopbackTransport<M> {
    /// Wraps a local service; `fingerprint` should be the serving model's
    /// [`RepairModel::identity`].
    pub fn new(service: Arc<RepairService<M>>, fingerprint: impl Into<String>) -> Self {
        Self {
            service,
            fingerprint: fingerprint.into(),
            frame_bytes: None,
        }
    }

    /// Records every encoded frame's byte length into the registry's
    /// `wire.frame.bytes` histogram when `telemetry` is on.
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.frame_bytes = telemetry.histogram("wire.frame.bytes", MetricClass::Volatile);
        self
    }
}

impl<M: RepairModel + Send + Sync + 'static> Transport for LoopbackTransport<M> {
    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        // Round-trip the submission through the codec: what the shard "hears"
        // is what a socket peer would have decoded.
        let submit =
            codec_round_trip(&Frame::Submit(request.clone()), self.frame_bytes.as_deref())?;
        let Frame::Submit(request) = submit else {
            return Err(WireError::Protocol("submit frame changed shape".into()));
        };
        let reply = match self.service.submit(request) {
            Ok(ticket) => {
                let outcome = ticket.wait();
                Frame::Response(WireOutcome {
                    responses: (*outcome.responses).clone(),
                    from_cache: outcome.from_cache,
                })
            }
            Err(SubmitError::Busy) => Frame::Busy,
            Err(SubmitError::Closed) => Frame::Closed,
        };
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::Response(outcome) => Ok(outcome),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        // Same codec discipline as `call`: the request and the reply both
        // round-trip through the frame encoder.
        match codec_round_trip(&Frame::Stats, self.frame_bytes.as_deref())? {
            Frame::Stats => {}
            other => return Err(WireError::Protocol(format!("stats frame became {other:?}"))),
        }
        let reply = Frame::StatsReply(self.service.stats_snapshot());
        match codec_round_trip(&reply, self.frame_bytes.as_deref())? {
            Frame::StatsReply(snapshot) => Ok(snapshot),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }
}

fn codec_round_trip(frame: &Frame, frame_bytes: Option<&Metric>) -> Result<Frame, WireError> {
    let bytes =
        super::frame::encode_frame(frame).map_err(|err| WireError::Protocol(err.to_string()))?;
    if let Some(metric) = frame_bytes {
        metric.observe(bytes.len() as u64);
    }
    super::frame::decode_frame(&bytes).map_err(|err| WireError::Protocol(err.to_string()))
}

/// Unix-domain-socket transport to a `shard-serve` process.
///
/// Both directions carry a deadline ([`UnixTransport::connect`]'s `timeout`):
/// a wedged or killed shard degrades to a [`WireError::Protocol`] after the
/// timeout, never a hung client.
pub struct UnixTransport {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
    fingerprint: String,
    frame_bytes: Option<Arc<Metric>>,
}

impl UnixTransport {
    /// Connects and performs the `Hello` handshake.
    ///
    /// The connection is refused — with a [`WireError::Protocol`] naming the
    /// mismatch — when the shard speaks a different [`WIRE_FORMAT_VERSION`] or
    /// serves a model whose identity differs from `expected_fingerprint`:
    /// a fleet must never silently mix incompatible shards, because their
    /// answers would differ from the local model's.
    pub fn connect(
        path: impl AsRef<Path>,
        expected_fingerprint: Option<&str>,
        timeout: Duration,
    ) -> Result<Self, WireError> {
        let stream = UnixStream::connect(path.as_ref())
            .map_err(|err| WireError::Protocol(format!("connect: {err}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|err| WireError::Protocol(format!("set timeout: {err}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|err| WireError::Protocol(format!("clone stream: {err}")))?,
        );
        let mut transport = Self {
            reader,
            writer: BufWriter::new(stream),
            fingerprint: String::new(),
            frame_bytes: None,
        };
        transport.send(&Frame::Hello {
            format_version: WIRE_FORMAT_VERSION,
            fingerprint: expected_fingerprint.unwrap_or("").to_string(),
        })?;
        match transport.receive()? {
            Frame::Hello {
                format_version,
                fingerprint,
            } => {
                if format_version != WIRE_FORMAT_VERSION {
                    return Err(WireError::Protocol(format!(
                        "wire version mismatch: shard speaks v{format_version}, \
                         client speaks v{WIRE_FORMAT_VERSION}"
                    )));
                }
                if let Some(expected) = expected_fingerprint {
                    if fingerprint != expected {
                        return Err(WireError::Protocol(format!(
                            "fingerprint mismatch: shard serves {fingerprint:?}, \
                             expected {expected:?}"
                        )));
                    }
                }
                transport.fingerprint = fingerprint;
                Ok(transport)
            }
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard refused hello: {msg}"))),
            other => Err(WireError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// Records every sent frame's encoded byte length into the registry's
    /// `wire.frame.bytes` histogram when `telemetry` is on.
    pub fn with_telemetry(mut self, telemetry: &TelemetryHandle) -> Self {
        self.frame_bytes = telemetry.histogram("wire.frame.bytes", MetricClass::Volatile);
        self
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let bytes = super::frame::encode_frame(frame)
            .map_err(|err| WireError::Protocol(err.to_string()))?;
        if let Some(metric) = &self.frame_bytes {
            metric.observe(bytes.len() as u64);
        }
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|err| WireError::Protocol(format!("write frame: {err}")))
    }

    fn receive(&mut self) -> Result<Frame, WireError> {
        match read_frame(&mut self.reader) {
            Ok(frame) => Ok(frame),
            Err(FrameError::Eof) => Err(WireError::Protocol("shard closed the connection".into())),
            Err(err) => Err(WireError::Protocol(err.to_string())),
        }
    }
}

impl Transport for UnixTransport {
    fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn call(&mut self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        self.send(&Frame::Submit(request.clone()))?;
        match self.receive()? {
            Frame::Response(outcome) => Ok(outcome),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }

    fn stats(&mut self) -> Result<RegistrySnapshot, WireError> {
        self.send(&Frame::Stats)?;
        match self.receive()? {
            Frame::StatsReply(snapshot) => Ok(snapshot),
            Frame::Busy => Err(WireError::Busy),
            Frame::Closed => Err(WireError::Closed),
            Frame::Err(msg) => Err(WireError::Protocol(format!("shard error: {msg}"))),
            other => Err(WireError::Protocol(format!("unexpected frame {other:?}"))),
        }
    }
}
