//! The shard's side of the socket: a [`ShardServer`] hosting one
//! [`RepairService`] behind a unix listener.
//!
//! One thread accepts connections (non-blocking, polling a shutdown flag);
//! each connection gets a dedicated thread running the frame loop.  A corrupt
//! or hostile client degrades to an `Err` frame plus a counted protocol error
//! and a closed connection — never a panic, never an unbounded allocation
//! (the codec caps frame length before allocating).  Shutdown closes every
//! live connection stream, so connection threads unblock from `read` and the
//! whole server joins deterministically.

use super::frame::{
    read_frame, write_frame, Frame, FrameError, WireOutcome, MIN_WIRE_FORMAT_VERSION,
    WIRE_FORMAT_VERSION,
};
use crate::queue::SubmitError;
use crate::service::RepairService;
use crate::sync::lock_recover;
use crate::trace::{stage, TraceSpan};
use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use svmodel::RepairModel;

/// How long the accept loop sleeps between polls of the listener and the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A unix-socket server exposing one repair service as a shard.
pub struct ShardServer {
    path: PathBuf,
    closed: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<UnixStream>>>,
    protocol_errors: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ShardServer {
    /// Binds `path` and starts serving `service`; `fingerprint` is the
    /// serving model's identity, echoed in every `Hello` handshake.
    ///
    /// A stale socket file from a previous run is removed first (unix sockets
    /// do not unbind themselves on crash).
    pub fn bind<M: RepairModel + Send + Sync + 'static>(
        path: impl Into<PathBuf>,
        service: Arc<RepairService<M>>,
        fingerprint: impl Into<String>,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let closed = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
        let protocol_errors = Arc::new(AtomicU64::new(0));
        let fingerprint = fingerprint.into();
        let accept_thread = {
            let closed = Arc::clone(&closed);
            let connections = Arc::clone(&connections);
            let protocol_errors = Arc::clone(&protocol_errors);
            std::thread::spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !closed.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            if let Ok(clone) = stream.try_clone() {
                                lock_recover(&connections).push(clone);
                            }
                            let service = Arc::clone(&service);
                            let fingerprint = fingerprint.clone();
                            let protocol_errors = Arc::clone(&protocol_errors);
                            workers.push(std::thread::spawn(move || {
                                serve_connection(stream, &service, &fingerprint, &protocol_errors);
                            }));
                        }
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })
        };
        Ok(Self {
            path,
            closed,
            connections,
            protocol_errors,
            accept_thread: Some(accept_thread),
        })
    }

    /// The socket path this server is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Undecodable or out-of-protocol frames received so far; each one also
    /// produced an `Err` frame back to its sender.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every live connection, joins all threads and
    /// removes the socket file.  The wrapped service is untouched — shut it
    /// down separately (it may outlive the listener).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.closed.store(true, Ordering::Release);
        for stream in lock_recover(&self.connections).drain(..) {
            // Unblocks the connection thread's read with a clean EOF.
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// One connection's frame loop: handshake, then `Submit` → answer until EOF.
fn serve_connection<M: RepairModel + Send + Sync + 'static>(
    stream: UnixStream,
    service: &RepairService<M>,
    fingerprint: &str,
    protocol_errors: &AtomicU64,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Handshake: the first frame must be a compatible Hello.  The agreed
    // version is min(client, ours); a client announcing a *newer* version is
    // fine (it negotiates down to ours), only one below the floor is refused.
    match read_frame(&mut reader) {
        Ok(Frame::Hello { format_version, .. }) if format_version >= MIN_WIRE_FORMAT_VERSION => {
            let hello = Frame::Hello {
                format_version: format_version.min(WIRE_FORMAT_VERSION),
                fingerprint: fingerprint.to_string(),
            };
            if write_frame(&mut writer, &hello).is_err() {
                return;
            }
        }
        Ok(Frame::Hello { format_version, .. }) => {
            protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut writer,
                &Frame::Err(format!(
                    "wire version mismatch: client speaks v{format_version}, \
                     shard speaks v{WIRE_FORMAT_VERSION} \
                     (minimum v{MIN_WIRE_FORMAT_VERSION})"
                )),
            );
            return;
        }
        Ok(other) => {
            protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut writer,
                &Frame::Err(format!("expected Hello, got {other:?}")),
            );
            return;
        }
        Err(_) => {
            protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(&mut writer, &Frame::Err("undecodable hello".into()));
            return;
        }
    }
    loop {
        let reply = match read_frame(&mut reader) {
            Ok(Frame::Submit(request)) => match service.submit(request) {
                Ok(ticket) => {
                    let outcome = ticket.wait();
                    Frame::Response(WireOutcome {
                        responses: (*outcome.responses).clone(),
                        from_cache: outcome.from_cache,
                    })
                }
                Err(SubmitError::Busy) => Frame::Busy,
                Err(SubmitError::Closed) => Frame::Closed,
            },
            Ok(Frame::SubmitTraced { request, context }) => {
                let started = Instant::now();
                match service.submit(request) {
                    Ok(ticket) => {
                        let outcome = ticket.wait();
                        // Adopt the remote parent: the sample span's
                        // deterministic fields are pure functions of the
                        // driver-sent context, so the driver's own copy of
                        // this span merges with it byte-for-byte — only the
                        // shard-measured wall time is new information.
                        let sample = TraceSpan::new(
                            &context.child("sample"),
                            "sample",
                            stage::SAMPLE,
                            outcome.responses.len() as u64,
                            started.elapsed().as_nanos() as u64,
                        );
                        Frame::TraceReply {
                            outcome: WireOutcome {
                                responses: (*outcome.responses).clone(),
                                from_cache: outcome.from_cache,
                            },
                            spans: vec![sample],
                        }
                    }
                    Err(SubmitError::Busy) => Frame::Busy,
                    Err(SubmitError::Closed) => Frame::Closed,
                }
            }
            Ok(Frame::Stats) => Frame::StatsReply(service.stats_snapshot()),
            Ok(Frame::StatsWindow) => Frame::StatsWindowReply(service.stats_window()),
            Ok(other) => {
                protocol_errors.fetch_add(1, Ordering::Relaxed);
                Frame::Err(format!("unexpected frame {other:?}"))
            }
            Err(FrameError::Eof) => return,
            Err(err) => {
                // Oversized, checksum, codec, or I/O failure: the stream may
                // be desynchronized, so answer once and hang up.
                protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut writer, &Frame::Err(err.to_string()));
                return;
            }
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}
