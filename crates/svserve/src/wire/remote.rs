//! The client side of the fabric: one [`RemoteShard`] per connection, a
//! [`ShardFleet`] spreading requests over them by content hash.
//!
//! ## Placement
//!
//! [`shard_for_key`] is a pure function of request content and shard count —
//! the same recipe as [`crate::ab_arm`], salted differently so A/B arm and
//! shard placement stay independent.  Placement never consults load, so
//! per-shard caches stay disjoint (each key always lands on the same shard)
//! and a re-run replays against warm caches byte-for-byte.
//!
//! ## Degradation
//!
//! Every failure is counted, never thrown across the fleet: a shard that
//! refuses connection occupies a [`Dead`](ShardSlot) slot whose submissions
//! fail fast; a [`WireError::Busy`] is tallied in
//! [`FleetMetrics::shed_busy`] and journaled exactly like a local shed; a
//! protocol failure poisons only that shard's slot.  The fleet itself never
//! panics or hangs on a sick peer.

use super::frame::WireOutcome;
use super::transport::{is_local_refusal, Transport, UnixTransport, WireError};
use crate::cache::CaseKey;
use crate::journal::{JournalEvent, TracerHandle};
use crate::metrics::render_block;
use crate::service::{splitmix64, RepairRequest};
use crate::sync::lock_recover;
use crate::telemetry::{MetricClass, RegistrySnapshot, WindowSnapshot};
use crate::trace::{TraceContext, TraceSpan};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Salt folded into [`shard_for_key`]; distinct from the A/B salt so shard
/// placement and experiment arms are independent hash dimensions.
const PLACEMENT_SALT: u64 = 0x5AAD_F1EE_791A_CE00;

/// Deterministic shard placement: a pure function of request content and
/// shard count, mirroring [`crate::ab_arm`].
///
/// Placement by content (not load) keeps per-shard caches disjoint: every
/// occurrence of a key — this run or the next — lands on the same shard.
pub fn shard_for_key(key: CaseKey, shards: usize) -> usize {
    (splitmix64(key.fold64() ^ PLACEMENT_SALT) % shards.max(1) as u64) as usize
}

/// One connected shard: a [`Transport`] behind a mutex (calls are
/// strictly request/response, so one in-flight call per connection).
pub struct RemoteShard {
    inner: Mutex<RemoteInner>,
}

struct RemoteInner {
    transport: Box<dyn Transport>,
    /// Set after a protocol failure: the stream may be desynchronized, so all
    /// later submissions fail fast instead of corrupting frames.
    dead: Option<String>,
}

impl RemoteShard {
    /// Wraps a connected transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self {
            inner: Mutex::new(RemoteInner {
                transport,
                dead: None,
            }),
        }
    }

    /// Submits one request, blocking for the shard's answer.
    pub fn submit(&self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        let mut inner = lock_recover(&self.inner);
        if let Some(reason) = &inner.dead {
            return Err(WireError::Protocol(format!(
                "shard connection failed earlier: {reason}"
            )));
        }
        let result = inner.transport.call(request);
        if let Err(WireError::Protocol(reason)) = &result {
            // Busy/Closed leave the stream consistent; a protocol failure may
            // not (half-read frame, dead peer), so retire the connection.
            inner.dead = Some(reason.clone());
        }
        result
    }

    /// Submits one request carrying a trace context, blocking for the answer
    /// plus the spans the shard recorded under the remote parent.
    ///
    /// Same retirement discipline as [`RemoteShard::submit`]; against a v2
    /// peer the transport degrades to the plain exchange and the span vector
    /// comes back empty.
    pub fn submit_traced(
        &self,
        request: &RepairRequest,
        context: &TraceContext,
    ) -> Result<(WireOutcome, Vec<TraceSpan>), WireError> {
        let mut inner = lock_recover(&self.inner);
        if let Some(reason) = &inner.dead {
            return Err(WireError::Protocol(format!(
                "shard connection failed earlier: {reason}"
            )));
        }
        let result = inner.transport.call_traced(request, context);
        if let Err(WireError::Protocol(reason)) = &result {
            inner.dead = Some(reason.clone());
        }
        result
    }

    /// The shard's model fingerprint, learned at the `Hello` handshake.
    pub fn fingerprint(&self) -> String {
        lock_recover(&self.inner)
            .transport
            .fingerprint()
            .to_string()
    }

    /// Requests the shard's telemetry snapshot, blocking for the answer.
    ///
    /// Same retirement discipline as [`RemoteShard::submit`]: a protocol
    /// failure (which includes a corrupt `StatsReply` frame) poisons the
    /// connection so later calls fail fast instead of reading desynchronized
    /// bytes.
    pub fn stats(&self) -> Result<RegistrySnapshot, WireError> {
        let mut inner = lock_recover(&self.inner);
        if let Some(reason) = &inner.dead {
            return Err(WireError::Protocol(format!(
                "shard connection failed earlier: {reason}"
            )));
        }
        let result = inner.transport.stats();
        if let Err(err @ WireError::Protocol(reason)) = &result {
            if !is_local_refusal(err) {
                inner.dead = Some(reason.clone());
            }
        }
        result
    }

    /// Requests the shard's time-windowed telemetry (`StatsWindow`
    /// exchange), blocking for the answer.  Same retirement discipline as
    /// [`RemoteShard::stats`] — except a *local* refusal (the negotiated
    /// version predates the exchange; no bytes were sent) leaves the healthy
    /// connection alone, so polling a v2 shard for windows never kills its
    /// submit path.
    pub fn stats_window(&self) -> Result<WindowSnapshot, WireError> {
        let mut inner = lock_recover(&self.inner);
        if let Some(reason) = &inner.dead {
            return Err(WireError::Protocol(format!(
                "shard connection failed earlier: {reason}"
            )));
        }
        let result = inner.transport.stats_window();
        if let Err(err @ WireError::Protocol(reason)) = &result {
            if !is_local_refusal(err) {
                inner.dead = Some(reason.clone());
            }
        }
        result
    }
}

/// One fleet slot: a live connection or a tombstone explaining why not.
enum ShardSlot {
    Connected(RemoteShard),
    /// Connect (or a later protocol exchange) failed; submissions placed here
    /// degrade to counted errors instead of panics or hangs.
    Dead(String),
}

#[derive(Default)]
struct FleetRecorder {
    submitted: AtomicU64,
    completed: AtomicU64,
    remote_cache_hits: AtomicU64,
    shed_busy: AtomicU64,
    wire_errors: AtomicU64,
    journal_events: AtomicU64,
}

/// A set of shards behind one submit surface, with content-hash placement.
pub struct ShardFleet {
    slots: Vec<ShardSlot>,
    recorder: Arc<FleetRecorder>,
    tracer: TracerHandle,
}

impl ShardFleet {
    /// Builds a fleet over already-connected transports (loopback or unix).
    pub fn new(transports: Vec<Box<dyn Transport>>) -> Self {
        Self {
            slots: transports
                .into_iter()
                .map(|transport| ShardSlot::Connected(RemoteShard::new(transport)))
                .collect(),
            recorder: Arc::new(FleetRecorder::default()),
            tracer: TracerHandle::off(),
        }
    }

    /// Connects one [`UnixTransport`] per socket path.
    ///
    /// A shard that refuses connection (or fails the version/fingerprint
    /// handshake) becomes a dead slot — the fleet still constructs, and
    /// requests placed on the dead shard fail fast as counted
    /// [`WireError::Protocol`] outcomes.  Requiring every shard up to build a
    /// fleet would turn one crashed process into a fleet-wide outage.
    pub fn connect_unix(
        sockets: &[impl AsRef<Path>],
        expected_fingerprint: Option<&str>,
        timeout: Duration,
    ) -> Self {
        let slots = sockets
            .iter()
            .map(
                |path| match UnixTransport::connect(path, expected_fingerprint, timeout) {
                    Ok(transport) => ShardSlot::Connected(RemoteShard::new(Box::new(transport))),
                    Err(err) => {
                        ShardSlot::Dead(format!("{}: {err}", path.as_ref().to_string_lossy()))
                    }
                },
            )
            .collect();
        Self {
            slots,
            recorder: Arc::new(FleetRecorder::default()),
            tracer: TracerHandle::off(),
        }
    }

    /// Returns the fleet with the journal tracer replaced; wire sheds are then
    /// journaled exactly like local pool sheds
    /// ([`JournalEvent::Shed`] with pool `"wire"`).
    pub fn with_tracer(mut self, tracer: TracerHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Number of shards (live + dead).
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The shard index `request` places onto.
    pub fn placement(&self, request: &RepairRequest) -> usize {
        shard_for_key(request.key(), self.slots.len())
    }

    /// Submits one request to its content-placed shard, blocking for the
    /// answer.  Every failure is counted in the fleet metrics; none panic.
    pub fn submit(&self, request: &RepairRequest) -> Result<WireOutcome, WireError> {
        self.recorder.submitted.fetch_add(1, Ordering::Relaxed);
        let shard = self.placement(request);
        let result = match &self.slots[shard] {
            ShardSlot::Connected(remote) => remote.submit(request),
            ShardSlot::Dead(reason) => Err(WireError::Protocol(format!(
                "shard {shard} is down: {reason}"
            ))),
        };
        match &result {
            Ok(outcome) => {
                self.recorder.completed.fetch_add(1, Ordering::Relaxed);
                if outcome.from_cache {
                    self.recorder
                        .remote_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(WireError::Busy) => {
                self.recorder.shed_busy.fetch_add(1, Ordering::Relaxed);
                if self.tracer.is_on() {
                    // Same lifecycle as a local shed (`ServiceCore::begin_submit`):
                    // the diagnostic keys on the request's content hash.
                    self.recorder.journal_events.fetch_add(1, Ordering::Relaxed);
                    self.tracer.diagnostic(
                        request.key().fold64(),
                        JournalEvent::Shed {
                            pool: "wire".to_string(),
                        },
                    );
                }
            }
            Err(WireError::Closed) | Err(WireError::Protocol(_)) => {
                self.recorder.wire_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Submits one request with a trace context to its content-placed shard,
    /// blocking for the answer plus the shard's spans.  Accounting is
    /// identical to [`ShardFleet::submit`]; the span vector is empty when the
    /// shard negotiated wire v2.
    pub fn submit_traced(
        &self,
        request: &RepairRequest,
        context: &TraceContext,
    ) -> Result<(WireOutcome, Vec<TraceSpan>), WireError> {
        self.recorder.submitted.fetch_add(1, Ordering::Relaxed);
        let shard = self.placement(request);
        let result = match &self.slots[shard] {
            ShardSlot::Connected(remote) => remote.submit_traced(request, context),
            ShardSlot::Dead(reason) => Err(WireError::Protocol(format!(
                "shard {shard} is down: {reason}"
            ))),
        };
        match &result {
            Ok((outcome, _spans)) => {
                self.recorder.completed.fetch_add(1, Ordering::Relaxed);
                if outcome.from_cache {
                    self.recorder
                        .remote_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(WireError::Busy) => {
                self.recorder.shed_busy.fetch_add(1, Ordering::Relaxed);
                if self.tracer.is_on() {
                    self.recorder.journal_events.fetch_add(1, Ordering::Relaxed);
                    self.tracer.diagnostic(
                        request.key().fold64(),
                        JournalEvent::Shed {
                            pool: "wire".to_string(),
                        },
                    );
                }
            }
            Err(WireError::Closed) | Err(WireError::Protocol(_)) => {
                self.recorder.wire_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Asks every live shard for its telemetry snapshot and merges them into
    /// one fleet-wide view (the `Stats` wire exchange per shard).
    ///
    /// A shard that fails the exchange contributes an error string instead of
    /// a snapshot — and a counted wire error — so one sick peer never hides
    /// the rest of the fleet's numbers.
    pub fn fleet_stats(&self) -> FleetStats {
        let mut merged = RegistrySnapshot::new();
        let shards = self
            .slots
            .iter()
            .enumerate()
            .map(|(index, slot)| {
                let (fingerprint, result) = match slot {
                    ShardSlot::Connected(remote) => {
                        let fingerprint = remote.fingerprint();
                        let result = remote.stats().map_err(|err| {
                            self.recorder.wire_errors.fetch_add(1, Ordering::Relaxed);
                            err.to_string()
                        });
                        (fingerprint, result)
                    }
                    ShardSlot::Dead(reason) => (
                        String::new(),
                        Err(format!("shard {index} is down: {reason}")),
                    ),
                };
                if let Ok(snapshot) = &result {
                    merged.merge(snapshot);
                }
                ShardStats {
                    shard: index,
                    fingerprint,
                    result,
                }
            })
            .collect();
        FleetStats { shards, merged }
    }

    /// Asks every shard for its time-windowed telemetry (`StatsWindow` per
    /// shard), in shard order.  One entry per slot; a shard that fails the
    /// exchange — dead, v2, or mid-frame corruption — contributes an error
    /// string and (for real wire failures) a counted wire error, never a
    /// panic.  This is the poll `svtop` runs on every refresh.
    pub fn fleet_windows(&self) -> Vec<ShardWindow> {
        self.slots
            .iter()
            .enumerate()
            .map(|(index, slot)| {
                let (fingerprint, result) = match slot {
                    ShardSlot::Connected(remote) => {
                        let fingerprint = remote.fingerprint();
                        let result = remote.stats_window().map_err(|err| {
                            if !super::transport::is_local_refusal(&err) {
                                self.recorder.wire_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            err.to_string()
                        });
                        (fingerprint, result)
                    }
                    ShardSlot::Dead(reason) => (
                        String::new(),
                        Err(format!("shard {index} is down: {reason}")),
                    ),
                };
                ShardWindow {
                    shard: index,
                    fingerprint,
                    result,
                }
            })
            .collect()
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> FleetMetrics {
        FleetMetrics {
            shards: self.slots.len(),
            dead_shards: self
                .slots
                .iter()
                .filter(|slot| matches!(slot, ShardSlot::Dead(_)))
                .count(),
            submitted: self.recorder.submitted.load(Ordering::Relaxed),
            completed: self.recorder.completed.load(Ordering::Relaxed),
            remote_cache_hits: self.recorder.remote_cache_hits.load(Ordering::Relaxed),
            shed_busy: self.recorder.shed_busy.load(Ordering::Relaxed),
            wire_errors: self.recorder.wire_errors.load(Ordering::Relaxed),
            journal_events: self.recorder.journal_events.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`ShardFleet`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FleetMetrics {
    /// Total shard slots.
    pub shards: usize,
    /// Slots whose connection failed (at connect or later).
    pub dead_shards: usize,
    /// Requests submitted through the fleet.
    pub submitted: u64,
    /// Requests that returned a response.
    pub completed: u64,
    /// Completed requests served from a shard's warm response cache.
    pub remote_cache_hits: u64,
    /// Requests shed by a shard's admission control (`Busy` over the wire).
    pub shed_busy: u64,
    /// Requests that failed on the wire (dead shard, protocol error, closed).
    pub wire_errors: u64,
    /// Diagnostics emitted to an installed tracer; zero while journaling is off.
    pub journal_events: u64,
}

impl FleetMetrics {
    /// The aligned rows behind [`FleetMetrics::render`].
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "shards",
                format!("{:>10} ({} dead)", self.shards, self.dead_shards),
            ),
            ("submitted", format!("{:>10}", self.submitted)),
            (
                "completed",
                format!(
                    "{:>10} ({} remote cache hits)",
                    self.completed, self.remote_cache_hits
                ),
            ),
            ("shed busy", format!("{:>10}", self.shed_busy)),
            ("wire errors", format!("{:>10}", self.wire_errors)),
            (
                "journal",
                format!("{:>10} events emitted", self.journal_events),
            ),
        ]
    }

    /// Renders the snapshot through the shared [`render_block`] formatter.
    pub fn render(&self) -> String {
        render_block("fleet metrics", &self.rows())
    }

    /// Exports the counters into a registry snapshot under `prefix`
    /// (e.g. `service.fleet`).
    ///
    /// Submission and completion totals are content-derived for a fixed
    /// workload, so they carry [`MetricClass::Deterministic`]; everything
    /// timing- or failure-dependent (cache warmth, sheds, wire errors) is
    /// [`MetricClass::Volatile`].
    pub fn export(&self, prefix: &str, out: &mut RegistrySnapshot) {
        let det = MetricClass::Deterministic;
        let vol = MetricClass::Volatile;
        out.upsert_gauge(&format!("{prefix}.shards"), vol, self.shards as u64);
        out.upsert_gauge(
            &format!("{prefix}.dead_shards"),
            vol,
            self.dead_shards as u64,
        );
        out.upsert_counter(&format!("{prefix}.submitted"), det, self.submitted);
        out.upsert_counter(&format!("{prefix}.completed"), det, self.completed);
        out.upsert_counter(
            &format!("{prefix}.remote_cache_hits"),
            vol,
            self.remote_cache_hits,
        );
        out.upsert_counter(&format!("{prefix}.shed_busy"), vol, self.shed_busy);
        out.upsert_counter(&format!("{prefix}.wire_errors"), vol, self.wire_errors);
        out.upsert_counter(
            &format!("{prefix}.journal.events"),
            vol,
            self.journal_events,
        );
    }
}

/// Live introspection of a whole fleet: every shard's telemetry snapshot plus
/// their merged fleet-wide view.  Built by [`ShardFleet::fleet_stats`].
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// One entry per fleet slot, in shard order.
    pub shards: Vec<ShardStats>,
    /// All successful snapshots merged: counters and gauges sum, histograms
    /// pool their buckets, so percentiles read fleet-wide.
    pub merged: RegistrySnapshot,
}

impl FleetStats {
    /// Shards that answered the exchange.
    pub fn live(&self) -> usize {
        self.shards
            .iter()
            .filter(|shard| shard.result.is_ok())
            .count()
    }
}

/// One shard's answer to the `Stats` exchange.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Fleet slot index (also the placement index).
    pub shard: usize,
    /// The shard's model fingerprint; empty for slots that never connected.
    pub fingerprint: String,
    /// The snapshot, or why the exchange failed.
    pub result: Result<RegistrySnapshot, String>,
}

/// One shard's answer to the `StatsWindow` exchange
/// ([`ShardFleet::fleet_windows`]).
#[derive(Debug, Clone)]
pub struct ShardWindow {
    /// Fleet slot index (also the placement index).
    pub shard: usize,
    /// The shard's model fingerprint; empty for slots that never connected.
    pub fingerprint: String,
    /// The windowed snapshot, or why the exchange failed.
    pub result: Result<WindowSnapshot, String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::case_key;
    use svmodel::CaseInput;

    fn key(tag: usize) -> CaseKey {
        case_key(
            &CaseInput {
                spec: format!("spec {tag}"),
                buggy_source: format!("module m{tag}(); endmodule"),
                logs: String::new(),
            },
            3,
            0.2,
        )
    }

    #[test]
    fn placement_is_deterministic_and_content_derived() {
        for shards in [1, 2, 4, 7] {
            for tag in 0..64 {
                let a = shard_for_key(key(tag), shards);
                let b = shard_for_key(key(tag), shards);
                assert_eq!(a, b, "placement must be a pure function");
                assert!(a < shards);
            }
        }
        // Multiple shards all see traffic on a modest workload.
        let placed: std::collections::BTreeSet<usize> =
            (0..64).map(|tag| shard_for_key(key(tag), 4)).collect();
        assert_eq!(placed.len(), 4, "all 4 shards receive work");
    }

    #[test]
    fn placement_differs_from_ab_arm() {
        // Same fold-and-mix recipe, different salt: a request's experiment arm
        // must not determine its shard.
        let disagreements = (0..64)
            .filter(|&tag| shard_for_key(key(tag), 2) != crate::ab_arm(key(tag), 2))
            .count();
        assert!(disagreements > 0, "placement must not alias the A/B split");
    }

    #[test]
    fn zero_shards_clamps_instead_of_dividing_by_zero() {
        assert_eq!(shard_for_key(key(1), 0), 0);
    }
}
