//! The distributed shard fabric: a versioned wire protocol pushing the shard
//! boundary across processes.
//!
//! ## Protocol
//!
//! Every message is one length-prefixed, checksummed frame
//! (the `frame` codec): `[u32 len][u64 fnv64 checksum][JSON body]`.  A connection
//! opens with a `Hello{format_version, fingerprint}` exchange — version skew
//! or a model-identity mismatch refuses the connection instead of silently
//! serving different answers — then runs `Submit` → `Response`/`Busy`/
//! `Closed`/`Err` request-reply.  A `Stats` request answers with a
//! `StatsReply` carrying the shard's live telemetry snapshot
//! ([`crate::RegistrySnapshot`]), which [`ShardFleet::fleet_stats`] merges
//! fleet-wide.  The declared length is capped
//! ([`MAX_FRAME_LEN`]) *before* allocation and the checksum is verified
//! *before* parsing, so a corrupt peer degrades to a counted error, never a
//! panic or an unbounded allocation.
//!
//! ## Transports
//!
//! * [`LoopbackTransport`] — in process, every frame still encoded and
//!   decoded, for deterministic tests that cover the codec;
//! * [`UnixTransport`] — `std::os::unix::net` stream to a
//!   [`ShardServer`] (or the `shard-serve` binary), with read/write
//!   timeouts so a killed shard can never hang a client.
//!
//! ## Placement and determinism
//!
//! [`shard_for_key`] places each request by content hash — a pure function of
//! content and shard count, mirroring [`crate::ab_arm`] — so per-shard caches
//! stay disjoint and a [`ShardFleet`] evaluation is byte-identical to the
//! in-process run at any shard count, warm or cold.  `Busy` survives the
//! wire: the fleet maps it back to the same shed accounting
//! ([`FleetMetrics::shed_busy`], `JournalEvent::Shed{pool:"wire"}`) a local
//! pool uses.

mod frame;
mod remote;
mod server;
mod transport;

pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, WireOutcome,
    MAX_FRAME_LEN, MIN_WIRE_FORMAT_VERSION, WIRE_FORMAT_VERSION,
};
pub use remote::{
    shard_for_key, FleetMetrics, FleetStats, RemoteShard, ShardFleet, ShardStats, ShardWindow,
};
pub use server::ShardServer;
pub use transport::{LoopbackTransport, Transport, UnixTransport, WireError};

/// Environment variable listing shard socket paths (comma-separated); when
/// set, `assertsolver::evaluate_model` runs against the remote fleet instead
/// of an in-process service.
pub const SHARD_SOCKETS_ENV: &str = "ASSERTSOLVER_SHARD_SOCKETS";

/// Reads the shard socket list from the environment, if set and non-empty.
pub fn env_shard_sockets() -> Option<Vec<String>> {
    let raw = std::env::var(SHARD_SOCKETS_ENV).ok()?;
    let sockets: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|socket| !socket.is_empty())
        .map(str::to_string)
        .collect();
    if sockets.is_empty() {
        None
    } else {
        Some(sockets)
    }
}
