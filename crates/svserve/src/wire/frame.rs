//! The frame codec: length-prefixed, checksummed, versioned JSON frames.
//!
//! Every message on a shard connection is one frame:
//!
//! ```text
//! [ u32 body length (LE) ][ u64 FNV-1a checksum of body (LE) ][ body ]
//! ```
//!
//! The body is the [`Frame`] serialized through the vendored serde/serde_json
//! — the same codec every persisted artifact in this workspace uses, so the
//! bytes are deterministic and diffable.  Two properties make a corrupt or
//! hostile peer survivable:
//!
//! * the declared length is validated against [`MAX_FRAME_LEN`] **before** any
//!   allocation, so a garbage header degrades to a counted error instead of an
//!   unbounded `Vec` reservation;
//! * the checksum is validated before the body is parsed, so truncated or
//!   bit-flipped frames fail fast with [`FrameError::Checksum`] rather than
//!   surfacing as confusing JSON errors (or worse, parsing successfully).

use crate::persist::fnv64;
use crate::service::RepairRequest;
use crate::telemetry::{RegistrySnapshot, WindowSnapshot};
use crate::trace::{TraceContext, TraceSpan};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use svmodel::Response;

/// Version of the wire format the sender speaks.  Since v3 the `Hello`
/// exchange **negotiates**: both sides agree on
/// `min(client version, shard version)` and refuse only when that falls below
/// [`MIN_WIRE_FORMAT_VERSION`] — so a v3 client degrades losslessly against a
/// v2 shard (it sends plain [`Frame::Submit`] and simply collects no remote
/// spans) instead of refusing the fleet.
///
/// Version 2 added the [`Frame::Stats`] / [`Frame::StatsReply`] introspection
/// exchange.  Version 3 added distributed tracing
/// ([`Frame::SubmitTraced`] / [`Frame::TraceReply`]) and windowed telemetry
/// ([`Frame::StatsWindow`] / [`Frame::StatsWindowReply`]).
pub const WIRE_FORMAT_VERSION: u32 = 3;

/// Oldest wire version this build still speaks.  Negotiation lands on
/// `min(client, shard)`; anything below this floor is refused in the `Hello`
/// exchange (v1 predates the `Stats` frames the fleet tooling assumes).
pub const MIN_WIRE_FORMAT_VERSION: u32 = 2;

/// Hard cap on a frame body's declared length.  Larger declarations are
/// rejected before allocation: a corrupt peer must never drive the process
/// into an unbounded `Vec::with_capacity`.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// A served outcome in wire shape: the response set plus cache provenance.
///
/// Timing fields of [`crate::RepairOutcome`] deliberately do not cross the
/// wire — they are volatile (wall-clock) and would break byte-identical
/// comparisons between local and remote runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOutcome {
    /// The sampled responses, in sampling order.
    pub responses: Vec<Response>,
    /// Whether the shard served the answer from its response cache.
    pub from_cache: bool,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Connection opener, sent by both sides: the wire format version plus the
    /// serving model's identity fingerprint, so a client never submits to a
    /// shard whose answers would differ from its own model.
    Hello {
        /// The sender's [`WIRE_FORMAT_VERSION`].
        format_version: u32,
        /// The serving model's identity ([`svmodel::RepairModel::identity`]).
        fingerprint: String,
    },
    /// A repair request, client → shard.
    Submit(RepairRequest),
    /// A repair request carrying its [`TraceContext`], client → shard
    /// (v3+).  The shard emits its spans under the remote parent and answers
    /// with [`Frame::TraceReply`]; on a v2-negotiated connection the client
    /// falls back to plain [`Frame::Submit`] — the request is lossless, only
    /// the trace propagation is dropped.
    SubmitTraced {
        /// The request, identical in shape to a plain `Submit`.
        request: RepairRequest,
        /// The driver-side parent context the shard's spans adopt.
        context: TraceContext,
    },
    /// The served answer, shard → client.
    Response(WireOutcome),
    /// The served answer plus the spans the shard recorded while serving it,
    /// shard → client (the reply to [`Frame::SubmitTraced`], v3+).
    TraceReply {
        /// The served outcome, identical in shape to a plain `Response`.
        outcome: WireOutcome,
        /// Shard-side spans, parented under the submitted context.
        spans: Vec<TraceSpan>,
    },
    /// Admission control shed the request (`SubmitError::Busy` over the wire).
    Busy,
    /// Live-introspection request, client → shard: ask the shard for a
    /// telemetry snapshot.  Carries no payload.
    Stats,
    /// The shard's telemetry snapshot (service counters exported into registry
    /// form, merged with the live registry when the shard runs with telemetry
    /// on), shard → client.
    StatsReply(RegistrySnapshot),
    /// Windowed-telemetry request, client → shard (v3+): ask for the
    /// time-window ring instead of the cumulative registry.
    StatsWindow,
    /// The shard's window ring, shard → client (the reply to
    /// [`Frame::StatsWindow`]).
    StatsWindowReply(WindowSnapshot),
    /// The shard's service has shut down.
    Closed,
    /// Protocol-level failure (version mismatch, undecodable frame, …); the
    /// string is diagnostic only.
    Err(String),
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The underlying stream failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The header declared a body longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared body length.
        declared: u64,
    },
    /// The body did not match its checksum.
    Checksum,
    /// The body failed to serialize or deserialize.
    Codec(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(err) => write!(f, "wire i/o error: {err}"),
            FrameError::Oversized { declared } => write!(
                f,
                "frame declares {declared} bytes, over the {MAX_FRAME_LEN}-byte cap"
            ),
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
            FrameError::Codec(msg) => write!(f, "frame codec error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// Serializes `frame` into the length-prefixed, checksummed wire form.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    let body = serde_json::to_string(frame).map_err(|err| FrameError::Codec(err.to_string()))?;
    let body = body.into_bytes();
    if body.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: body.len() as u64,
        });
    }
    let mut bytes = Vec::with_capacity(12 + body.len());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&fnv64(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    Ok(bytes)
}

/// Parses one frame from `bytes` (header + checksum + body, nothing trailing).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < 12 {
        return Err(FrameError::Codec(format!(
            "frame too short: {} bytes",
            bytes.len()
        )));
    }
    let declared = u32::from_le_bytes(bytes[0..4].try_into().expect("4 header bytes")) as u64;
    if declared > MAX_FRAME_LEN as u64 {
        return Err(FrameError::Oversized { declared });
    }
    let checksum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 checksum bytes"));
    let body = &bytes[12..];
    if body.len() as u64 != declared {
        return Err(FrameError::Codec(format!(
            "declared {declared} body bytes, got {}",
            body.len()
        )));
    }
    verify_and_parse(body, checksum)
}

/// Writes one frame to `writer`, flushing it.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode_frame(frame)?;
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame from `reader`.
///
/// A clean close before the first header byte is [`FrameError::Eof`]; an
/// oversized declaration is rejected **before** the body buffer is allocated.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; 12];
    read_exact_or_eof(reader, &mut header)?;
    let declared = u64::from(u32::from_le_bytes(
        header[0..4].try_into().expect("4 header bytes"),
    ));
    if declared > MAX_FRAME_LEN as u64 {
        return Err(FrameError::Oversized { declared });
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 checksum bytes"));
    let mut body = vec![0u8; declared as usize];
    reader.read_exact(&mut body)?;
    verify_and_parse(&body, checksum)
}

fn verify_and_parse(body: &[u8], checksum: u64) -> Result<Frame, FrameError> {
    if fnv64(body) != checksum {
        return Err(FrameError::Checksum);
    }
    let text = std::str::from_utf8(body).map_err(|err| FrameError::Codec(err.to_string()))?;
    serde_json::from_str(text).map_err(|err| FrameError::Codec(err.to_string()))
}

/// `read_exact` that reports a clean close *before the first byte* as
/// [`FrameError::Eof`] (the peer hung up between frames) and everything else —
/// including a close mid-header — as an I/O error.
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmodel::CaseInput;

    fn request() -> RepairRequest {
        RepairRequest::new(
            CaseInput {
                spec: "spec 1".into(),
                buggy_source: "module m(); endmodule".into(),
                logs: "assertion a1 failed".into(),
            },
            3,
            0.2,
        )
    }

    fn stats_snapshot() -> RegistrySnapshot {
        let registry = crate::telemetry::MetricsRegistry::new();
        registry
            .counter(
                "service.submitted",
                crate::telemetry::MetricClass::Deterministic,
            )
            .add(12);
        registry
            .histogram(
                "service.repair.solve",
                crate::telemetry::MetricClass::Volatile,
            )
            .observe(123_456);
        registry.snapshot()
    }

    fn trace_context() -> crate::trace::TraceContext {
        crate::trace::TraceContext::root(request().key(), 7)
    }

    fn window_snapshot() -> crate::telemetry::WindowSnapshot {
        let windows = crate::telemetry::TelemetryWindows::new(4);
        windows.record_submit();
        windows.record_complete(123_456);
        windows.snapshot(1)
    }

    #[test]
    fn every_frame_variant_round_trips() {
        let sample_response = Response {
            bug_line_number: 4,
            buggy_line: "assert (x);".into(),
            fixed_line: "assert (y);".into(),
            cot: None,
        };
        let context = trace_context();
        let frames = vec![
            Frame::Hello {
                format_version: WIRE_FORMAT_VERSION,
                fingerprint: "base:3".into(),
            },
            Frame::Submit(request()),
            Frame::SubmitTraced {
                request: request(),
                context,
            },
            Frame::Response(WireOutcome {
                responses: vec![sample_response.clone()],
                from_cache: true,
            }),
            Frame::TraceReply {
                outcome: WireOutcome {
                    responses: vec![sample_response],
                    from_cache: false,
                },
                spans: vec![crate::trace::TraceSpan::new(
                    &context.child("sample"),
                    "sample",
                    crate::trace::stage::SAMPLE,
                    3,
                    42,
                )],
            },
            Frame::Busy,
            Frame::Stats,
            Frame::StatsReply(stats_snapshot()),
            Frame::StatsReply(RegistrySnapshot::new()),
            Frame::StatsWindow,
            Frame::StatsWindowReply(window_snapshot()),
            Frame::StatsWindowReply(crate::telemetry::WindowSnapshot::default()),
            Frame::Closed,
            Frame::Err("boom".into()),
        ];
        for frame in frames {
            let bytes = encode_frame(&frame).expect("encode");
            assert_eq!(decode_frame(&bytes).expect("decode"), frame);
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).expect("read"), frame);
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        // A header declaring ~4 GiB must fail with Oversized, not attempt the
        // allocation (the body is absent, so a buggy path would OOM or hang).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        match decode_frame(&bytes) {
            Err(FrameError::Oversized { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn corrupt_bytes_fail_the_checksum_not_the_parser() {
        let mut bytes = encode_frame(&Frame::Busy).expect("encode");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Checksum)));
    }

    #[test]
    fn truncation_and_clean_close_are_distinguished() {
        let bytes = encode_frame(&Frame::Closed).expect("encode");
        // Clean close: zero bytes available.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Eof)));
        // Mid-frame close: header promised more than the stream holds.
        let mut truncated = std::io::Cursor::new(bytes[..bytes.len() - 2].to_vec());
        assert!(matches!(read_frame(&mut truncated), Err(FrameError::Io(_))));
    }

    #[test]
    fn garbage_body_with_a_valid_checksum_is_a_codec_error() {
        let body = b"not json at all";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(body).to_le_bytes());
        bytes.extend_from_slice(body);
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Codec(_))));
    }
}
