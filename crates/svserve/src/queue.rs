//! Bounded, sharded job queue with blocking *and* waker-based backpressure.
//!
//! Each worker owns one shard.  Requests are routed to a shard by content hash, so
//! the mapping from case to worker is a pure function of the request — one of the two
//! ingredients (with hash-derived seeds) that make service output independent of
//! worker count and arrival order.  Backpressure comes in two shapes:
//!
//! * `Shard::push_blocking` parks the submitting OS thread while the shard is at
//!   capacity — the original synchronous surface;
//! * `Shard::try_push` + `Shard::register_submit_waker` are the async surface:
//!   a full shard returns the job to the caller, which registers its task's waker
//!   and yields; `Shard::drain_batch` wakes every registered submitter when it
//!   frees capacity.  This is what lets thousands of sessions wait for queue space
//!   without holding a driver thread each.

use crate::sync::{lock_recover, wait_timeout_recover};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::task::Waker;

/// Error returned when submitting to a service that is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "repair service is closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is shutting down and accepts no new work.
    Closed,
    /// Admission control: the pool already holds its configured maximum of
    /// in-flight jobs (`max_in_flight`); the request was shed deterministically
    /// instead of queued.  See the `shed_busy` counter in the pool metrics.
    Busy,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "{ServiceClosed}"),
            SubmitError::Busy => write!(f, "repair service is at its in-flight limit (busy)"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ServiceClosed> for SubmitError {
    fn from(_: ServiceClosed) -> Self {
        SubmitError::Closed
    }
}

/// Outcome of a non-blocking push attempt.
pub(crate) enum TryPush<T> {
    /// Enqueued; carries the shard depth after the push.
    Pushed(usize),
    /// The shard is at capacity; the job comes back to the caller.
    Full(T),
    /// The service is shutting down; the job is dropped.
    Closed,
}

/// One worker's bounded queue.
pub(crate) struct Shard<T> {
    jobs: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Wakers of async submitters waiting for capacity; drained (and woken)
    /// whenever a batch frees space or the shard is notified at shutdown.
    submit_wakers: Mutex<Vec<Waker>>,
    capacity: usize,
}

impl<T> Shard<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            submit_wakers: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Current queue depth.
    pub(crate) fn len(&self) -> usize {
        lock_recover(&self.jobs).len()
    }

    /// Enqueues a job, blocking while the shard is full.  Returns the depth after
    /// the push, or [`ServiceClosed`] if the service shut down while waiting.
    pub(crate) fn push_blocking(
        &self,
        job: T,
        closed: &AtomicBool,
    ) -> Result<usize, ServiceClosed> {
        let mut jobs = lock_recover(&self.jobs);
        while jobs.len() >= self.capacity {
            if closed.load(Ordering::Acquire) {
                return Err(ServiceClosed);
            }
            let (guard, _timeout) =
                wait_timeout_recover(&self.not_full, jobs, std::time::Duration::from_millis(50));
            jobs = guard;
        }
        if closed.load(Ordering::Acquire) {
            return Err(ServiceClosed);
        }
        jobs.push_back(job);
        let depth = jobs.len();
        drop(jobs);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Non-blocking push: enqueues if there is capacity, otherwise hands the
    /// job straight back so an async submitter can park on a waker instead of a
    /// thread.
    pub(crate) fn try_push(&self, job: T, closed: &AtomicBool) -> TryPush<T> {
        if closed.load(Ordering::Acquire) {
            return TryPush::Closed;
        }
        let mut jobs = lock_recover(&self.jobs);
        if jobs.len() >= self.capacity {
            return TryPush::Full(job);
        }
        jobs.push_back(job);
        let depth = jobs.len();
        drop(jobs);
        self.not_empty.notify_one();
        TryPush::Pushed(depth)
    }

    /// Registers an async submitter waiting for capacity.  The caller must
    /// re-attempt [`Shard::try_push`] after registering (capacity may have been
    /// freed in between — the classic lost-wakeup check).
    ///
    /// No dedup scan: every wake drains the whole list, so a parked task holds
    /// at most one live entry (it only re-registers after being woken), and an
    /// occasional duplicate from the re-check window costs one spurious wake —
    /// cheaper than an O(parked) `will_wake` scan on every registration.
    pub(crate) fn register_submit_waker(&self, waker: &Waker) {
        lock_recover(&self.submit_wakers).push(waker.clone());
    }

    /// Wakes every registered async submitter (capacity freed, or shutdown).
    ///
    /// Deliberately wakes *all* of them rather than one-per-freed-slot: a woken
    /// entry may belong to a cancelled session that will never re-push (and
    /// will not wake a replacement), and if the queue drains empty no later
    /// drain would wake the survivors — waking everyone keeps capacity from
    /// idling next to parked submitters.  The cost is O(parked) per drain,
    /// quadratic when parked ≫ capacity; that regime is a configuration smell
    /// (bound it with `max_in_flight` admission control), and correctness wins
    /// over a wake-accounting scheme with liveness holes.
    fn wake_submitters(&self) {
        let wakers: Vec<Waker> = lock_recover(&self.submit_wakers).drain(..).collect();
        for waker in wakers {
            waker.wake();
        }
    }

    /// Dequeues up to `max_batch` jobs in one lock acquisition, blocking while the
    /// shard is empty.  Returns an empty vector once the service is closed and the
    /// shard has drained — the worker's signal to exit.
    pub(crate) fn drain_batch(&self, max_batch: usize, closed: &AtomicBool) -> Vec<T> {
        let mut jobs = lock_recover(&self.jobs);
        loop {
            if !jobs.is_empty() {
                let take = jobs.len().min(max_batch.max(1));
                let batch: Vec<T> = jobs.drain(..take).collect();
                drop(jobs);
                // Draining freed capacity: wake every blocked submitter, parked
                // threads and parked tasks alike.
                self.not_full.notify_all();
                self.wake_submitters();
                return batch;
            }
            if closed.load(Ordering::Acquire) {
                return Vec::new();
            }
            let (guard, _timeout) =
                wait_timeout_recover(&self.not_empty, jobs, std::time::Duration::from_millis(50));
            jobs = guard;
        }
    }

    /// One step of the async submit protocol, shared by every submit future
    /// (`SubmitFuture`, `VerifySubmitFuture`, the router's escalate arm) so the
    /// lost-wakeup guard lives in exactly one place: try to push; on a full
    /// shard register the task's waker and try once more (capacity may have
    /// been freed in between); still full → park the job back in `job` and
    /// return `Pending`.
    ///
    /// `Ready(Ok(depth))` means the job was enqueued; `Ready(Err)` means the
    /// service closed and the job was dropped (the caller owns any admission
    /// rollback).
    pub(crate) fn poll_push(
        &self,
        job: &mut Option<T>,
        closed: &AtomicBool,
        waker: &Waker,
    ) -> std::task::Poll<Result<usize, ServiceClosed>> {
        use std::task::Poll;
        let item = job.take().expect("poll_push called after completion");
        match self.try_push(item, closed) {
            TryPush::Pushed(depth) => Poll::Ready(Ok(depth)),
            TryPush::Closed => Poll::Ready(Err(ServiceClosed)),
            TryPush::Full(item) => {
                self.register_submit_waker(waker);
                match self.try_push(item, closed) {
                    TryPush::Pushed(depth) => Poll::Ready(Ok(depth)),
                    TryPush::Closed => Poll::Ready(Err(ServiceClosed)),
                    TryPush::Full(item) => {
                        *job = Some(item);
                        Poll::Pending
                    }
                }
            }
        }
    }

    /// Wakes all waiters (used at shutdown).
    pub(crate) fn notify_all(&self) {
        self.not_empty.notify_all();
        self.not_full.notify_all();
        self.wake_submitters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn backpressure_blocks_until_drained() {
        let shard = Arc::new(Shard::new(2));
        let closed = Arc::new(AtomicBool::new(false));
        shard.push_blocking(1u32, &closed).unwrap();
        shard.push_blocking(2u32, &closed).unwrap();

        let pusher = {
            let shard = Arc::clone(&shard);
            let closed = Arc::clone(&closed);
            std::thread::spawn(move || shard.push_blocking(3u32, &closed))
        };
        // The third push cannot land until something drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(shard.len(), 2);
        let batch = shard.drain_batch(8, &closed);
        assert_eq!(batch, vec![1, 2]);
        pusher.join().unwrap().unwrap();
        assert_eq!(shard.len(), 1);
    }

    #[test]
    fn drain_returns_empty_after_close() {
        let shard: Shard<u32> = Shard::new(4);
        let closed = AtomicBool::new(true);
        assert!(shard.drain_batch(4, &closed).is_empty());
    }

    #[test]
    fn batch_size_is_capped() {
        let shard = Shard::new(16);
        let closed = AtomicBool::new(false);
        for i in 0..10u32 {
            shard.push_blocking(i, &closed).unwrap();
        }
        assert_eq!(shard.drain_batch(4, &closed).len(), 4);
        assert_eq!(shard.len(), 6);
    }

    #[test]
    fn try_push_returns_the_job_when_full_and_accepts_after_drain() {
        let shard = Shard::new(1);
        let closed = AtomicBool::new(false);
        assert!(matches!(shard.try_push(1u32, &closed), TryPush::Pushed(1)));
        let TryPush::Full(job) = shard.try_push(2u32, &closed) else {
            panic!("full shard must hand the job back");
        };
        assert_eq!(job, 2);
        assert_eq!(shard.drain_batch(4, &closed), vec![1]);
        assert!(matches!(shard.try_push(job, &closed), TryPush::Pushed(1)));
        closed.store(true, Ordering::Release);
        assert!(matches!(shard.try_push(3u32, &closed), TryPush::Closed));
    }

    #[test]
    fn draining_wakes_registered_submitters() {
        let shard = Shard::new(1);
        let closed = AtomicBool::new(false);
        assert!(matches!(shard.try_push(1u32, &closed), TryPush::Pushed(1)));

        // A future that parks on the shard until capacity frees up.
        let push_when_free = std::future::poll_fn(|cx| match shard.try_push(9u32, &closed) {
            TryPush::Pushed(depth) => std::task::Poll::Ready(depth),
            TryPush::Full(_) => {
                shard.register_submit_waker(cx.waker());
                // Re-check after registering (lost-wakeup guard).
                match shard.try_push(9u32, &closed) {
                    TryPush::Pushed(depth) => std::task::Poll::Ready(depth),
                    _ => std::task::Poll::Pending,
                }
            }
            TryPush::Closed => unreachable!(),
        });
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                assert_eq!(shard.drain_batch(4, &closed), vec![1]);
            });
            assert_eq!(crate::rt::block_on(push_when_free), 1);
        });
        assert_eq!(shard.len(), 1);
    }

    #[test]
    fn submit_errors_display_and_convert() {
        assert_eq!(SubmitError::from(ServiceClosed), SubmitError::Closed);
        assert!(SubmitError::Closed.to_string().contains("closed"));
        assert!(SubmitError::Busy.to_string().contains("busy"));
    }
}
