//! Bounded, sharded job queue with blocking backpressure.
//!
//! Each worker owns one shard.  Requests are routed to a shard by content hash, so
//! the mapping from case to worker is a pure function of the request — one of the two
//! ingredients (with hash-derived seeds) that make service output independent of
//! worker count and arrival order.  `push_blocking` blocks the submitter while the
//! shard is at capacity, which is the service's backpressure mechanism.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Error returned when submitting to a service that is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "repair service is closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// One worker's bounded queue.
pub(crate) struct Shard<T> {
    jobs: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Shard<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current queue depth.
    pub(crate) fn len(&self) -> usize {
        self.jobs.lock().expect("shard lock").len()
    }

    /// Enqueues a job, blocking while the shard is full.  Returns the depth after
    /// the push, or [`ServiceClosed`] if the service shut down while waiting.
    pub(crate) fn push_blocking(
        &self,
        job: T,
        closed: &AtomicBool,
    ) -> Result<usize, ServiceClosed> {
        let mut jobs = self.jobs.lock().expect("shard lock");
        while jobs.len() >= self.capacity {
            if closed.load(Ordering::Acquire) {
                return Err(ServiceClosed);
            }
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(jobs, std::time::Duration::from_millis(50))
                .expect("shard lock");
            jobs = guard;
        }
        if closed.load(Ordering::Acquire) {
            return Err(ServiceClosed);
        }
        jobs.push_back(job);
        let depth = jobs.len();
        drop(jobs);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues up to `max_batch` jobs in one lock acquisition, blocking while the
    /// shard is empty.  Returns an empty vector once the service is closed and the
    /// shard has drained — the worker's signal to exit.
    pub(crate) fn drain_batch(&self, max_batch: usize, closed: &AtomicBool) -> Vec<T> {
        let mut jobs = self.jobs.lock().expect("shard lock");
        loop {
            if !jobs.is_empty() {
                let take = jobs.len().min(max_batch.max(1));
                let batch: Vec<T> = jobs.drain(..take).collect();
                drop(jobs);
                // Draining freed capacity: wake every blocked submitter.
                self.not_full.notify_all();
                return batch;
            }
            if closed.load(Ordering::Acquire) {
                return Vec::new();
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(jobs, std::time::Duration::from_millis(50))
                .expect("shard lock");
            jobs = guard;
        }
    }

    /// Wakes all waiters (used at shutdown).
    pub(crate) fn notify_all(&self) {
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn backpressure_blocks_until_drained() {
        let shard = Arc::new(Shard::new(2));
        let closed = Arc::new(AtomicBool::new(false));
        shard.push_blocking(1u32, &closed).unwrap();
        shard.push_blocking(2u32, &closed).unwrap();

        let pusher = {
            let shard = Arc::clone(&shard);
            let closed = Arc::clone(&closed);
            std::thread::spawn(move || shard.push_blocking(3u32, &closed))
        };
        // The third push cannot land until something drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(shard.len(), 2);
        let batch = shard.drain_batch(8, &closed);
        assert_eq!(batch, vec![1, 2]);
        pusher.join().unwrap().unwrap();
        assert_eq!(shard.len(), 1);
    }

    #[test]
    fn drain_returns_empty_after_close() {
        let shard: Shard<u32> = Shard::new(4);
        let closed = AtomicBool::new(true);
        assert!(shard.drain_batch(4, &closed).is_empty());
    }

    #[test]
    fn batch_size_is_capped() {
        let shard = Shard::new(16);
        let closed = AtomicBool::new(false);
        for i in 0..10u32 {
            shard.push_blocking(i, &closed).unwrap();
        }
        assert_eq!(shard.drain_batch(4, &closed).len(), 4);
        assert_eq!(shard.len(), 6);
    }
}
