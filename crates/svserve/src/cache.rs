//! Content-addressed caches with LRU eviction, shared by both worker pools.
//!
//! Cache keys are 128-bit FNV-1a hashes over the full job content:
//!
//! * [`CaseKey`] (repair pool) — spec, buggy source, failure log, sample count and
//!   temperature, so two requests share an entry exactly when the model would be
//!   asked the identical question.  The same key also seeds the sampler (see
//!   [`crate::service`]), which is what makes service results independent of worker
//!   count and arrival order.
//! * [`VerdictKey`] (verify pool) — the caller-supplied case fingerprint, every field
//!   of the candidate [`Response`], and the checker-configuration fingerprint, so a
//!   cached verdict is reused exactly when the same candidate would be re-judged for
//!   the same case under the same bounded-check settings.
//!
//! All fields are folded with a length prefix, so field boundaries can never alias
//! (`("ab", "c")` hashes differently from `("a", "bc")`).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;
use svmodel::{CaseInput, Response};

/// Content hash of one repair request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CaseKey(pub u128);

impl CaseKey {
    /// Folds the 128-bit key into 64 bits (used for shard routing and seeding).
    pub fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv1a128(state: u128, bytes: &[u8]) -> u128 {
    let mut hash = state;
    for &byte in bytes {
        hash ^= byte as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes one field with a length prefix so field boundaries cannot alias
/// (`("ab", "c")` must not collide with `("a", "bc")`).
fn fold_field(state: u128, bytes: &[u8]) -> u128 {
    let with_len = fnv1a128(state, &(bytes.len() as u64).to_le_bytes());
    fnv1a128(with_len, bytes)
}

/// Computes the content-addressed key of a request.
pub fn case_key(case: &CaseInput, samples: usize, temperature: f64) -> CaseKey {
    let mut hash = FNV_OFFSET;
    hash = fold_field(hash, case.spec.as_bytes());
    hash = fold_field(hash, case.buggy_source.as_bytes());
    hash = fold_field(hash, case.logs.as_bytes());
    hash = fold_field(hash, &(samples as u64).to_le_bytes());
    hash = fold_field(hash, &temperature.to_bits().to_le_bytes());
    CaseKey(hash)
}

/// Content hash of one `(case, candidate response, checker config)` verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VerdictKey(pub u128);

impl VerdictKey {
    /// Folds the 128-bit key into 64 bits (used for verify-shard routing).
    pub fn fold64(self) -> u64 {
        (self.0 as u64) ^ ((self.0 >> 64) as u64)
    }
}

/// Computes the content-addressed key of one verdict.
///
/// `case_fields` is the caller's stable fingerprint of the case being judged (the
/// verify pool is generic over the case type, so it cannot hash the case itself);
/// `config` is the byte fingerprint of the checker configuration (e.g.
/// `svverify::CheckConfig::fingerprint`).  Every field is folded with a length
/// prefix, including the field *count*, so no two distinct triples alias.
pub fn verdict_key(case_fields: &[&[u8]], response: &Response, config: &[u8]) -> VerdictKey {
    let mut hash = FNV_OFFSET;
    hash = fold_field(hash, &(case_fields.len() as u64).to_le_bytes());
    for field in case_fields {
        hash = fold_field(hash, field);
    }
    hash = fold_field(hash, &u64::from(response.bug_line_number).to_le_bytes());
    hash = fold_field(hash, response.buggy_line.as_bytes());
    hash = fold_field(hash, response.fixed_line.as_bytes());
    match &response.cot {
        Some(cot) => {
            hash = fold_field(hash, b"cot");
            hash = fold_field(hash, cot.as_bytes());
        }
        None => hash = fold_field(hash, b"no-cot"),
    }
    hash = fold_field(hash, config);
    VerdictKey(hash)
}

struct Entry<V> {
    value: V,
    stamp: u64,
    /// Whether the entry was preloaded from a persisted snapshot (see
    /// [`crate::persist`]) rather than computed in this process.
    warm: bool,
    /// Snapshot generation the entry was last useful in: the generation recorded
    /// in the snapshot it was preloaded from (0 for entries computed in-process,
    /// whose age is "now" by definition).  Used by age-based snapshot compaction.
    generation: u64,
    /// Whether the entry was used (hit or computed) in this process.  A warm
    /// entry that is never touched keeps its old generation at flush time, which
    /// is what lets compaction age it out.
    touched: bool,
}

/// A least-recently-used content-addressed cache.
///
/// Defaults to the repair pool's shape (response sets keyed by [`CaseKey`]); the
/// verify pool instantiates it as `LruCache<VerdictKey, bool>`.  Recency is tracked
/// with a monotonically increasing stamp per access plus a stamp-ordered index,
/// giving `O(log n)` lookup/insert/evict without unsafe code.
///
/// Entries inserted with [`LruCache::preload`] (snapshot warm-start) are tagged, so
/// pools can report how much of their traffic a persisted snapshot absorbed:
///
/// ```
/// use svserve::LruCache;
///
/// let mut cache: LruCache<u64, String> = LruCache::new(2);
/// cache.preload(1, "from snapshot".to_string());
/// cache.insert(2, "computed".to_string());
/// assert_eq!(cache.get_tagged(1), Some(("from snapshot".to_string(), true)));
/// assert_eq!(cache.get_tagged(2), Some(("computed".to_string(), false)));
/// // Plain `get` ignores the tag, and re-inserting clears it.
/// assert_eq!(cache.get(1).as_deref(), Some("from snapshot"));
/// cache.insert(1, "recomputed".to_string());
/// assert_eq!(cache.get_tagged(1), Some(("recomputed".to_string(), false)));
/// ```
pub struct LruCache<K = CaseKey, V = Arc<Vec<Response>>> {
    map: HashMap<K, Entry<V>>,
    by_stamp: BTreeMap<u64, K>,
    next_stamp: u64,
    capacity: usize,
}

impl<K: Copy + Eq + Hash, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum one).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            capacity: capacity.max(1),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a key, refreshing its recency on a hit.  Values are cloned out;
    /// pick a cheap-to-clone value type (`Arc<...>`, `bool`).
    pub fn get(&mut self, key: K) -> Option<V> {
        self.get_tagged(key).map(|(value, _)| value)
    }

    /// Like [`LruCache::get`], but also reports whether the entry was preloaded
    /// from a snapshot ([`LruCache::preload`]) rather than computed this process.
    pub fn get_tagged(&mut self, key: K) -> Option<(V, bool)> {
        let entry = self.map.get_mut(&key)?;
        self.by_stamp.remove(&entry.stamp);
        entry.stamp = self.next_stamp;
        entry.touched = true;
        self.by_stamp.insert(self.next_stamp, key);
        self.next_stamp += 1;
        Some((entry.value.clone(), entry.warm))
    }

    /// Inserts a value, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_entry(key, value, false, 0);
    }

    /// Inserts a snapshot-restored value, tagging it as warm so later hits can be
    /// attributed to the snapshot (see [`LruCache::get_tagged`]).
    pub fn preload(&mut self, key: K, value: V) {
        self.insert_entry(key, value, true, 0);
    }

    /// Like [`LruCache::preload`], but also records the snapshot generation the
    /// entry was last useful in, so age-based compaction ([`crate::persist`]) can
    /// drop entries that go unused for several runs.
    pub fn preload_aged(&mut self, key: K, value: V, generation: u64) {
        self.insert_entry(key, value, true, generation);
    }

    fn insert_entry(&mut self, key: K, value: V, warm: bool, generation: u64) {
        if let Some(existing) = self.map.get(&key) {
            self.by_stamp.remove(&existing.stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest_stamp, &oldest_key)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&oldest_stamp);
                self.map.remove(&oldest_key);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.next_stamp,
                warm,
                generation,
                // Computed entries were, by construction, useful this run.
                touched: !warm,
            },
        );
        self.by_stamp.insert(self.next_stamp, key);
        self.next_stamp += 1;
    }

    /// Clones every entry out, least-recently-used first.  Used by
    /// [`crate::persist`] to build snapshots — which re-sort by key for
    /// byte-stable files, so recency deliberately resets to insertion order on a
    /// warm start (harmless: eviction order never affects results, only what a
    /// small cache keeps).
    pub fn export(&self) -> Vec<(K, V)> {
        self.by_stamp
            .values()
            .map(|key| (*key, self.map[key].value.clone()))
            .collect()
    }

    /// Like [`LruCache::export`], but each entry carries its age:
    /// `(key, value, last_useful_generation, touched_this_process)`.  Pools use
    /// this at flush time to re-stamp touched entries with the new snapshot
    /// generation and to compact entries that have gone unused for too many
    /// runs (see `PersistSpec::compact_after`).
    pub fn export_aged(&self) -> Vec<(K, V, u64, bool)> {
        self.by_stamp
            .values()
            .map(|key| {
                let entry = &self.map[key];
                (*key, entry.value.clone(), entry.generation, entry.touched)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(spec: &str, source: &str, logs: &str) -> CaseInput {
        CaseInput {
            spec: spec.to_string(),
            buggy_source: source.to_string(),
            logs: logs.to_string(),
        }
    }

    fn response(line: u32) -> Response {
        Response {
            bug_line_number: line,
            buggy_line: format!("line {line}"),
            fixed_line: format!("fixed {line}"),
            cot: None,
        }
    }

    #[test]
    fn key_is_stable_and_content_addressed() {
        let a = case_key(&case("spec", "src", "log"), 8, 0.2);
        let b = case_key(&case("spec", "src", "log"), 8, 0.2);
        assert_eq!(a, b, "identical content must produce identical keys");

        // Every key component must matter.
        assert_ne!(a, case_key(&case("spec2", "src", "log"), 8, 0.2));
        assert_ne!(a, case_key(&case("spec", "src2", "log"), 8, 0.2));
        assert_ne!(a, case_key(&case("spec", "src", "log2"), 8, 0.2));
        assert_ne!(a, case_key(&case("spec", "src", "log"), 9, 0.2));
        assert_ne!(a, case_key(&case("spec", "src", "log"), 8, 0.3));
    }

    #[test]
    fn key_fields_do_not_alias_across_boundaries() {
        let a = case_key(&case("ab", "c", ""), 1, 0.0);
        let b = case_key(&case("a", "bc", ""), 1, 0.0);
        assert_ne!(a, b, "field boundaries must be part of the hash");
    }

    #[test]
    fn verdict_key_covers_every_component() {
        let base = verdict_key(&[b"case"], &response(3), b"cfg");
        assert_eq!(base, verdict_key(&[b"case"], &response(3), b"cfg"));

        // Case fingerprint, each response field, and config must all matter.
        assert_ne!(base, verdict_key(&[b"case2"], &response(3), b"cfg"));
        assert_ne!(base, verdict_key(&[b"case"], &response(4), b"cfg"));
        assert_ne!(base, verdict_key(&[b"case"], &response(3), b"cfg2"));
        let mut with_cot = response(3);
        with_cot.cot = Some("because".into());
        assert_ne!(base, verdict_key(&[b"case"], &with_cot, b"cfg"));
        let mut other_fix = response(3);
        other_fix.fixed_line = "something else".into();
        assert_ne!(base, verdict_key(&[b"case"], &other_fix, b"cfg"));
    }

    #[test]
    fn verdict_key_case_fields_do_not_alias() {
        // Neither field boundaries nor the field count may alias.
        let r = response(1);
        assert_ne!(
            verdict_key(&[b"ab", b"c"], &r, b""),
            verdict_key(&[b"a", b"bc"], &r, b"")
        );
        assert_ne!(
            verdict_key(&[b"ab"], &r, b""),
            verdict_key(&[b"a", b"b"], &r, b"")
        );
    }

    #[test]
    fn verdict_cache_holds_bools() {
        let keys: Vec<VerdictKey> = (0..3)
            .map(|i| verdict_key(&[b"case"], &response(i), b"cfg"))
            .collect();
        let mut cache: LruCache<VerdictKey, bool> = LruCache::new(2);
        cache.insert(keys[0], true);
        cache.insert(keys[1], false);
        assert_eq!(cache.get(keys[0]), Some(true));
        cache.insert(keys[2], true);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(keys[1]), None, "LRU verdict must be evicted");
        assert_eq!(cache.get(keys[2]), Some(true));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let keys: Vec<CaseKey> = (0..4)
            .map(|i| case_key(&case(&format!("s{i}"), "", ""), 1, 0.0))
            .collect();
        let mut cache = LruCache::new(3);
        for (i, &key) in keys.iter().take(3).enumerate() {
            cache.insert(key, Arc::new(vec![response(i as u32)]));
        }
        // Touch key 0 so key 1 becomes the LRU entry.
        assert!(cache.get(keys[0]).is_some());
        cache.insert(keys[3], Arc::new(vec![response(3)]));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(keys[0]).is_some());
        assert!(cache.get(keys[2]).is_some());
        assert!(cache.get(keys[3]).is_some());
    }

    #[test]
    fn preloaded_entries_are_tagged_until_recomputed() {
        let keys: Vec<CaseKey> = (0..3)
            .map(|i| case_key(&case(&format!("s{i}"), "", ""), 1, 0.0))
            .collect();
        let mut cache = LruCache::new(8);
        cache.preload(keys[0], Arc::new(vec![response(0)]));
        cache.insert(keys[1], Arc::new(vec![response(1)]));
        assert!(cache.get_tagged(keys[0]).unwrap().1);
        assert!(!cache.get_tagged(keys[1]).unwrap().1);
        assert!(cache.get_tagged(keys[2]).is_none());
        // Recomputing over a warm entry clears the tag; exporting and preloading
        // restores it.
        cache.insert(keys[0], Arc::new(vec![response(9)]));
        assert!(!cache.get_tagged(keys[0]).unwrap().1);
        let exported = cache.export();
        assert_eq!(exported.len(), 2);
        let mut reloaded = LruCache::new(8);
        for (key, value) in exported {
            reloaded.preload(key, value);
        }
        assert!(reloaded.get_tagged(keys[0]).unwrap().1);
        assert_eq!(reloaded.get(keys[0]).unwrap()[0].bug_line_number, 9);
    }

    #[test]
    fn export_preserves_lru_order() {
        let keys: Vec<CaseKey> = (0..3)
            .map(|i| case_key(&case(&format!("s{i}"), "", ""), 1, 0.0))
            .collect();
        let mut cache = LruCache::new(8);
        for (i, &key) in keys.iter().enumerate() {
            cache.insert(key, Arc::new(vec![response(i as u32)]));
        }
        // Touch key 0 so it becomes most recent.
        cache.get(keys[0]);
        let order: Vec<CaseKey> = cache.export().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![keys[1], keys[2], keys[0]]);
    }

    #[test]
    fn aged_export_distinguishes_touched_from_idle_entries() {
        let keys: Vec<CaseKey> = (0..3)
            .map(|i| case_key(&case(&format!("s{i}"), "", ""), 1, 0.0))
            .collect();
        let mut cache = LruCache::new(8);
        cache.preload_aged(keys[0], Arc::new(vec![response(0)]), 4);
        cache.preload_aged(keys[1], Arc::new(vec![response(1)]), 4);
        cache.insert(keys[2], Arc::new(vec![response(2)]));
        // Hit only the first preloaded entry.
        assert!(cache.get(keys[0]).is_some());
        let aged: std::collections::HashMap<CaseKey, (u64, bool)> = cache
            .export_aged()
            .into_iter()
            .map(|(key, _, gen, touched)| (key, (gen, touched)))
            .collect();
        assert_eq!(aged[&keys[0]], (4, true), "hit warm entry is touched");
        assert_eq!(aged[&keys[1]], (4, false), "idle warm entry is untouched");
        assert_eq!(aged[&keys[2]], (0, true), "computed entry is touched");
        // Recomputing over an idle warm entry marks it touched.
        cache.insert(keys[1], Arc::new(vec![response(9)]));
        let (_, _, _, touched) = cache
            .export_aged()
            .into_iter()
            .find(|(key, ..)| *key == keys[1])
            .unwrap();
        assert!(touched);
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_cache() {
        let key = case_key(&case("s", "", ""), 1, 0.0);
        let mut cache = LruCache::new(2);
        cache.insert(key, Arc::new(vec![response(1)]));
        cache.insert(key, Arc::new(vec![response(2)]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key).unwrap()[0].bug_line_number, 2);
    }
}
