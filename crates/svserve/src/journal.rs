//! Structured session journal: typed events, span hooks, and a byte-deterministic
//! JSONL artifact.
//!
//! Counters ([`crate::ServiceMetrics`] and friends) say *how much* happened;
//! they cannot say which rung attempted a session, which verdict killed a
//! candidate, or where a session's time went.  This module records that story as
//! a stream of typed [`JournalEvent`]s keyed by **session id** (the 64-bit fold
//! of the request's content hash) so the journal of an evaluation is a pure
//! function of its inputs — the same determinism contract the caches and the
//! verdict pool already honour.
//!
//! ## Event classes
//!
//! Events split into two classes, and the split is what makes the artifact
//! reproducible:
//!
//! * **Deterministic** events (session phases, rung attempts, verdict tallies,
//!   logical timings, terminal outcomes) depend only on content.  They are
//!   emitted through [`Tracer::event`] with a caller-assigned sequence number
//!   and are serialized in every journal.
//! * **Volatile** events (cache hit/miss, pool admit/shed, solve/judge panics,
//!   runtime scheduling spans) depend on interleaving or cache temperature.
//!   They are emitted through [`Tracer::diagnostic`], always counted in the
//!   metrics, but serialized only when [`JournalSpec::mode`] is
//!   [`JournalMode::Full`] — a warm run and a cold run must render the same
//!   default journal bytes.
//!
//! ## Logical time
//!
//! Records carry no wall-clock timestamps.  Each record's `tick` is derived
//! from `(session, seq)` by [`logical_tick`]: monotonic within a session,
//! jittered by the identity hash so distinct sessions do not share a trivially
//! flat timeline, and byte-identical at any driver or worker count.
//!
//! ## Buffering and drain
//!
//! [`JournalSink`] shards records across bounded per-shard buffers (lock held
//! only for a push).  A full shard spills to an unbounded overflow vector —
//! deterministic events are **never dropped**, the spill is merely counted.
//! [`JournalSink::drain_sorted`] takes every buffered record and sorts by
//! `(session, seq, serialized bytes)`, which is what makes the rendered JSONL
//! independent of arrival interleaving.  [`render_journal`] then writes the
//! versioned header (mirroring [`crate::persist::SnapshotHeader`]), one record
//! per line, and a checksummed footer carrying an opaque payload — the same
//! atomic-write flush path the cache snapshots use.

use crate::persist::{self, fnv64};
use crate::service::splitmix64;
use crate::session::{SessionOutcome, SessionPhase};
use crate::sync::lock_recover;
use crate::telemetry::{Metric, MetricClass, TelemetryHandle};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Journal file layout version (bumped on any incompatible change).
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Header kind tag for session-journal files.
pub const JOURNAL_KIND: &str = "session-journal";

/// Environment variable naming the directory `assertsolver::evaluate_model`
/// writes session journals to; unset (the default) disables journaling.
pub const JOURNAL_DIR_ENV: &str = "ASSERTSOLVER_JOURNAL_DIR";

/// Sequence number reserved for a session's terminal event, so the terminal
/// record always sorts after every other record of the session.
pub const TERMINAL_SEQ: u32 = u32::MAX;

/// Reads the journal-directory override from the environment, if set and
/// non-empty.
pub fn env_journal_dir() -> Option<PathBuf> {
    std::env::var(JOURNAL_DIR_ENV)
        .ok()
        .map(|raw| raw.trim().to_string())
        .filter(|raw| !raw.is_empty())
        .map(PathBuf::from)
}

/// Logical timestamp of record `(session, seq)`.
///
/// `seq * 16` keeps ticks strictly monotonic per session; the low nibble is a
/// deterministic jitter bucketed out of the identity hash, so two sessions'
/// timelines differ without any wall clock involved.
pub fn logical_tick(session: u64, seq: u32) -> u64 {
    let jitter = splitmix64(session ^ (u64::from(seq) << 1 | 1)) & 0xF;
    u64::from(seq) * 16 + jitter
}

/// How a session ended; exactly one terminal event is journaled per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEnd {
    /// The session future ran to completion.
    Completed,
    /// The engine deadline expired before the session completed.
    TimedOut,
    /// The session was cancelled (or its span dropped unfinished).
    Aborted,
    /// The session's future panicked while being polled — a crash, distinct
    /// from deliberate cancellation.
    Panicked,
    /// Admission control refused the session's submission (`SubmitError::Busy`).
    Shed,
}

/// One typed journal event.
///
/// The first five variants are **deterministic** (serialized in every journal);
/// the rest are **volatile** diagnostics (serialized only in
/// [`JournalMode::Full`]).  See the module docs for why the classes exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A session state transition (deterministic).
    Phase {
        /// The phase entered, e.g. `"submitted"`.
        phase: String,
    },
    /// A per-phase logical timing: `units` is a content-derived duration such
    /// as the number of sampled candidates (deterministic).
    Timing {
        /// What was measured.
        label: String,
        /// Content-derived magnitude (never wall-clock).
        units: u64,
    },
    /// The session's verdict tally over its sampled candidates (deterministic).
    Verdict {
        /// Candidates judged correct.
        accepted: u64,
        /// Candidates judged incorrect.
        rejected: u64,
    },
    /// One rung attempt on the escalation ladder (deterministic).
    Rung {
        /// Rung index, 0 = cheapest backend.
        rung: u32,
        /// Name of the backend that served the rung.
        backend: String,
        /// Distinct candidates judged at this rung.
        judged: u64,
        /// Distinct candidates judged correct.
        correct: u64,
        /// Whether the ladder stopped here.
        terminal: bool,
    },
    /// The session's terminal outcome (deterministic, exactly once).
    Terminal {
        /// How the session ended.
        outcome: SessionEnd,
    },
    /// A pool admitted a submission (volatile: which submission sheds depends
    /// on interleaving).
    Admit {
        /// Pool name, `"repair"` or `"verify"`.
        pool: String,
    },
    /// A pool shed a submission with `SubmitError::Busy` (volatile).
    Shed {
        /// Pool name.
        pool: String,
    },
    /// A cache lookup outcome (volatile: depends on cache temperature).
    Cache {
        /// Pool name.
        pool: String,
        /// Whether the lookup hit.
        hit: bool,
        /// Whether the hit came from a preloaded snapshot entry.
        warm: bool,
    },
    /// A solver or judge invocation panicked and was absorbed (volatile).
    Panic {
        /// Pool name.
        pool: String,
    },
    /// A runtime scheduling span such as a task spawn (volatile).
    Span {
        /// Span name.
        name: String,
        /// The parent span id in the trace tree ([`crate::trace`]), when the
        /// emitter runs under a trace context; `None` for an unlinked span.
        ///
        /// Versioned for back-compat: journals written before the field
        /// existed omit it, and the vendored serde treats a missing struct
        /// field holding an `Option` as `None` — old replay artifacts keep
        /// parsing unchanged.
        parent: Option<u64>,
    },
}

/// One journaled record: the session it belongs to, its sequence number within
/// that session, its [`logical_tick`], and the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Session id (64-bit fold of the request content hash).
    pub session: u64,
    /// Sequence number within the session ([`TERMINAL_SEQ`] for the terminal).
    pub seq: u32,
    /// Logical timestamp; see [`logical_tick`].
    pub tick: u64,
    /// The event.
    pub event: JournalEvent,
}

impl JournalRecord {
    /// Builds the record for `(session, seq, event)`, deriving the tick.
    pub fn new(session: u64, seq: u32, event: JournalEvent) -> Self {
        Self {
            session,
            seq,
            tick: logical_tick(session, seq),
            event,
        }
    }

    /// The record's canonical JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        serde_json::to_string(self).expect("journal record serializes")
    }
}

/// Receives journal events from instrumented pools, sessions and routers.
///
/// Both methods default to no-ops, so an implementor may observe only the class
/// it cares about; the instrumented hot paths cost a single branch when no
/// tracer is installed (see [`TracerHandle`]).
pub trait Tracer: Send + Sync {
    /// Records one **deterministic** event: `seq` orders it within `session`
    /// and must itself be content-derived (phase index, rung index, …).
    fn event(&self, session: u64, seq: u32, event: JournalEvent) {
        let _ = (session, seq, event);
    }

    /// Records one **volatile** diagnostic event for `session`; ordering is
    /// assigned by the sink and carries no determinism contract.
    fn diagnostic(&self, session: u64, event: JournalEvent) {
        let _ = (session, event);
    }
}

/// A cheaply clonable, optional [`Tracer`] — the form configs carry.
///
/// The default handle is **off**: every emit is one `Option` branch and
/// nothing else, which is what keeps journaling free on untraced hot paths.
/// Equality is identity (two handles are equal when they point at the same
/// tracer, or are both off), so configs that derive `PartialEq` keep working.
#[derive(Clone, Default)]
pub struct TracerHandle(Option<Arc<dyn Tracer>>);

impl TracerHandle {
    /// The disabled handle (also what `Default` returns).
    pub fn off() -> Self {
        Self(None)
    }

    /// Wraps a live tracer.
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        Self(Some(tracer))
    }

    /// Whether a tracer is installed — the one branch instrumented code pays.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards a deterministic event to the tracer, if any.
    pub fn event(&self, session: u64, seq: u32, event: JournalEvent) {
        if let Some(tracer) = &self.0 {
            tracer.event(session, seq, event);
        }
    }

    /// Forwards a volatile diagnostic to the tracer, if any.
    pub fn diagnostic(&self, session: u64, event: JournalEvent) {
        if let Some(tracer) = &self.0 {
            tracer.diagnostic(session, event);
        }
    }
}

impl std::fmt::Debug for TracerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "TracerHandle(on)"
        } else {
            "TracerHandle(off)"
        })
    }
}

impl PartialEq for TracerHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            // Identity comparison on the data pointer only (not the vtable),
            // so the comparison is stable across codegen units.
            (Some(a), Some(b)) => {
                std::ptr::eq(Arc::as_ptr(a) as *const (), Arc::as_ptr(b) as *const ())
            }
            _ => false,
        }
    }
}

impl Eq for TracerHandle {}

/// Which event classes a [`JournalSink`] serializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalMode {
    /// Deterministic events only — the journal bytes are a pure function of
    /// the evaluated content (the default).
    #[default]
    Deterministic,
    /// Deterministic **and** volatile events — a diagnostics trace whose bytes
    /// depend on interleaving and cache temperature.
    Full,
}

/// Sink tuning: shard count, per-shard buffer capacity, and event-class mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSpec {
    /// Bounded buffers the sink shards records across (by `session % shards`).
    pub shards: usize,
    /// Records a shard buffer holds before overflow spills centrally.
    pub shard_capacity: usize,
    /// Which event classes are serialized.
    pub mode: JournalMode,
}

impl Default for JournalSpec {
    fn default() -> Self {
        Self {
            shards: 8,
            shard_capacity: 1024,
            mode: JournalMode::Deterministic,
        }
    }
}

impl JournalSpec {
    /// Returns the spec with the mode replaced.
    pub fn with_mode(mut self, mode: JournalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns the spec with the per-shard buffer capacity replaced.
    pub fn with_shard_capacity(mut self, shard_capacity: usize) -> Self {
        self.shard_capacity = shard_capacity;
        self
    }

    fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.shard_capacity = self.shard_capacity.max(1);
        self
    }
}

/// Counter snapshot of a [`JournalSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCounters {
    /// Deterministic events recorded.
    pub recorded: u64,
    /// Volatile events recorded (only nonzero in [`JournalMode::Full`]).
    pub diagnostics: u64,
    /// Volatile events observed but not serialized (deterministic mode).
    pub suppressed: u64,
    /// Records that overflowed a shard buffer into the central spill.
    pub spilled: u64,
    /// Records currently buffered (shards + spill); zero after a drain.
    pub buffered: usize,
}

/// The in-memory event sink: sharded bounded buffers plus an overflow spill.
///
/// Implements [`Tracer`]; install it on configs via
/// `TracerHandle::new(sink.clone())`.  See the module docs for the buffering
/// and drain contract.
pub struct JournalSink {
    spec: JournalSpec,
    shards: Vec<Mutex<Vec<JournalRecord>>>,
    spill: Mutex<Vec<JournalRecord>>,
    diag_seq: AtomicU32,
    recorded: AtomicU64,
    diagnostics: AtomicU64,
    suppressed: AtomicU64,
    spilled: AtomicU64,
}

impl JournalSink {
    /// Builds a sink with the given spec.
    pub fn new(spec: JournalSpec) -> Self {
        let spec = spec.normalized();
        Self {
            shards: (0..spec.shards)
                .map(|_| Mutex::new(Vec::with_capacity(spec.shard_capacity.min(64))))
                .collect(),
            spill: Mutex::new(Vec::new()),
            diag_seq: AtomicU32::new(0),
            recorded: AtomicU64::new(0),
            diagnostics: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            spec,
        }
    }

    /// A shared sink with the default spec, ready to wrap in a handle.
    pub fn shared(spec: JournalSpec) -> Arc<Self> {
        Arc::new(Self::new(spec))
    }

    /// A [`TracerHandle`] pointing at this sink.
    pub fn handle(self: &Arc<Self>) -> TracerHandle {
        TracerHandle::new(Arc::clone(self) as Arc<dyn Tracer>)
    }

    fn push(&self, record: JournalRecord) {
        let shard = (record.session % self.shards.len() as u64) as usize;
        let mut buffer = lock_recover(&self.shards[shard]);
        if buffer.len() < self.spec.shard_capacity {
            buffer.push(record);
        } else {
            drop(buffer);
            // Never drop an event: a full shard spills centrally and the spill
            // is merely counted (the drain re-sorts everything anyway).
            self.spilled.fetch_add(1, Ordering::Relaxed);
            lock_recover(&self.spill).push(record);
        }
    }

    /// Takes every buffered record, sorted by `(session, seq, rendered bytes)`
    /// — the canonical order the JSONL serialization uses.
    pub fn drain_sorted(&self) -> Vec<JournalRecord> {
        let mut records = Vec::new();
        for shard in &self.shards {
            records.append(&mut lock_recover(shard));
        }
        records.append(&mut lock_recover(&self.spill));
        records.sort_by_cached_key(|record| (record.session, record.seq, record.render()));
        records
    }

    /// Snapshot of the sink's counters.
    pub fn counters(&self) -> JournalCounters {
        let buffered = self
            .shards
            .iter()
            .map(|shard| lock_recover(shard).len())
            .sum::<usize>()
            + lock_recover(&self.spill).len();
        JournalCounters {
            recorded: self.recorded.load(Ordering::Relaxed),
            diagnostics: self.diagnostics.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            buffered,
        }
    }
}

impl Tracer for JournalSink {
    fn event(&self, session: u64, seq: u32, event: JournalEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.push(JournalRecord::new(session, seq, event));
    }

    fn diagnostic(&self, session: u64, event: JournalEvent) {
        if self.spec.mode == JournalMode::Full {
            self.diagnostics.fetch_add(1, Ordering::Relaxed);
            let seq = self.diag_seq.fetch_add(1, Ordering::Relaxed);
            self.push(JournalRecord::new(session, seq, event));
        } else {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared state behind a [`SessionSpan`] and its [`SpanHandle`]s.
///
/// Spans keep **two clocks**: the journaled [`logical_tick`] (derived from the
/// per-span sequence counter — byte-deterministic) and a wall clock started at
/// span open.  The wall clock never enters the journal; it feeds the volatile
/// `session.span.wall` telemetry histogram at terminal emit, so profile data
/// and replayable artifacts come from one instrumentation point without the
/// journal bytes depending on machine speed.
struct SpanCore {
    tracer: TracerHandle,
    session: u64,
    seq: AtomicU32,
    ended: AtomicBool,
    started: Instant,
    wall: Option<Arc<Metric>>,
}

impl SpanCore {
    fn emit(&self, event: JournalEvent) {
        if !self.tracer.is_on() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.tracer.event(self.session, seq, event);
    }

    /// Emits the session's terminal event, exactly once: the first caller —
    /// in-future shed, owner finish, or owner drop — wins the CAS and later
    /// attempts are no-ops.
    fn emit_terminal(&self, outcome: SessionEnd) {
        if self
            .ended
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if let Some(metric) = &self.wall {
                metric.observe_duration(self.started.elapsed());
            }
            self.tracer.event(
                self.session,
                TERMINAL_SEQ,
                JournalEvent::Terminal { outcome },
            );
        }
    }
}

/// The owner side of a session's journal span.
///
/// The evaluation loop keeps the owner outside the session future (the future
/// cannot know it timed out — the deadline drops it first) and calls
/// [`SessionSpan::finish`] with the joined [`SessionOutcome`].  Dropping an
/// unfinished span journals `Aborted`.  In-future events go through a cloned
/// [`SpanHandle`].
pub struct SessionSpan {
    core: Arc<SpanCore>,
}

impl SessionSpan {
    /// Opens a span for `session` (the request's 64-bit content-hash fold).
    pub fn new(tracer: &TracerHandle, session: u64) -> Self {
        Self::with_telemetry(tracer, &TelemetryHandle::off(), session)
    }

    /// Opens a span that also records its wall-clock lifetime into the
    /// volatile `session.span.wall` telemetry histogram at terminal emit —
    /// the dual-clock form: logical ticks in the journal, wall time in the
    /// registry.
    pub fn with_telemetry(
        tracer: &TracerHandle,
        telemetry: &TelemetryHandle,
        session: u64,
    ) -> Self {
        Self {
            core: Arc::new(SpanCore {
                tracer: tracer.clone(),
                session,
                seq: AtomicU32::new(0),
                ended: AtomicBool::new(false),
                started: Instant::now(),
                wall: telemetry.histogram("session.span.wall", MetricClass::Volatile),
            }),
        }
    }

    /// The session id the span journals under.
    pub fn session(&self) -> u64 {
        self.core.session
    }

    /// Wall-clock time since the span opened — the volatile half of the dual
    /// clock.  Never journaled; compare with [`SessionSpan::logical_now`].
    pub fn elapsed(&self) -> Duration {
        self.core.started.elapsed()
    }

    /// The [`logical_tick`] the span's *next* event would journal under — the
    /// deterministic half of the dual clock (a pure function of content and
    /// event count, identical at any driver count).
    pub fn logical_now(&self) -> u64 {
        logical_tick(self.core.session, self.core.seq.load(Ordering::Relaxed))
    }

    /// A clonable handle for emitting events from inside the session future.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Journals the terminal event for the joined outcome (exactly once; a
    /// terminal already emitted in-future — e.g. a shed — wins).
    pub fn finish<T>(&self, outcome: &SessionOutcome<T>) {
        let end = match outcome {
            SessionOutcome::Completed(_) => SessionEnd::Completed,
            SessionOutcome::TimedOut => SessionEnd::TimedOut,
            SessionOutcome::Aborted => SessionEnd::Aborted,
            SessionOutcome::Panicked => SessionEnd::Panicked,
        };
        self.core.emit_terminal(end);
    }
}

impl Drop for SessionSpan {
    fn drop(&mut self) {
        // An owner dropped without `finish` means the session never joined.
        self.core.emit_terminal(SessionEnd::Aborted);
    }
}

/// The in-future side of a session span; clone freely.
#[derive(Clone)]
pub struct SpanHandle {
    core: Arc<SpanCore>,
}

impl SpanHandle {
    /// Journals a phase transition.
    pub fn phase(&self, phase: SessionPhase) {
        if !self.core.tracer.is_on() {
            return;
        }
        self.core.emit(JournalEvent::Phase {
            phase: phase_name(phase).to_string(),
        });
    }

    /// Journals a content-derived per-phase timing.
    pub fn timing(&self, label: &str, units: u64) {
        if !self.core.tracer.is_on() {
            return;
        }
        self.core.emit(JournalEvent::Timing {
            label: label.to_string(),
            units,
        });
    }

    /// Journals the session's verdict tally.
    pub fn verdict(&self, accepted: u64, rejected: u64) {
        if !self.core.tracer.is_on() {
            return;
        }
        self.core.emit(JournalEvent::Verdict { accepted, rejected });
    }

    /// Journals the `Shed` terminal from inside the future (exactly once, even
    /// if the owner later finishes the span).
    pub fn shed(&self) {
        self.core.emit_terminal(SessionEnd::Shed);
    }
}

/// Lower-kebab name of a phase, as journaled.
fn phase_name(phase: SessionPhase) -> &'static str {
    match phase {
        SessionPhase::Submitted => "submitted",
        SessionPhase::Sampled => "sampled",
        SessionPhase::Verifying => "verifying",
        SessionPhase::Escalated => "escalated",
        SessionPhase::Done => "done",
    }
}

/// First line of a journal file (mirrors [`crate::persist::SnapshotHeader`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Layout version; see [`JOURNAL_FORMAT_VERSION`].
    pub format_version: u32,
    /// Always [`JOURNAL_KIND`].
    pub kind: String,
    /// Opaque recipe string (the caller's manifest, typically JSON) describing
    /// how to reproduce the run — model tag, corpus tag, protocol knobs.
    /// Deliberately excludes driver/worker counts: they must not change bytes.
    pub manifest: String,
}

impl JournalHeader {
    /// The header a journal with the given manifest is expected to carry.
    pub fn expected(manifest: &str) -> Self {
        Self {
            format_version: JOURNAL_FORMAT_VERSION,
            kind: JOURNAL_KIND.to_string(),
            manifest: manifest.to_string(),
        }
    }

    /// Returns the first reason this header does not match `expected`, if any.
    pub fn mismatch(&self, expected: &Self) -> Option<String> {
        if self.format_version != expected.format_version {
            return Some(format!(
                "format version {} (expected {})",
                self.format_version, expected.format_version
            ));
        }
        if self.kind != expected.kind {
            return Some(format!(
                "kind {:?} (expected {:?})",
                self.kind, expected.kind
            ));
        }
        if self.manifest != expected.manifest {
            return Some("manifest mismatch".to_string());
        }
        None
    }
}

/// Last line of a journal file: event count, opaque payload (e.g. the run's
/// serialized `ModelEvaluation`), and an FNV-1a/64 checksum over every byte
/// that precedes the footer line plus the payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalFooter {
    /// Number of record lines between header and footer.
    pub events: u64,
    /// Opaque payload the journal certifies (may be empty).
    pub payload: String,
    /// Lower-hex FNV-1a/64 of the preceding bytes plus the payload.
    pub fnv: String,
}

/// Renders a complete journal file: header line, one line per record (in the
/// order given — pass [`JournalSink::drain_sorted`] output), footer line.
pub fn render_journal(header: &JournalHeader, records: &[JournalRecord], payload: &str) -> String {
    let mut out = serde_json::to_string(header).expect("journal header serializes");
    out.push('\n');
    for record in records {
        out.push_str(&record.render());
        out.push('\n');
    }
    let mut checksummed = out.clone();
    checksummed.push_str(payload);
    let footer = JournalFooter {
        events: records.len() as u64,
        payload: payload.to_string(),
        fnv: format!("{:016x}", fnv64(checksummed.as_bytes())),
    };
    out.push_str(&serde_json::to_string(&footer).expect("journal footer serializes"));
    out.push('\n');
    out
}

/// A parsed journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedJournal {
    /// The versioned header.
    pub header: JournalHeader,
    /// Every record, in file order.
    pub records: Vec<JournalRecord>,
    /// The checksummed footer.
    pub footer: JournalFooter,
}

/// Parses and validates a rendered journal: header shape, per-line records,
/// footer event count and checksum.  Returns a human-readable reason on any
/// corruption.
pub fn parse_journal(text: &str) -> Result<ParsedJournal, String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or_else(|| "empty journal".to_string())?;
    let header: JournalHeader =
        serde_json::from_str(header_line).map_err(|err| format!("bad header: {err}"))?;
    if header.kind != JOURNAL_KIND {
        return Err(format!("kind {:?} is not a session journal", header.kind));
    }
    if header.format_version != JOURNAL_FORMAT_VERSION {
        return Err(format!(
            "format version {} (expected {})",
            header.format_version, JOURNAL_FORMAT_VERSION
        ));
    }
    let mut body: Vec<&str> = lines.collect();
    let footer_line = body.pop().ok_or_else(|| "missing footer".to_string())?;
    let footer: JournalFooter =
        serde_json::from_str(footer_line).map_err(|err| format!("bad footer: {err}"))?;
    if footer.events != body.len() as u64 {
        return Err(format!(
            "footer counts {} events, file has {}",
            footer.events,
            body.len()
        ));
    }
    let mut records = Vec::with_capacity(body.len());
    for (idx, line) in body.iter().enumerate() {
        let record: JournalRecord = serde_json::from_str(line)
            .map_err(|err| format!("bad record on line {}: {err}", idx + 2))?;
        records.push(record);
    }
    let prefix_len = text.len() - footer_line.len() - 1;
    let mut checksummed = text[..prefix_len].to_string();
    checksummed.push_str(&footer.payload);
    let fnv = format!("{:016x}", fnv64(checksummed.as_bytes()));
    if fnv != footer.fnv {
        return Err(format!(
            "checksum {fnv} does not match footer {}",
            footer.fnv
        ));
    }
    Ok(ParsedJournal {
        header,
        records,
        footer,
    })
}

/// Writes a rendered journal atomically (temp file + rename, parents created)
/// — the same flush path the cache snapshots use.
pub fn write_journal(path: &Path, rendered: &str) -> std::io::Result<()> {
    persist::write_atomic(path, rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> Arc<JournalSink> {
        JournalSink::shared(JournalSpec::default())
    }

    #[test]
    fn logical_ticks_are_monotonic_and_pure() {
        for session in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut last = None;
            for seq in 0..64u32 {
                let tick = logical_tick(session, seq);
                assert_eq!(tick, logical_tick(session, seq), "pure in (session, seq)");
                if let Some(last) = last {
                    assert!(tick > last, "ticks must be strictly monotonic per session");
                }
                last = Some(tick);
            }
        }
    }

    #[test]
    fn off_handle_is_inert_and_comparable() {
        let handle = TracerHandle::off();
        assert!(!handle.is_on());
        handle.event(
            1,
            0,
            JournalEvent::Verdict {
                accepted: 1,
                rejected: 0,
            },
        );
        assert_eq!(handle, TracerHandle::default());
        let sink = sink();
        let on = sink.handle();
        assert_ne!(on, TracerHandle::off());
        assert_eq!(on, on.clone(), "clones compare equal by identity");
        assert_ne!(on, JournalSink::shared(JournalSpec::default()).handle());
    }

    #[test]
    fn span_events_without_a_parent_field_still_parse() {
        // Journals written before `Span.parent` existed omit the field; they
        // must keep parsing as `parent: None` so old replay artifacts stay
        // valid.  This line is the exact shape a pre-PR-10 journal carried.
        let old_line = r#"{"session":7,"seq":0,"tick":1,"event":{"Span":{"name":"task-spawn"}}}"#;
        let record: JournalRecord = serde_json::from_str(old_line).expect("old span line parses");
        assert_eq!(
            record.event,
            JournalEvent::Span {
                name: "task-spawn".to_string(),
                parent: None,
            }
        );
        // And the new shape round-trips with linkage intact.
        let linked = JournalRecord::new(
            7,
            1,
            JournalEvent::Span {
                name: "sample".to_string(),
                parent: Some(0xABCD),
            },
        );
        let reparsed: JournalRecord =
            serde_json::from_str(&linked.render()).expect("new span line parses");
        assert_eq!(reparsed, linked);
    }

    #[test]
    fn deterministic_events_survive_overflow_and_sort_canonically() {
        let sink = JournalSink::shared(JournalSpec {
            shards: 2,
            shard_capacity: 4,
            mode: JournalMode::Deterministic,
        });
        // 64 events over 4 sessions, emitted in a scrambled order and far past
        // the shard capacity: nothing may be dropped.
        for seq in (0..16u32).rev() {
            for session in [3u64, 1, 2, 0] {
                sink.event(
                    session,
                    seq,
                    JournalEvent::Timing {
                        label: "t".to_string(),
                        units: u64::from(seq),
                    },
                );
            }
        }
        let counters = sink.counters();
        assert_eq!(counters.recorded, 64);
        assert!(counters.spilled > 0, "tiny buffers must have spilled");
        assert_eq!(counters.buffered, 64, "spill keeps every record");
        let records = sink.drain_sorted();
        assert_eq!(records.len(), 64);
        let keys: Vec<(u64, u32)> = records.iter().map(|r| (r.session, r.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "drain must sort by (session, seq)");
        assert_eq!(sink.counters().buffered, 0, "drain empties every buffer");
    }

    #[test]
    fn volatile_events_are_suppressed_unless_full_mode() {
        let deterministic = sink();
        deterministic.diagnostic(
            7,
            JournalEvent::Cache {
                pool: "repair".to_string(),
                hit: true,
                warm: false,
            },
        );
        let counters = deterministic.counters();
        assert_eq!(counters.suppressed, 1);
        assert_eq!(counters.buffered, 0);

        let full = JournalSink::shared(JournalSpec::default().with_mode(JournalMode::Full));
        full.diagnostic(
            7,
            JournalEvent::Cache {
                pool: "repair".to_string(),
                hit: true,
                warm: false,
            },
        );
        assert_eq!(full.counters().diagnostics, 1);
        assert_eq!(full.drain_sorted().len(), 1);
    }

    #[test]
    fn span_emits_exactly_one_terminal_through_every_exit() {
        // finish(Completed) then drop: one Completed terminal.
        let sink = sink();
        {
            let span = SessionSpan::new(&sink.handle(), 11);
            span.handle().phase(SessionPhase::Submitted);
            span.finish(&SessionOutcome::Completed(5u32));
            span.finish(&SessionOutcome::<u32>::Aborted);
        }
        let records = sink.drain_sorted();
        let terminals: Vec<&JournalRecord> = records
            .iter()
            .filter(|r| matches!(r.event, JournalEvent::Terminal { .. }))
            .collect();
        assert_eq!(terminals.len(), 1);
        assert_eq!(terminals[0].seq, TERMINAL_SEQ);
        assert_eq!(
            terminals[0].event,
            JournalEvent::Terminal {
                outcome: SessionEnd::Completed
            }
        );

        // Drop without finish: Aborted.
        let sink2 = sink.clone();
        drop(SessionSpan::new(&sink2.handle(), 12));
        let records = sink2.drain_sorted();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].event,
            JournalEvent::Terminal {
                outcome: SessionEnd::Aborted
            }
        );

        // In-future shed wins over a later owner finish.
        let span = SessionSpan::new(&sink2.handle(), 13);
        span.handle().shed();
        span.finish(&SessionOutcome::Completed(()));
        drop(span);
        let records = sink2.drain_sorted();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].event,
            JournalEvent::Terminal {
                outcome: SessionEnd::Shed
            }
        );
    }

    #[test]
    fn dual_clock_span_keeps_wall_time_out_of_the_journal() {
        use crate::telemetry::MetricsRegistry;
        let sink = sink();
        let telemetry = TelemetryHandle::new(std::sync::Arc::new(MetricsRegistry::default()));

        // Render the same event sequence through a plain span and a dual-clock
        // span: the journal bytes must be identical — wall time lives only in
        // the registry.
        let plain = SessionSpan::new(&sink.handle(), 21);
        plain.handle().phase(SessionPhase::Submitted);
        plain.finish(&SessionOutcome::Completed(()));
        let plain_records = sink.drain_sorted();

        let dual = SessionSpan::with_telemetry(&sink.handle(), &telemetry, 21);
        assert!(dual.elapsed() >= Duration::ZERO);
        let before = dual.logical_now();
        dual.handle().phase(SessionPhase::Submitted);
        assert!(
            dual.logical_now() > before,
            "logical clock advances with events"
        );
        dual.finish(&SessionOutcome::Completed(()));
        let dual_records = sink.drain_sorted();

        let render = |records: &[JournalRecord]| {
            records
                .iter()
                .map(JournalRecord::render)
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&plain_records), render(&dual_records));

        // The wall clock landed in telemetry instead.
        let wall = telemetry
            .snapshot()
            .get("session.span.wall")
            .cloned()
            .expect("dual-clock span records session.span.wall");
        assert_eq!(wall.count, 1);
    }

    #[test]
    fn render_parse_roundtrip_validates_checksum() {
        let sink = sink();
        let span = SessionSpan::new(&sink.handle(), 42);
        span.handle().phase(SessionPhase::Submitted);
        span.handle().timing("candidates", 8);
        span.handle().verdict(3, 5);
        span.finish(&SessionOutcome::Completed(()));
        let header = JournalHeader::expected("{\"recipe\":\"test\"}");
        let rendered = render_journal(&header, &sink.drain_sorted(), "payload bytes");
        let parsed = parse_journal(&rendered).expect("roundtrip parses");
        assert_eq!(parsed.header, header);
        assert_eq!(parsed.records.len(), 4);
        assert_eq!(parsed.footer.events, 4);
        assert_eq!(parsed.footer.payload, "payload bytes");
        assert_eq!(
            rendered,
            render_journal(&header, &parsed.records, "payload bytes")
        );

        // Corruption in a record line must fail the checksum (or the parse).
        let tampered = rendered.replace("\"units\":8", "\"units\":9");
        assert!(parse_journal(&tampered).is_err());
        assert!(header
            .mismatch(&JournalHeader::expected("{\"recipe\":\"other\"}"))
            .is_some());
    }
}
